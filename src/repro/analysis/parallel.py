"""Process-pool execution of file-scoped lint rules.

File-scoped (:class:`~repro.analysis.engine.FileRule`) work is
embarrassingly parallel — each ``(rule, file)`` task judges one parsed
file in isolation — so a cold lint of the whole tree can fan out across
cores.  The design constraints:

- **Byte-identical output.**  Workers return findings as plain dicts;
  the engine reassembles them in the exact serial iteration order, so
  ``--jobs N`` output is indistinguishable from ``--jobs 1``.
- **Cache-aware.**  The engine consults the
  :class:`~repro.analysis.cache.LintCache` *first* and only ships
  cache-miss tasks here; a warm lint never pays pool startup (which
  also keeps the CI ``warm*2 <= cold`` runtime gate honest).
- **Fail-soft.**  Any pool failure (no fork start method, a worker
  dying, a pickling surprise) returns ``None`` and the engine falls
  back to serial execution — parallelism is an optimization, never a
  correctness dependency.

The parsed :class:`~repro.analysis.project.Project` rides into workers
via fork copy-on-write (a module global set just before the pool
spawns), so tasks and results are tiny: ``(rule_id, file_index)`` in,
finding dicts out.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project

#: Below this many pending tasks the pool's startup overhead wins.
MIN_TASKS = 32

#: The project workers inherit via fork copy-on-write.
_WORK_PROJECT: Optional[Project] = None


def _run_task(task: Tuple[str, int]) -> Tuple[str, int, List[dict]]:
    """Worker body: run one file-scoped rule over one file."""
    from repro.analysis.engine import _RULES, _ensure_rules_loaded

    rule_id, index = task
    _ensure_rules_loaded()
    assert _WORK_PROJECT is not None, "worker forked without a project"
    source = _WORK_PROJECT.files[index]
    findings = list(_RULES[rule_id]().check_file(_WORK_PROJECT, source))
    return rule_id, index, [finding.to_dict() for finding in findings]


def _finding_from_dict(payload: dict) -> Finding:
    return Finding(
        rule=payload["rule"],
        severity=Severity(payload["severity"]),
        path=payload["path"],
        line=payload["line"],
        message=payload["message"],
        key=payload["key"],
        column=payload.get("column"),
    )


def run_file_tasks(
    project: Project, tasks: Sequence[Tuple[str, int]], jobs: int
) -> Optional[Dict[Tuple[str, int], List[Finding]]]:
    """Run ``(rule_id, file_index)`` tasks across a fork pool.

    Returns the per-task findings, or ``None`` if the pool could not be
    used — the caller then runs the same tasks serially.
    """
    global _WORK_PROJECT
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork
        return None
    # An explicit --jobs N wins over os.cpu_count(): oversubscription is
    # harmless, and containers often report fewer cores than they have.
    workers = max(1, min(int(jobs), len(tasks)))
    if workers < 2:
        return None
    _WORK_PROJECT = project
    try:
        with context.Pool(processes=workers) as pool:
            rows = pool.map(
                _run_task,
                list(tasks),
                chunksize=max(1, len(tasks) // (workers * 4)),
            )
    except Exception:  # fail soft: the serial path is always correct
        return None
    finally:
        _WORK_PROJECT = None
    results: Dict[Tuple[str, int], List[Finding]] = {}
    for rule_id, index, payloads in rows:
        results[(rule_id, index)] = [
            _finding_from_dict(payload) for payload in payloads
        ]
    return results
