"""SARIF 2.1.0 rendering of kalis-lint findings.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format CI forges ingest to render static-analysis
results as inline annotations.  ``kalis-lint --format sarif`` emits one
run with the full rule registry as ``tool.driver.rules`` (plus the
KL000/KL099 pseudo-rules the engine reserves) and one ``result`` per
reported finding.  Each result carries a ``partialFingerprints`` entry
built from the finding's *stable key* — the same ``(rule, path, key)``
identity the baseline uses — so annotation tracking survives line-number
churn exactly like baseline suppression does.

Output is deterministic: rules sorted by id, findings in
:func:`~repro.analysis.findings.sort_findings` order, and
``json.dumps(..., sort_keys=True)`` for the envelope.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.engine import (
    STALE_BASELINE_RULE_ID,
    SYNTAX_RULE_ID,
    available_rules,
)
from repro.analysis.findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "kalis-lint"

#: Titles for the pseudo-rules that have no registered Rule class.
_PSEUDO_RULES = {
    SYNTAX_RULE_ID: "file failed to parse",
    STALE_BASELINE_RULE_ID: "stale baseline entry",
}


def _rule_descriptors() -> List[Dict[str, object]]:
    """Every rule id the tool can emit, as SARIF reportingDescriptors."""
    titles = dict(_PSEUDO_RULES)
    for rule_class in available_rules():
        titles[rule_class.ID] = rule_class.TITLE
    return [
        {"id": rule_id, "shortDescription": {"text": titles[rule_id]}}
        for rule_id in sorted(titles)
    ]


def render_sarif(findings: Sequence[Finding]) -> str:
    """The findings as a SARIF 2.1.0 log (one run, trailing newline)."""
    descriptors = _rule_descriptors()
    rule_index = {
        descriptor["id"]: position
        for position, descriptor in enumerate(descriptors)
    }
    results: List[Dict[str, object]] = []
    for finding in findings:
        region: Dict[str, object] = {"startLine": max(1, finding.line)}
        if finding.column is not None:
            region["startColumn"] = finding.column
        result: Dict[str, object] = {
            "ruleId": finding.rule,
            "level": finding.severity.value,
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": region,
                    }
                }
            ],
            "partialFingerprints": {
                "kalisLintKey/v1": (
                    f"{finding.rule}:{finding.path}:{finding.key}"
                )
            },
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True) + "\n"
