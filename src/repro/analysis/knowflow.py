"""The whole-program knowledge-flow and bus-topic graphs.

Built on the :mod:`repro.analysis.callgraph` layer, this module derives
the two dataflow surfaces Kalis's correctness rests on (paper §IV):

- the **knowledge flow**: every knowgget *writer* (``kb.put`` /
  ``kb.put_static``, directly or through a label-forwarding wrapper) and
  every *reader* (``kb.get`` / ``get_knowgget`` / ``with_label`` /
  ``subscribe`` / ``sublabels`` plus ``Requirement(label=…)``
  declarations);
- the **topic graph**: every ``bus.publish`` site (directly or through a
  topic-forwarding wrapper such as ``ModuleSupervisor._publish``) and
  every ``bus.subscribe`` / ``subscribe_prefix`` site.

Unlike the per-file KL003/KL005 passes, sites hidden behind wrappers are
resolved here (``self._publish_rate(f"TrafficIn.{kind}", …)`` *is* a
``TrafficIn.`` writer), and a light local constant propagation follows
single-assignment locals (``label = f"SharedAlert{i}"; kb.put(label)``
is a ``SharedAlert`` prefix write).

Both graphs export deterministically (:func:`export_json`,
:func:`export_dot`): iteration is sorted everywhere, so two runs over
the same tree produce byte-identical output — CI asserts this.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.astutil import (
    StrPattern,
    call_arg,
    pattern_covers,
    patterns_overlap,
    string_pattern,
)
from repro.analysis.callgraph import CallGraph, CallSite, FunctionInfo
from repro.analysis.project import Project

#: Packages the flow never scans: the analyzer itself, and the taxonomy
#: helpers which build knowledge bases reflectively from the very maps
#: under test (mirrors rules/labels.py).
EXCLUDED_PACKAGES = ("repro.analysis", "repro.taxonomy")


@dataclass(frozen=True)
class FlowSite:
    """One writer/reader/publish/subscribe occurrence."""

    pattern: StrPattern
    path: str
    line: int
    module: str
    via: str  # "put", "get", "requirement", "publish", "subscribe", ...
    owner: Optional[str] = None  # enclosing class
    function: Optional[str] = None  # enclosing function qualname
    #: Wrapper qualname when the site was derived through one
    #: (``ModuleSupervisor._publish``), None for direct primitives.
    derived_from: Optional[str] = None
    #: kb reads only: does the call carry a ``default=`` fallback?
    has_default: bool = False

    def render(self) -> str:
        kind, value = self.pattern
        if kind == "exact" and value is not None:
            return value
        if kind == "prefix" and value is not None:
            return f"{value}*"
        return "<dynamic>"


@dataclass
class KnowFlow:
    """The derived whole-program knowledge and topic flow."""

    writes: List[FlowSite] = field(default_factory=list)
    reads: List[FlowSite] = field(default_factory=list)
    publishes: List[FlowSite] = field(default_factory=list)
    subscribes: List[FlowSite] = field(default_factory=list)
    #: class name -> its declared Requirement labels.
    requirement_labels: Dict[str, Set[str]] = field(default_factory=dict)
    #: every string constant in the scanned tree -> paths containing it.
    string_constants: Dict[str, Set[str]] = field(default_factory=dict)

    # -- queries ---------------------------------------------------------------

    def written(self, label: str) -> bool:
        """Is a concrete label covered by some write site?"""
        return any(pattern_covers(site.pattern, label) for site in self.writes)

    def read_overlaps(self, pattern: StrPattern) -> bool:
        """Could a write with this pattern ever be read?"""
        for site in self.reads:
            if patterns_overlap(pattern, site.pattern):
                return True
        for labels in self.requirement_labels.values():
            for label in labels:
                if pattern_covers(pattern, label):
                    return True
        return False

    def has_dynamic_write(self) -> bool:
        return any(site.pattern[0] == "dynamic" for site in self.writes)

    def has_dynamic_publish(self) -> bool:
        return any(site.pattern[0] == "dynamic" for site in self.publishes)

    def referenced_elsewhere(self, label: str, own_paths: Set[str]) -> bool:
        """Does the label occur as a string constant outside ``own_paths``?"""
        return bool(self.string_constants.get(label, set()) - own_paths)


def derive_knowflow(
    project: Project, graph: Optional[CallGraph] = None
) -> KnowFlow:
    """Build the knowledge-flow and topic graphs for a parsed project."""
    if graph is None:
        graph = CallGraph.build(project)
    flow = KnowFlow()
    excluded_files = {
        source.module
        for source in project.files
        if any(source.in_package(pkg) for pkg in EXCLUDED_PACKAGES)
    }

    for source in project.files:
        if source.module in excluded_files:
            continue
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                flow.string_constants.setdefault(node.value, set()).add(
                    source.relpath
                )

    for site in graph.call_sites:
        if site.source.module in excluded_files:
            continue
        _classify_site(project, graph, site, flow)
    _sort_flow(flow)
    return flow


def _classify_site(
    project: Project, graph: CallGraph, site: CallSite, flow: KnowFlow
) -> None:
    chain = site.chain
    method = chain[-1]

    # Requirement(label=…) declarations — knowledge readers by contract.
    if method == "Requirement" or (
        len(chain) >= 2 and list(chain[-2:]) == ["base", "Requirement"]
    ):
        label_node = call_arg(site.node, 0, "label")
        if label_node is None:
            return
        pattern = _pattern_at(project, graph, site, label_node)
        flow.reads.append(_site(site, pattern, "requirement"))
        kind, value = pattern
        if kind == "exact" and value is not None and site.owner_class:
            flow.requirement_labels.setdefault(site.owner_class, set()).add(
                value
            )
        return

    # Skip a wrapper's own internal forwarding call — its *call sites*
    # carry the real label/topic patterns (classifying the body's
    # ``self.bus.publish(topic, …)`` would only add a bogus dynamic site
    # and suppress whole-program liveness checks).
    if site.caller is not None and site.caller.key in graph.wrappers:
        spec = graph.wrappers[site.caller.key]
        forwarded = call_arg(
            site.node,
            0 if graph.primitive_kind(site) else spec.index,
            spec.param,
        )
        if isinstance(forwarded, ast.Name) and forwarded.id == spec.param:
            return

    primitive = graph.primitive_kind(site)
    if primitive is not None:
        role, kind = primitive
        if role == "kb":
            argument = call_arg(
                site.node, 0, "root_label" if method == "sublabels" else "label"
            )
            if argument is None:
                return
            if kind == "write":
                flow.writes.append(
                    _site(
                        site,
                        _pattern_at(project, graph, site, argument),
                        method,
                    )
                )
            else:
                for pattern in _read_patterns(project, graph, site, argument):
                    flow.reads.append(
                        _site(
                            site,
                            pattern,
                            method,
                            has_default=_has_default(site.node),
                        )
                    )
        else:
            argument = call_arg(
                site.node, 0, "topic" if method == "publish" else "prefix"
            )
            if argument is None:
                return
            pattern = _pattern_at(project, graph, site, argument)
            if method == "subscribe_prefix" and pattern[0] == "exact":
                # A prefix subscription matches a topic family by design.
                pattern = ("prefix", pattern[1])
            if kind == "publish":
                flow.publishes.append(_site(site, pattern, method))
            else:
                flow.subscribes.append(_site(site, pattern, method))
        return

    # Wrapper call: the target forwards one parameter into a primitive.
    spec = graph.wrapper_for(site)
    if spec is None:
        return
    argument = call_arg(site.node, spec.index, spec.param)
    if argument is None:
        return
    pattern = _pattern_at(project, graph, site, argument)
    assert site.target is not None
    derived = f"{site.target.module}.{site.target.qualname}"
    if spec.role == "kb" and spec.kind == "write":
        flow.writes.append(
            _site(site, pattern, spec.method, derived_from=derived)
        )
    elif spec.role == "kb":
        for sub_pattern in _read_patterns(project, graph, site, argument):
            flow.reads.append(
                _site(
                    site,
                    sub_pattern,
                    spec.method,
                    derived_from=derived,
                    has_default=_has_default(site.node),
                )
            )
    elif spec.kind == "publish":
        flow.publishes.append(
            _site(site, pattern, spec.method, derived_from=derived)
        )
    else:
        flow.subscribes.append(
            _site(site, pattern, spec.method, derived_from=derived)
        )


def _site(
    site: CallSite,
    pattern: StrPattern,
    via: str,
    derived_from: Optional[str] = None,
    has_default: bool = False,
) -> FlowSite:
    return FlowSite(
        pattern=pattern,
        path=site.source.relpath,
        line=site.node.lineno,
        module=site.source.module,
        via=via,
        owner=site.owner_class,
        function=site.caller.qualname if site.caller else None,
        derived_from=derived_from,
        has_default=has_default,
    )


def _pattern_at(
    project: Project, graph: CallGraph, site: CallSite, node: ast.expr
) -> StrPattern:
    """Classify a string argument, with local constant propagation.

    A name is first looked up among the enclosing function's
    single-assignment locals (``label = f"SharedAlert{i}"``), then among
    module-level constants (imports followed), then — for dotted
    references — through module aliases.
    """
    module = site.source.module
    locals_map = (
        _local_bindings(project, graph, site.caller) if site.caller else {}
    )

    def resolve(name: str) -> Optional[str]:
        bound = locals_map.get(name)
        if bound is not None and bound[0] == "exact":
            return bound[1]
        return project.resolve_str(module, name)

    def resolve_chain(chain: List[str]) -> Optional[str]:
        return project.resolve_str_chain(module, chain)

    if isinstance(node, ast.Name) and node.id in locals_map:
        bound = locals_map[node.id]
        if bound[0] != "exact":
            return bound
    return string_pattern(node, resolve, resolve_chain)


def _local_bindings(
    project: Project, graph: CallGraph, caller: FunctionInfo
) -> Dict[str, StrPattern]:
    """Single-assignment local name -> statically-known string pattern."""
    cache: Dict[Tuple[str, str], Dict[str, StrPattern]] = getattr(
        graph, "_locals_cache", None
    ) or {}
    if not hasattr(graph, "_locals_cache"):
        graph._locals_cache = cache  # type: ignore[attr-defined]
    cached = cache.get(caller.key)
    if cached is not None:
        return cached

    def resolve(name: str) -> Optional[str]:
        return project.resolve_str(caller.module, name)

    assigned: Dict[str, int] = {}
    bindings: Dict[str, StrPattern] = {}
    for node in ast.walk(caller.node):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            targets = [node.target]  # loop variables are never constant
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        if value is None and not targets:
            continue
        for target in targets:
            for name_node in ast.walk(target):
                if isinstance(name_node, ast.Name):
                    assigned[name_node.id] = assigned.get(name_node.id, 0) + 1
                    if value is not None and isinstance(target, ast.Name):
                        bindings[name_node.id] = string_pattern(value, resolve)
                    else:
                        bindings[name_node.id] = ("dynamic", None)
    result = {
        name: pattern
        for name, pattern in bindings.items()
        if assigned.get(name, 0) == 1 and pattern[0] != "dynamic"
    }
    cache[caller.key] = result
    return result


def _read_patterns(
    project: Project, graph: CallGraph, site: CallSite, node: ast.expr
) -> List[StrPattern]:
    """Read-side patterns: a str pattern, or each element of a str-tuple."""
    pattern = _pattern_at(project, graph, site, node)
    if pattern[0] != "dynamic":
        return [pattern]
    if isinstance(node, ast.Name):
        as_tuple = project.resolve_str_tuple(site.source.module, node.id)
        if as_tuple is not None:
            return [("exact", value) for value in as_tuple]
    return [pattern]


def _has_default(call: ast.Call) -> bool:
    return any(keyword.arg == "default" for keyword in call.keywords)


def _sort_flow(flow: KnowFlow) -> None:
    key = lambda s: (s.path, s.line, s.via, s.render())  # noqa: E731
    flow.writes.sort(key=key)
    flow.reads.sort(key=key)
    flow.publishes.sort(key=key)
    flow.subscribes.sort(key=key)


# -- export --------------------------------------------------------------------


def _site_dict(site: FlowSite) -> Dict[str, object]:
    payload: Dict[str, object] = {
        "pattern": site.render(),
        "path": site.path,
        "line": site.line,
        "module": site.module,
        "via": site.via,
    }
    if site.owner:
        payload["owner"] = site.owner
    if site.function:
        payload["function"] = site.function
    if site.derived_from:
        payload["derived_from"] = site.derived_from
    if site.has_default:
        payload["has_default"] = True
    return payload


def _edges(
    producers: List[FlowSite], consumers: List[FlowSite]
) -> List[Dict[str, object]]:
    """Pattern-level edges: each producer pattern with its overlapping
    consumer patterns (and vice versa, so orphans appear on both sides)."""
    names: Set[str] = set()
    for site in producers + consumers:
        if site.pattern[0] != "dynamic":
            names.add(site.render())
    edges = []
    for name in sorted(names):
        pattern: StrPattern = (
            ("prefix", name[:-1]) if name.endswith("*") else ("exact", name)
        )
        edges.append(
            {
                "pattern": name,
                "producers": sorted(
                    {
                        f"{s.module}:{s.line}"
                        for s in producers
                        if patterns_overlap(pattern, s.pattern)
                    }
                ),
                "consumers": sorted(
                    {
                        f"{s.module}:{s.line}"
                        for s in consumers
                        if patterns_overlap(pattern, s.pattern)
                    }
                ),
            }
        )
    return edges


def export_json(flow: KnowFlow) -> str:
    """The full flow as deterministic (byte-stable) JSON."""
    payload = {
        "knowledge": {
            "writes": [_site_dict(s) for s in flow.writes],
            "reads": [_site_dict(s) for s in flow.reads],
            "requirements": {
                owner: sorted(labels)
                for owner, labels in sorted(flow.requirement_labels.items())
            },
            "edges": _edges(flow.writes, flow.reads),
        },
        "topics": {
            "publishes": [_site_dict(s) for s in flow.publishes],
            "subscribes": [_site_dict(s) for s in flow.subscribes],
            "edges": _edges(flow.publishes, flow.subscribes),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def export_dot(flow: KnowFlow) -> str:
    """Module → label/topic → module edges as deterministic Graphviz DOT."""
    lines = [
        "digraph kalis_flow {",
        "  rankdir=LR;",
        '  node [fontname="monospace"];',
    ]

    def emit(producers, consumers, shape, prefix):
        edges: Set[Tuple[str, str]] = set()
        nodes: Set[str] = set()
        for site in producers:
            if site.pattern[0] == "dynamic":
                continue
            name = f"{prefix}:{site.render()}"
            nodes.add(name)
            edges.add((site.module, name))
        for site in consumers:
            if site.pattern[0] == "dynamic":
                continue
            name = f"{prefix}:{site.render()}"
            nodes.add(name)
            edges.add((name, site.module))
        for name in sorted(nodes):
            lines.append(f'  "{name}" [shape={shape}];')
        for left, right in sorted(edges):
            lines.append(f'  "{left}" -> "{right}";')

    emit(flow.writes, flow.reads, "box", "label")
    emit(flow.publishes, flow.subscribes, "ellipse", "topic")
    lines.append("}")
    return "\n".join(lines) + "\n"
