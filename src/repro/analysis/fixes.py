"""``kalis-lint --fix`` — mechanical rewrites for autofixable findings.

Only KL006 (unused module-level imports) is autofixable today: the
rule's finding carries the exact statement line and the unused local
name, so the fix is a pure line-level rewrite — drop the dead alias,
regenerate the statement if other aliases survive, delete the lines if
none do.  The rewrite is idempotent (a fixed tree re-lints clean and a
second ``--fix`` changes nothing) and ``--fix --dry-run`` prints the
unified diff instead of writing.
"""

from __future__ import annotations

import ast
import difflib
from pathlib import Path
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.project import Project

#: Rules --fix knows how to rewrite.
FIXABLE_RULES = frozenset({"KL006"})


def fixable(findings: Iterable[Finding]) -> List[Finding]:
    """The subset of findings ``--fix`` can rewrite."""
    return [f for f in findings if f.rule in FIXABLE_RULES]


def apply_fixes(
    project: Project, findings: Iterable[Finding], dry_run: bool = False
) -> Tuple[List[str], str]:
    """Rewrite the files behind fixable findings.

    Returns ``(changed relpaths, unified diff)``; with ``dry_run`` the
    diff is computed but nothing is written.
    """
    by_path: Dict[str, Set[Tuple[int, str]]] = {}
    for finding in fixable(findings):
        by_path.setdefault(finding.path, set()).add(
            (finding.line, finding.key)
        )
    changed: List[str] = []
    diffs: List[str] = []
    by_relpath = {source.relpath: source for source in project.files}
    for relpath in sorted(by_path):
        source = by_relpath.get(relpath)
        if source is None:
            continue
        rewritten = _remove_unused_imports(source.text, by_path[relpath])
        if rewritten == source.text:
            continue
        changed.append(relpath)
        diffs.append(
            "".join(
                difflib.unified_diff(
                    source.text.splitlines(keepends=True),
                    rewritten.splitlines(keepends=True),
                    fromfile=f"a/{relpath}",
                    tofile=f"b/{relpath}",
                )
            )
        )
        if not dry_run:
            Path(source.path).write_text(rewritten, encoding="utf-8")
    return changed, "".join(diffs)


def _remove_unused_imports(
    text: str, unused: Set[Tuple[int, str]]
) -> str:
    """Drop the named aliases from the import statements at those lines."""
    try:
        tree = ast.parse(text)
    except SyntaxError:
        return text
    unused_by_line: Dict[int, Set[str]] = {}
    for line, name in unused:
        unused_by_line.setdefault(line, set()).add(name)
    lines = text.splitlines(keepends=True)
    # Collect edits bottom-up so earlier line numbers stay valid.
    edits: List[Tuple[int, int, List[str]]] = []
    for statement in tree.body:
        dead = unused_by_line.get(statement.lineno)
        if not dead:
            continue
        if not isinstance(statement, (ast.Import, ast.ImportFrom)):
            continue
        if isinstance(statement, ast.Import):
            local_of = lambda a: a.asname or a.name.split(".", 1)[0]
        else:
            local_of = lambda a: a.asname or a.name
        kept = [
            alias for alias in statement.names if local_of(alias) not in dead
        ]
        if len(kept) == len(statement.names):
            continue
        start = statement.lineno - 1
        end = statement.end_lineno or statement.lineno
        if not kept:
            replacement: List[str] = []
        else:
            replacement = [_render_import(statement, kept) + "\n"]
        edits.append((start, end, replacement))
    if not edits:
        return text
    for start, end, replacement in sorted(edits, reverse=True):
        lines[start:end] = replacement
    return "".join(lines)


def _render_import(statement: ast.stmt, kept: List[ast.alias]) -> str:
    def render_alias(alias: ast.alias) -> str:
        return (
            f"{alias.name} as {alias.asname}" if alias.asname else alias.name
        )

    parts = ", ".join(render_alias(alias) for alias in kept)
    if isinstance(statement, ast.Import):
        return f"import {parts}"
    dots = "." * statement.level
    module = statement.module or ""
    return f"from {dots}{module} import {parts}"
