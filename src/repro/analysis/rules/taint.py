"""KL105 — determinism taint: nondeterminism must not reach decisions.

KL001 bans *calling* ambient time/randomness in the deterministic
substrate.  This rule closes the remaining gap with an intraprocedural
taint walk: a value derived from a nondeterministic **source** —
wall-clock (``time.time``/``monotonic``/``perf_counter``),
``datetime.now``/``utcnow``/``today``, the global ``random`` module,
``os.urandom``, ``uuid.uuid4``, or CPython object identity (``id()``,
whose values vary across runs and poison any ordering or hashing
decision) — must not flow into a **sink** that shapes behaviour:

- a branch condition (``if``/``while`` tests);
- an event-bus publish (``*.bus.publish(…)`` arguments);
- an alert payload (``raise_alert(…)`` arguments);
- a Knowledge Base write (``kb.put``/``put_static`` arguments).

Taint propagates through assignments within one function body (to a
fixed point, so chains like ``a = time.time(); b = a * 2`` are caught).

:mod:`repro.obs` is the sole sanctioned sink — telemetry may timestamp
freely (it is excluded from the replay-equality oracle), mirroring the
KL001 exemption for :mod:`repro.util`, where the seeded wrappers live.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Set

from repro.analysis.astutil import attribute_chain
from repro.analysis.engine import Rule, register_rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project, SourceFile

#: Packages in which tainted flow is banned (KL001's set plus the event
#: bus, experiments, and firewall — everything replay equality covers).
GUARDED_PACKAGES = (
    "repro.sim",
    "repro.core",
    "repro.proto",
    "repro.attacks",
    "repro.eventbus",
    "repro.experiments",
    "repro.firewall",
)
#: Sanctioned sinks/wrapper homes, never scanned.
EXEMPT_PACKAGES = ("repro.obs", "repro.util", "repro.analysis")

_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
    }
)
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
_KB_RECEIVERS = frozenset({"kb", "_kb"})
_KB_WRITES = frozenset({"put", "put_static"})


def _source_of(node: ast.AST) -> Optional[str]:
    """A human-readable source name when ``node`` is a taint source."""
    if not isinstance(node, ast.Call):
        return None
    if isinstance(node.func, ast.Name) and node.func.id == "id":
        return "id()"
    chain = attribute_chain(node.func)
    if not chain or len(chain) < 2:
        return None
    head, attr = chain[0], chain[-1]
    if head == "time" and attr in _TIME_ATTRS:
        return f"time.{attr}"
    if head == "datetime" and attr in _DATETIME_ATTRS:
        return f"datetime.{attr}"
    if head == "random":
        return f"random.{attr}"
    if head == "os" and attr == "urandom":
        return "os.urandom"
    if head == "uuid" and attr in ("uuid1", "uuid4"):
        return f"uuid.{attr}"
    return None


def _names_in(node: ast.AST) -> Set[str]:
    return {
        child.id for child in ast.walk(node) if isinstance(child, ast.Name)
    }


def _first_source_in(node: ast.AST) -> Optional[str]:
    for child in ast.walk(node):
        what = _source_of(child)
        if what is not None:
            return what
    return None


class _FunctionTaint:
    """Taint state for one function body."""

    def __init__(self, body: List[ast.stmt]) -> None:
        self.tainted: dict = {}  # name -> source description
        self._propagate(body)

    def _propagate(self, body: List[ast.stmt]) -> None:
        statements = [
            node
            for stmt in body
            for node in ast.walk(stmt)
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign))
        ]
        changed = True
        while changed:
            changed = False
            for node in statements:
                value = node.value
                if value is None:
                    continue
                what = self.taint_of(value)
                if what is None:
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    for name_node in ast.walk(target):
                        if (
                            isinstance(name_node, ast.Name)
                            and name_node.id not in self.tainted
                        ):
                            self.tainted[name_node.id] = what
                            changed = True

    def taint_of(self, node: ast.AST) -> Optional[str]:
        """Why the expression is tainted, or None if it is clean."""
        direct = _first_source_in(node)
        if direct is not None:
            return direct
        for name in sorted(_names_in(node)):
            if name in self.tainted:
                return self.tainted[name]
        return None


@register_rule
class DeterminismTaintRule(Rule):
    """KL105: nondeterministic values must not reach decision sinks."""

    ID = "KL105"
    TITLE = "determinism taint: sources must not flow into sinks"

    def check(self, project: Project) -> Iterable[Finding]:
        for source in project.files:
            if any(source.in_package(pkg) for pkg in EXEMPT_PACKAGES):
                continue
            if not any(source.in_package(pkg) for pkg in GUARDED_PACKAGES):
                continue
            yield from self._check_file(source)

    def _check_file(self, source: SourceFile) -> Iterator[Finding]:
        for function in self._functions(source.tree):
            taint = _FunctionTaint(function.body)
            yield from self._check_sinks(source, function, taint)

    @staticmethod
    def _functions(tree: ast.Module):
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def _check_sinks(
        self, source: SourceFile, function: ast.AST, taint: _FunctionTaint
    ) -> Iterator[Finding]:
        for node in ast.walk(function):
            if isinstance(node, (ast.If, ast.While)):
                what = taint.taint_of(node.test)
                if what is not None:
                    yield self._flow(
                        source, node, function, what, "a branch condition"
                    )
            elif isinstance(node, ast.Call):
                sink = self._sink_kind(node)
                if sink is None:
                    continue
                for argument in list(node.args) + [
                    kw.value for kw in node.keywords
                ]:
                    what = taint.taint_of(argument)
                    if what is not None:
                        yield self._flow(source, node, function, what, sink)
                        break

    @staticmethod
    def _sink_kind(call: ast.Call) -> Optional[str]:
        chain = attribute_chain(call.func)
        if not chain:
            return None
        method = chain[-1]
        if method == "raise_alert":
            return "an alert payload"
        if len(chain) < 2:
            return None
        receiver = chain[-2]
        if method == "publish" and (
            receiver == "bus" or receiver.endswith("bus")
        ):
            return "a bus publish"
        if method in _KB_WRITES and receiver in _KB_RECEIVERS:
            return "a knowledge write"
        return None

    def _flow(
        self,
        source: SourceFile,
        node: ast.AST,
        function: ast.AST,
        what: str,
        sink: str,
    ) -> Finding:
        name = getattr(function, "name", "<function>")
        line = getattr(node, "lineno", 0)
        return self.finding(
            Severity.ERROR,
            source.relpath,
            line,
            f"nondeterministic value from {what} flows into {sink} in"
            f" {name}() — replay equality breaks; route through the seeded"
            " wrappers in repro.util, or record via repro.obs",
            key=f"{name}:{what}:{sink}",
        )
