"""KL008 — no ``print()`` outside the CLI surface.

The library layers (``repro.sim``, ``repro.core``, ``repro.obs``, …)
must never write to stdout: experiment harnesses compare rendered
reports byte-for-byte, benches parse captured output, and the
telemetry layer exists precisely so runtime events have a structured
channel.  A stray ``print()`` in a module handler corrupts every one
of those consumers at once.

Allowed homes for ``print``:

- ``repro.cli`` and any ``__main__`` module — the operator surface;
- ``repro.analysis`` — kalis-lint's own CLI reporting.

Everything else should either *return* the text (the ``summary()`` /
``render()`` convention) or record the event through
``repro.obs.Telemetry``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.engine import FileRule, register_rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project, SourceFile

#: Packages whose modules may call ``print`` freely.
EXEMPT_PACKAGES = ("repro.cli", "repro.analysis")

_FIX_HINT = (
    "return the text (summary()/render() convention) or record the event"
    " via repro.obs.Telemetry; print only in repro.cli, __main__ modules"
    " and repro.analysis"
)


@register_rule
class PrintRule(FileRule):
    """KL008: ``print()`` is reserved for the CLI surface."""

    ID = "KL008"
    TITLE = "no print() outside cli/__main__/analysis"

    def check_file(
        self, project: Project, source: SourceFile
    ) -> Iterable[Finding]:
        if not self._exempt(source):
            yield from self._check_file(source)

    @staticmethod
    def _exempt(source: SourceFile) -> bool:
        if source.module == "__main__" or source.module.endswith(".__main__"):
            return True
        return any(source.in_package(pkg) for pkg in EXEMPT_PACKAGES)

    def _check_file(self, source: SourceFile) -> Iterator[Finding]:
        shadowed = _module_shadows_print(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id == "print"
                and func.id not in shadowed
            ):
                yield self.finding(
                    Severity.ERROR,
                    source.relpath,
                    node.lineno,
                    f"print() call in library module {source.module};"
                    f" {_FIX_HINT}",
                    key=f"print:{node.lineno}",
                    column=node.col_offset,
                )


def _module_shadows_print(tree: ast.Module) -> frozenset:
    """Names rebound at module level (a local ``print = ...`` is legal)."""
    rebound = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    rebound.add(target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                rebound.add(alias.asname or alias.name.split(".", 1)[0])
    return frozenset(rebound & {"print"})
