"""KL201–KL205 — checkpoint-safety and shard-isolation rules.

These rules run on the :mod:`repro.analysis.stategraph` whole-program
state inventory.  They are the static gate for ROADMAP items 1 and 5: a
sharded multi-site fleet and a resumable service mode with
KB/DataStore/RNG snapshot-restore.

- **KL201** — hidden mutable state: a module-level mutable binding that
  some code mutates, or a class-body mutable display shared by every
  instance and mutated in place.  Both live outside any checkpoint root,
  so a snapshot silently misses them and two shards in one process share
  them.
- **KL202** — non-picklable state reachable from a checkpoint root:
  locks, open file handles, lambdas, generators, weakrefs, live hashlib
  objects.  A class carrying one must define ``__getstate__``/
  ``__setstate__``/``__reduce__`` or a rebuild hook, or the snapshot
  fails (or worse, half-succeeds).
- **KL203** — RNG provenance: every stream must flow from the node seed
  through :mod:`repro.util.rng`.  Direct ``random.*``/``np.random.*``
  use is an ERROR anywhere outside ``util.rng``; constructing a
  ``SeededRng``/``HashedStream`` from a numeric literal (instead of a
  derived seed) is a WARNING.  The injectable-default idiom
  ``rng if rng is not None else SeededRng(0, "label")`` is exempt — the
  literal branch is the documented test-only fallback.
- **KL204** — stale-after-restore caches: a derived field (spatial grid,
  timestamp ring, bound counters) mutated in place with no rebuild/
  invalidate hook referencing it.  A restore would resurrect the stale
  cache alongside fresh primary state.
- **KL205** — cross-shard aliasing: one mutable local passed into two or
  more shard-root constructors (``Simulator``/``KalisNode`` and
  subclasses), or a mutable default parameter value on a reachable
  class's method (shared across all instances and calls).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.engine import Rule, register_rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project, SourceFile
from repro.analysis.stategraph import (
    DERIVED,
    MUTABLE_FACTORY_NAMES,
    RNG_CONSTRUCTORS,
    StateGraph,
    derive_stategraph,
    _chain_of,
    _is_mutable_literal,
)

#: The one module allowed to touch raw randomness primitives.
RNG_HOME_MODULE = "repro.util.rng"

#: Chains whose first segment resolving to one of these modules marks a
#: raw-randomness use.
RAW_RNG_MODULES = frozenset({"random", "numpy.random"})


def shared_stategraph(project: Project) -> StateGraph:
    """Build (and memoize on the project) the whole-program state graph."""
    cached = getattr(project, "_stategraph_cache", None)
    if cached is not None:
        return cached
    graph = getattr(project, "_callgraph_cache", None)
    if graph is None:
        graph = CallGraph.build(project)
        project._callgraph_cache = graph  # type: ignore[attr-defined]
    state = derive_stategraph(project, graph)
    project._stategraph_cache = state  # type: ignore[attr-defined]
    return state


def _scanned_files(state: StateGraph) -> Iterable[SourceFile]:
    for source in state.project.files:
        if state.scanned(source):
            yield source


@register_rule
class HiddenMutableStateRule(Rule):
    """KL201: no mutable state outside the checkpoint inventory."""

    ID = "KL201"
    TITLE = "state: hidden module/class-level mutable state"

    def check(self, project: Project) -> Iterable[Finding]:
        state = shared_stategraph(project)
        for entry in state.module_globals:
            if not entry.mutated_lines:
                continue
            yield self.finding(
                Severity.WARNING,
                entry.path,
                entry.line,
                f"module-level mutable {entry.name!r} is mutated at line"
                f" {entry.mutated_lines[0]} — this state lives outside every"
                " checkpoint root and is shared across shards in one process",
                key=entry.name,
            )
        for key in sorted(state.classes):
            class_state = state.classes[key]
            for name in sorted(class_state.fields):
                field = class_state.fields[name]
                if (
                    field.class_level
                    and field.mutable_literal
                    and field.mutated_lines
                ):
                    yield self.finding(
                        Severity.WARNING,
                        class_state.path,
                        field.line,
                        f"class-level mutable {class_state.name}.{name} is"
                        " mutated in place — it is shared by every instance"
                        " and invisible to per-instance snapshots",
                        key=f"{class_state.name}.{name}",
                    )


@register_rule
class NonPicklableStateRule(Rule):
    """KL202: checkpoint-reachable state must survive pickling."""

    ID = "KL202"
    TITLE = "state: non-picklable state reachable from a checkpoint root"

    def check(self, project: Project) -> Iterable[Finding]:
        state = shared_stategraph(project)
        for class_state in state.reachable_classes():
            if class_state.has_pickle_hook():
                continue
            for name in sorted(class_state.fields):
                field = class_state.fields[name]
                if field.non_picklable is None:
                    continue
                roots = ", ".join(sorted(class_state.roots))
                yield self.finding(
                    Severity.ERROR,
                    class_state.path,
                    field.line,
                    f"{class_state.name}.{name} holds a non-picklable value"
                    f" ({field.non_picklable}) and is reachable from"
                    f" checkpoint root(s) {roots} without a"
                    " __getstate__/__setstate__/rebuild hook",
                    key=f"{class_state.name}.{name}",
                )


@register_rule
class RngProvenanceRule(Rule):
    """KL203: all randomness flows from the node seed via util.rng."""

    ID = "KL203"
    TITLE = "state: RNG constructed outside util.rng seed derivation"

    def check(self, project: Project) -> Iterable[Finding]:
        state = shared_stategraph(project)
        for source in _scanned_files(state):
            if source.module == RNG_HOME_MODULE:
                continue
            exempt_lines = _injectable_default_lines(source.tree)
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                chain = _chain_of(node.func)
                if chain is None:
                    continue
                raw = self._raw_rng_chain(project, source, chain)
                if raw is not None:
                    yield self.finding(
                        Severity.ERROR,
                        source.relpath,
                        node.lineno,
                        f"raw randomness {raw} bypasses util.rng seed"
                        " derivation — draws are irreproducible and"
                        " unlabelled (paper's deterministic-replay seam)",
                        key=raw,
                    )
                    continue
                if (
                    chain[-1] in RNG_CONSTRUCTORS
                    and chain[-1] in {"SeededRng", "HashedStream"}
                    and node.args
                    and _is_numeric_literal(node.args[0])
                    and node.lineno not in exempt_lines
                ):
                    yield self.finding(
                        Severity.WARNING,
                        source.relpath,
                        node.lineno,
                        f"{chain[-1]} constructed from a numeric literal —"
                        " the stream is not derived from the node seed, so"
                        " reseeding the experiment will not reseed it",
                        key=chain[-1],
                    )

    @staticmethod
    def _raw_rng_chain(
        project: Project, source: SourceFile, chain: Tuple[str, ...]
    ) -> Optional[str]:
        """The dotted chain when it is a raw random/np.random call."""
        if len(chain) < 2:
            return None
        head = chain[0]
        resolved = project.resolve_module(source.module, head)
        if resolved is None:
            link = project.imported_names.get((source.module, head))
            if link is not None and link[1] == "":
                resolved = link[0]
        module = resolved or head
        dotted = ".".join(chain)
        if module == "random" or dotted.startswith("random."):
            return dotted
        if (
            module in {"numpy", "np"}
            or head in {"np", "numpy"}
        ) and len(chain) >= 3 and chain[1] == "random":
            return dotted
        return None


def _is_numeric_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and not isinstance(
            node.value, bool
        )
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _is_numeric_literal(node.operand)
    return False


def _injectable_default_lines(tree: ast.AST) -> Set[int]:
    """Lines of RNG calls inside the injectable-default IfExp idiom."""
    lines: Set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.IfExp):
            continue
        branches = [node.body, node.orelse]
        names = [b for b in branches if isinstance(b, ast.Name)]
        calls = [b for b in branches if isinstance(b, ast.Call)]
        if len(names) == 1 and len(calls) == 1:
            for call in ast.walk(calls[0]):
                if isinstance(call, ast.Call):
                    lines.add(call.lineno)
    return lines


@register_rule
class StaleCacheRule(Rule):
    """KL204: in-place-mutated derived caches need a rebuild hook."""

    ID = "KL204"
    TITLE = "state: derived cache mutated in place without a rebuild hook"

    def check(self, project: Project) -> Iterable[Finding]:
        state = shared_stategraph(project)
        for class_state in state.reachable_classes():
            for name in sorted(class_state.fields):
                field = class_state.fields[name]
                if field.kind != DERIVED or not field.mutated_lines:
                    continue
                if class_state.hook_covers(name):
                    continue
                yield self.finding(
                    Severity.WARNING,
                    class_state.path,
                    field.line or field.mutated_lines[0],
                    f"derived cache {class_state.name}.{name} is mutated in"
                    f" place (line {field.mutated_lines[0]}) but no"
                    " rebuild_derived_state/invalidate hook references it —"
                    " a snapshot-restore would resurrect it stale",
                    key=f"{class_state.name}.{name}",
                )


@register_rule
class CrossShardAliasRule(Rule):
    """KL205: no mutable object shared between two shard roots."""

    ID = "KL205"
    TITLE = "state: mutable object aliased across shard roots"

    #: Keyword names that are deliberately process-wide (observability).
    SHARED_OK_NAMES = frozenset({"telemetry", "clock"})

    def check(self, project: Project) -> Iterable[Finding]:
        state = shared_stategraph(project)
        yield from self._aliased_constructor_args(state)
        yield from self._mutable_default_params(state)

    def _aliased_constructor_args(
        self, state: StateGraph
    ) -> Iterable[Finding]:
        # Group root-constructor calls by enclosing function; a bare name
        # passed to >= 2 of them, bound to a statically-mutable value in
        # that function, is a shared mutable alias.
        by_scope: Dict[
            Tuple[str, Optional[str]], List
        ] = {}
        for call in state.root_calls:
            by_scope.setdefault((call.module, call.function), []).append(call)
        for scope in sorted(by_scope, key=lambda s: (s[0], s[1] or "")):
            calls = by_scope[scope]
            if len(calls) < 2:
                continue
            uses: Dict[str, List] = {}
            for call in calls:
                for keyword, name in call.name_args:
                    if keyword in self.SHARED_OK_NAMES:
                        continue
                    if name in self.SHARED_OK_NAMES:
                        continue
                    uses.setdefault(name, []).append(call)
            module, function = scope
            mutable_locals = self._mutable_locals(state, module, function)
            for name in sorted(uses):
                sites = uses[name]
                if len(sites) < 2:
                    continue
                if name not in mutable_locals:
                    continue
                first = sites[0]
                lines = ", ".join(str(c.line) for c in sites)
                yield self.finding(
                    Severity.ERROR,
                    first.path,
                    first.line,
                    f"mutable {name!r} is passed into {len(sites)} shard-root"
                    f" constructors (lines {lines}) — the shards alias one"
                    " object and cannot be checkpointed or migrated"
                    " independently",
                    key=name,
                )

    def _mutable_locals(
        self, state: StateGraph, module: str, function: Optional[str]
    ) -> Set[str]:
        """Names bound to statically-mutable values in the scope."""
        names: Set[str] = set()
        if function is not None:
            info = state.graph.functions.get((module, function))
            body = info.node if info is not None else None
        else:
            source = state.project.by_module.get(module)
            body = source.tree if source is not None else None
        if body is None:
            return names
        for node in ast.walk(body):
            if isinstance(node, ast.Assign):
                if not self._is_shared_mutable(state, node.value):
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    @staticmethod
    def _is_shared_mutable(state: StateGraph, value: ast.expr) -> bool:
        if _is_mutable_literal(value):
            return True
        if isinstance(value, ast.Call):
            chain = _chain_of(value.func)
            if chain is None:
                return False
            callee = chain[-1]
            if callee in MUTABLE_FACTORY_NAMES:
                return True
            return callee in state.by_name
        return False

    def _mutable_default_params(self, state: StateGraph) -> Iterable[Finding]:
        for key in sorted(state.classes):
            class_state = state.classes[key]
            if not class_state.reachable:
                continue
            info_list = state.graph.classes.get(class_state.name, [])
            for info in info_list:
                if info.module != class_state.module:
                    continue
                for method_name in sorted(info.methods):
                    method = info.methods[method_name]
                    args = method.node.args
                    defaults = list(args.defaults) + list(args.kw_defaults)
                    for default in defaults:
                        if default is None:
                            continue
                        if isinstance(
                            default, (ast.List, ast.Dict, ast.Set)
                        ) or (
                            isinstance(default, ast.Call)
                            and (_chain_of(default.func) or ["?"])[-1]
                            in MUTABLE_FACTORY_NAMES
                        ):
                            yield self.finding(
                                Severity.ERROR,
                                class_state.path,
                                default.lineno,
                                f"mutable default on"
                                f" {class_state.name}.{method_name} — one"
                                " object is shared by every call and every"
                                " instance across shards",
                                key=f"{class_state.name}.{method_name}",
                            )
