"""KL006 — unused module-level imports.

A pyflakes-style F401 check that runs even where third-party linters are
unavailable (constrained CI images).  Deliberately conservative:

- only module-level ``import`` / ``from … import`` bindings are checked;
- a name counts as used if it appears as an identifier anywhere in the
  file, or as a word inside any string constant (``__all__`` lists,
  doctests, forward-reference annotations);
- ``__init__.py`` files are exempt (their imports are the re-export
  surface);
- a line containing ``noqa`` is never flagged.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, Set, Tuple

from repro.analysis.engine import FileRule, register_rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project, SourceFile


@register_rule
class UnusedImportRule(FileRule):
    """KL006: flag module-level imports nothing in the file references."""

    ID = "KL006"
    TITLE = "module-level imports that nothing references"

    def check_file(
        self, project: Project, source: SourceFile
    ) -> Iterable[Finding]:
        if source.path.name != "__init__.py":
            yield from self._check_file(source)

    def _check_file(self, source: SourceFile) -> Iterable[Finding]:
        bindings: Dict[str, Tuple[int, str]] = {}
        for statement in source.tree.body:
            if isinstance(statement, ast.Import):
                for alias in statement.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    bindings[local] = (statement.lineno, alias.name)
            elif isinstance(statement, ast.ImportFrom):
                if statement.module == "__future__":
                    continue
                for alias in statement.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    origin = f"{statement.module or '.'}.{alias.name}"
                    bindings[local] = (statement.lineno, origin)
        if not bindings:
            return

        used = _used_identifiers(source.tree)
        strings = _string_blob(source.tree)
        lines = source.text.splitlines()
        for local, (lineno, origin) in sorted(bindings.items()):
            if local in used:
                continue
            if re.search(rf"\b{re.escape(local)}\b", strings):
                continue
            line_text = lines[lineno - 1] if 0 < lineno <= len(lines) else ""
            if "noqa" in line_text:
                continue
            yield self.finding(
                Severity.WARNING,
                source.relpath,
                lineno,
                f"imported name {local!r} ({origin}) is never used in"
                f" {source.module}",
                key=local,
            )


def _used_identifiers(tree: ast.Module) -> Set[str]:
    """Every identifier referenced outside import statements."""
    used: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            used.add(node.attr)
    return used


def _string_blob(tree: ast.Module) -> str:
    """All string constants joined (docstrings, __all__, annotations)."""
    parts = [
        node.value
        for node in ast.walk(tree)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    ]
    return "\n".join(parts)
