"""Bundled kalis-lint rules.

Importing this package registers every rule with the engine registry.
Adding a rule = adding a module here that defines a
:class:`~repro.analysis.engine.Rule` subclass decorated with
:func:`~repro.analysis.engine.register_rule`, and importing it below.
"""

from repro.analysis.rules import (  # noqa: F401  (imports register rules)
    boundaries,
    contracts,
    determinism,
    flows,
    imports,
    labels,
    packets,
    prints,
    state,
    swallows,
    taint,
    topics,
)

__all__ = [
    "boundaries",
    "contracts",
    "determinism",
    "flows",
    "imports",
    "labels",
    "packets",
    "prints",
    "state",
    "swallows",
    "taint",
    "topics",
]
