"""KL004 — packet schema: frozen, sized, codec-round-trippable.

Packets are the data plane of the whole reproduction: captures flow
through the data store, traces persist them to disk, and the resource
model sums their sizes.  Three schema invariants keep that sound:

- every :class:`~repro.net.packets.base.Packet` dataclass is declared
  ``@dataclass(frozen=True)`` — captures are shared across modules and a
  mutable layer would let one module corrupt another's history;
- every packet layer reports a size: it defines ``HEADER_BYTES`` in its
  own body, overrides ``_extra_bytes``, or inherits one from a concrete
  packet ancestor (the root default of 0 on ``Packet`` does not count);
- every module defining packet dataclasses is wired into the codec's
  registration sweep (:mod:`repro.net.packets.codec` imports it), so the
  trace subsystem can round-trip the type.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.astutil import (
    attribute_chain,
    base_names,
    class_body_assign,
)
from repro.analysis.engine import Rule, register_rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project, SourceFile

#: Package holding the packet models.
PACKETS_PACKAGE = "repro.net.packets"
#: The codec module whose imports define round-trip registration.
CODEC_MODULE = "repro.net.packets.codec"
#: The root class; itself exempt from the concrete-layer checks.
ROOT_CLASS = "Packet"


@register_rule
class PacketSchemaRule(Rule):
    """KL004: packet dataclasses are frozen, sized, and codec-registered."""

    ID = "KL004"
    TITLE = "Packet dataclasses: frozen, sized, registered with the codec"

    def check(self, project: Project) -> Iterable[Finding]:
        classes = _collect_packet_classes(project)
        if not classes:
            return
        codec_imports = project.imports_of(CODEC_MODULE)
        for name, (source, node) in sorted(classes.items()):
            if name == ROOT_CLASS:
                continue
            yield from self._check_class(
                project, classes, source, node, codec_imports
            )

    def _check_class(
        self,
        project: Project,
        classes: Dict[str, Tuple[SourceFile, ast.ClassDef]],
        source: SourceFile,
        node: ast.ClassDef,
        codec_imports: Set[str],
    ) -> Iterable[Finding]:
        frozen = _dataclass_frozen(node)
        if frozen is None:
            yield self.finding(
                Severity.ERROR,
                source.relpath,
                node.lineno,
                f"packet class {node.name} is not declared as a dataclass;"
                " the codec introspects dataclass fields",
                key=f"{node.name}.dataclass",
            )
        elif frozen is False:
            yield self.finding(
                Severity.ERROR,
                source.relpath,
                node.lineno,
                f"packet dataclass {node.name} is not frozen; captures are"
                " shared across modules and must be immutable",
                key=f"{node.name}.frozen",
            )

        if not _reports_size(node, classes):
            yield self.finding(
                Severity.ERROR,
                source.relpath,
                node.lineno,
                f"packet class {node.name} neither defines HEADER_BYTES nor"
                " overrides _extra_bytes (nor inherits either from a"
                " concrete packet); its on-the-wire size is silently 0",
                key=f"{node.name}.size",
            )

        if source.module != CODEC_MODULE and source.module not in codec_imports:
            yield self.finding(
                Severity.ERROR,
                source.relpath,
                node.lineno,
                f"packet class {node.name} lives in {source.module}, which"
                f" {CODEC_MODULE} never imports — encode_packet() would"
                " reject it and traces could not round-trip",
                key=f"{node.name}.codec",
            )


def _collect_packet_classes(
    project: Project,
) -> Dict[str, Tuple[SourceFile, ast.ClassDef]]:
    """All Packet subclasses (transitive) inside the packets package."""
    classes: Dict[str, Tuple[SourceFile, ast.ClassDef, List[str]]] = {}
    for source in project.files:
        if not source.in_package(PACKETS_PACKAGE):
            continue
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                classes[node.name] = (source, node, base_names(node))

    packet_like: Set[str] = {ROOT_CLASS}
    changed = True
    while changed:
        changed = False
        for name, (_, _, bases) in classes.items():
            if name not in packet_like and packet_like.intersection(bases):
                packet_like.add(name)
                changed = True
    return {
        name: (source, node)
        for name, (source, node, _) in classes.items()
        if name in packet_like and name in classes
    }


def _dataclass_frozen(node: ast.ClassDef):
    """None if not a dataclass, else the frozen=... flag value."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        chain = attribute_chain(target)
        if not chain or chain[-1] != "dataclass":
            continue
        if not isinstance(decorator, ast.Call):
            return False  # bare @dataclass: frozen defaults to False
        for keyword in decorator.keywords:
            if keyword.arg == "frozen":
                return (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                )
        return False
    return None


def _defines_size(node: ast.ClassDef) -> bool:
    if class_body_assign(node, "HEADER_BYTES") is not None:
        return True
    return any(
        isinstance(statement, ast.FunctionDef)
        and statement.name == "_extra_bytes"
        for statement in node.body
    )


def _reports_size(
    node: ast.ClassDef,
    classes: Dict[str, Tuple[SourceFile, ast.ClassDef]],
    _depth: int = 0,
) -> bool:
    """Does the class (or a concrete ancestor) report a size?"""
    if _depth > 8:
        return False
    if _defines_size(node):
        return True
    for base in base_names(node):
        if base == ROOT_CLASS:
            continue  # the root's HEADER_BYTES = 0 default is not a size
        entry = classes.get(base)
        if entry is not None and _reports_size(entry[1], classes, _depth + 1):
            return True
    return False
