"""KL001 — determinism: no ambient time or randomness in the substrate.

The discrete-event simulation, the Kalis core, the protocol stacks and
the attack injectors must be reproducible bit-for-bit from a seed
(ROADMAP: reproducible experiments are the credibility baseline for any
IDS evaluation).  Inside those packages, wall-clock reads and the global
``random`` module are therefore banned:

- simulated time comes from :class:`repro.util.clock.Clock`;
- randomness comes from :class:`repro.util.rng.SeededRng`.

``repro.util`` itself is exempt — it is where the sanctioned wrappers
live.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator

from repro.analysis.astutil import attribute_chain
from repro.analysis.engine import FileRule, register_rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project, SourceFile

#: Packages in which ambient time/randomness is banned.
GUARDED_PACKAGES = ("repro.sim", "repro.core", "repro.proto", "repro.attacks")
#: Packages exempt even if nested under a guarded one.
EXEMPT_PACKAGES = ("repro.util",)

_BANNED_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
    }
)
_BANNED_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

_FIX_HINT = (
    "route time through repro.util.clock.Clock and randomness through"
    " repro.util.rng.SeededRng"
)


@register_rule
class DeterminismRule(FileRule):
    """KL001: ban ambient time/randomness in the deterministic substrate."""

    ID = "KL001"
    TITLE = "no ambient time or randomness in sim/core/proto/attacks"

    def check_file(
        self, project: Project, source: SourceFile
    ) -> Iterable[Finding]:
        if self._guarded(source):
            yield from self._check_file(source)

    @staticmethod
    def _guarded(source: SourceFile) -> bool:
        if any(source.in_package(pkg) for pkg in EXEMPT_PACKAGES):
            return False
        return any(source.in_package(pkg) for pkg in GUARDED_PACKAGES)

    def _check_file(self, source: SourceFile) -> Iterator[Finding]:
        # Names bound to the stdlib modules/classes we care about.
        time_modules: Dict[str, str] = {}
        datetime_modules: Dict[str, str] = {}
        datetime_classes: Dict[str, str] = {}
        numpy_modules: Dict[str, str] = {}

        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    if alias.name == "time":
                        time_modules[local] = alias.name
                    elif alias.name == "datetime":
                        datetime_modules[local] = alias.name
                    elif alias.name in ("numpy", "numpy.random"):
                        numpy_modules[local] = alias.name
                    elif alias.name == "random" or alias.name.startswith("random."):
                        yield self._banned_import(source, node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self._banned_import(source, node, "random")
                elif node.module == "time":
                    for alias in node.names:
                        if alias.name in _BANNED_TIME_ATTRS:
                            yield self._banned_import(
                                source, node, f"time.{alias.name}"
                            )
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            datetime_classes[alias.asname or alias.name] = (
                                alias.name
                            )
                elif node.module == "numpy" and node.level == 0:
                    for alias in node.names:
                        if alias.name == "random":
                            numpy_modules[alias.asname or alias.name] = (
                                "numpy.random"
                            )

        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if not chain or len(chain) < 2:
                continue
            head, attr = chain[0], chain[-1]
            if (
                head in time_modules
                and len(chain) == 2
                and attr in _BANNED_TIME_ATTRS
            ):
                yield self._violation(source, node, f"time.{attr}")
            elif head in datetime_classes and (
                len(chain) == 2 and attr in _BANNED_DATETIME_ATTRS
            ):
                yield self._violation(
                    source, node, f"datetime.{datetime_classes[head]}.{attr}"
                )
            elif (
                head in datetime_modules
                and len(chain) == 3
                and chain[1] in ("datetime", "date")
                and attr in _BANNED_DATETIME_ATTRS
            ):
                yield self._violation(
                    source, node, f"datetime.{chain[1]}.{attr}"
                )
            elif head in numpy_modules and (
                (numpy_modules[head] == "numpy" and len(chain) >= 3 and chain[1] == "random")
                or (numpy_modules[head] == "numpy.random" and len(chain) >= 2)
            ):
                yield self._violation(source, node, "numpy.random")

    def _banned_import(
        self, source: SourceFile, node: ast.stmt, what: str
    ) -> Finding:
        return self.finding(
            Severity.ERROR,
            source.relpath,
            node.lineno,
            f"import of ambient '{what}' in a deterministic"
            f" package ({source.module}); {_FIX_HINT}",
            key=f"import.{what}",
            column=node.col_offset,
        )

    def _violation(
        self, source: SourceFile, node: ast.AST, what: str
    ) -> Finding:
        return self.finding(
            Severity.ERROR,
            source.relpath,
            getattr(node, "lineno", 0),
            f"call to {what}() in a deterministic package"
            f" ({source.module}); {_FIX_HINT}",
            key=what,
            column=getattr(node, "col_offset", None),
        )
