"""KL002 — module contract: every Kalis module is registerable and honest.

The Module Manager instantiates modules *by name* from configuration
files (the paper's Java-Reflection seam, :mod:`repro.core.modules.registry`),
so a module class that forgets its ``NAME`` or its ``@register_module``
decorator is silently unreachable — no test fails, it is simply never
instantiable from a config.  This rule makes those contracts static:

- every concrete :class:`KalisModule` subclass defines ``NAME`` as a
  string literal in its own body, and no two modules share a ``NAME``;
- every concrete subclass is decorated with ``@register_module``;
- detection modules declare a non-empty ``DETECTS`` tuple (the taxonomy
  cross-check keys on it);
- a subclass defining ``__init__`` forwards to ``super().__init__`` so
  the ``params`` dict reaches :meth:`KalisModule.param`;
- every config parameter the module consumes via ``self.param("key", …)``
  is documented (as ``\\`\\`key\\`\\``` ) in the class docstring — the
  docstring is the module's operator-facing contract.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.astutil import (
    base_names,
    call_chain,
    class_body_assign,
    const_str,
    decorator_names,
)
from repro.analysis.engine import Rule, register_rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project, SourceFile

#: Module defining the abstract bases (exempt from the contract).
BASE_MODULE = "repro.core.modules.base"
_ROOT_CLASSES = ("KalisModule", "SensingModule", "DetectionModule")


@dataclass
class _ModuleClass:
    source: SourceFile
    node: ast.ClassDef
    detection: bool


@register_rule
class ModuleContractRule(Rule):
    """KL002: NAME/registration/DETECTS/param contracts on module classes."""

    ID = "KL002"
    TITLE = "KalisModule subclasses: NAME, registration, param contract"

    def check(self, project: Project) -> Iterable[Finding]:
        module_classes = _collect_module_classes(project)
        findings: List[Finding] = []
        names_seen: Dict[str, Tuple[str, int, str]] = {}
        for entry in module_classes:
            findings.extend(self._check_class(entry, names_seen))
        return findings

    def _check_class(
        self, entry: _ModuleClass, names_seen: Dict[str, Tuple[str, int, str]]
    ) -> Iterable[Finding]:
        node = entry.node
        relpath = entry.source.relpath
        class_key = node.name

        name_value = class_body_assign(node, "NAME")
        name_literal = const_str(name_value) if name_value is not None else None
        if name_literal is None:
            yield self.finding(
                Severity.ERROR,
                relpath,
                node.lineno,
                f"module class {node.name} does not define NAME as a string"
                " literal in its body; the registry and config files need it",
                key=f"{class_key}.NAME",
            )
        else:
            previous = names_seen.get(name_literal)
            if previous is not None:
                prev_path, prev_line, prev_class = previous
                yield self.finding(
                    Severity.ERROR,
                    relpath,
                    node.lineno,
                    f"NAME {name_literal!r} of {node.name} is already used by"
                    f" {prev_class} ({prev_path}:{prev_line}); registration"
                    " would raise at import time",
                    key=f"duplicate.{name_literal}",
                )
            else:
                names_seen[name_literal] = (relpath, node.lineno, node.name)

        if "register_module" not in decorator_names(node):
            yield self.finding(
                Severity.ERROR,
                relpath,
                node.lineno,
                f"module class {node.name} is not decorated with"
                " @register_module; it can never be instantiated by name",
                key=class_key,
            )

        if entry.detection:
            detects = class_body_assign(node, "DETECTS")
            has_detects = isinstance(detects, (ast.Tuple, ast.List)) and bool(
                detects.elts
            )
            if not has_detects:
                yield self.finding(
                    Severity.ERROR,
                    relpath,
                    node.lineno,
                    f"detection module {node.name} does not declare a"
                    " non-empty DETECTS tuple; the taxonomy cross-check"
                    " cannot attribute it to an attack",
                    key=f"{class_key}.DETECTS",
                )

        init = _find_method(node, "__init__")
        if init is not None and not _calls_super_init(init):
            yield self.finding(
                Severity.ERROR,
                relpath,
                init.lineno,
                f"{node.name}.__init__ never calls super().__init__; config"
                " params would be dropped before self.param() can read them",
                key=f"{class_key}.__init__",
            )

        docstring = ast.get_docstring(node) or ""
        for key, lineno in sorted(_consumed_params(node).items()):
            if f"``{key}``" not in docstring and key not in docstring:
                yield self.finding(
                    Severity.WARNING,
                    relpath,
                    lineno,
                    f"{node.name} consumes config param {key!r} but its class"
                    " docstring does not document it; the docstring is the"
                    " operator-facing parameter contract",
                    key=f"{class_key}.params.{key}",
                )


def _collect_module_classes(project: Project) -> List[_ModuleClass]:
    """All concrete KalisModule subclasses, resolved transitively."""
    classes: Dict[str, Tuple[SourceFile, ast.ClassDef, List[str]]] = {}
    for source in project.files:
        if source.module == BASE_MODULE:
            continue
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                classes[node.name] = (source, node, base_names(node))

    module_like: Set[str] = set(_ROOT_CLASSES)
    detection_like: Set[str] = {"DetectionModule"}
    changed = True
    while changed:
        changed = False
        for name, (_, _, bases) in classes.items():
            if name not in module_like and module_like.intersection(bases):
                module_like.add(name)
                changed = True
            if name not in detection_like and detection_like.intersection(bases):
                detection_like.add(name)
                changed = True

    result = [
        _ModuleClass(source=source, node=node, detection=name in detection_like)
        for name, (source, node, _) in sorted(classes.items())
        if name in module_like
    ]
    return result


def _find_method(node: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for statement in node.body:
        if isinstance(statement, ast.FunctionDef) and statement.name == name:
            return statement
    return None


def _calls_super_init(init: ast.FunctionDef) -> bool:
    for node in ast.walk(init):
        if isinstance(node, ast.Call):
            chain = call_chain(node)
            if chain is not None:
                continue  # super().__init__ is a call on a call, not a chain
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "__init__"
                and isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
            ):
                return True
    return False


def _consumed_params(node: ast.ClassDef) -> Dict[str, int]:
    """``self.param("key", default)`` keys used anywhere in the class."""
    consumed: Dict[str, int] = {}
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        chain = call_chain(child)
        if chain is None or len(chain) != 2 or chain != ["self", "param"]:
            continue
        if not child.args:
            continue
        key = const_str(child.args[0])
        if key is not None and key not in consumed:
            consumed[key] = child.lineno
    return consumed
