"""KL101–KL104 — whole-program knowledge-flow and topic liveness.

These rules are the whole-program counterparts of the per-file KL003 and
KL005 passes: they run on the :mod:`repro.analysis.knowflow` graph, so
sites hidden behind wrappers (``ModuleSupervisor._publish``,
``TrafficStatsModule._publish_rate``) and single-assignment locals are
resolved before liveness is judged.

- **KL101** — knowgget read-before-any-write: a ``Requirement`` label or
  a defaultless ``kb.get``/``get_knowgget`` read that no code ever puts.
  The module can never activate (paper §IV-B4): "no alerts" and "module
  never activated" look identical at runtime, so this must be static.
  Config-driven ``put_static`` injection is an operator override, not a
  liveness guarantee, so a dynamic ``put_static`` does *not* silence the
  rule — only a fully-dynamic ``put`` does.
- **KL102** — dead knowledge: a write pattern no read or Requirement
  ever overlaps, and whose label is not referenced as a string constant
  elsewhere (a knowgget nobody will ever look at).
- **KL103** — orphan bus topic: a publication with no overlapping
  subscription (WARNING — may be an intentional operational surface) or
  a subscription with no overlapping publication (ERROR — the handler
  can never fire).  Unlike KL005, wrapper-derived publish sites count,
  so ``self._publish(TOPIC_MODULE_RESTORE, …)`` is not a blind spot.
- **KL104** — module contract drift: a detection module whose code
  strictly reads (``get``/``get_knowgget`` without ``default=``) a
  knowgget its ``REQUIREMENTS`` never declare and the module itself
  never writes.  Tolerant list-reads (``with_label``/``sublabels``) and
  defaulted reads are the sanctioned way to consume optional knowledge.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.analysis.astutil import patterns_overlap
from repro.analysis.callgraph import CallGraph
from repro.analysis.engine import Rule, register_rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.knowflow import FlowSite, KnowFlow, derive_knowflow
from repro.analysis.project import Project

#: Topic prefixes whose families are deliberately open-ended: knowledge
#: change notifications fan out per-knowgget key, and observers attach
#: at runtime (``subscribe_prefix``) — individual keys are not required
#: to have a static subscriber each.
DYNAMIC_TOPIC_ALLOWLIST = ("knowledge.",)

#: kb read methods that are strict: absence of the label at runtime is a
#: behavioural difference (``None``/miss), unlike list-reads which just
#: return empty.
_STRICT_READS = frozenset({"get", "get_knowgget"})


def _shared_flow(project: Project) -> KnowFlow:
    """Build (and memoize on the project) the whole-program flow."""
    cached = getattr(project, "_knowflow_cache", None)
    if cached is not None:
        return cached
    graph = getattr(project, "_callgraph_cache", None)
    if graph is None:
        graph = CallGraph.build(project)
        project._callgraph_cache = graph  # type: ignore[attr-defined]
    flow = derive_knowflow(project, graph)
    project._knowflow_cache = flow  # type: ignore[attr-defined]
    return flow


@register_rule
class KnowggetLivenessRule(Rule):
    """KL101: every required/strictly-read knowgget has a writer."""

    ID = "KL101"
    TITLE = "whole-program: required knowggets must have a writer"

    def check(self, project: Project) -> Iterable[Finding]:
        flow = _shared_flow(project)
        # A fully-dynamic ``put`` could write any label; stay quiet
        # rather than guess wrong.  (``put_static`` injection from
        # config deliberately does not count — see module docstring.)
        if any(
            site.pattern[0] == "dynamic" and site.via != "put_static"
            for site in flow.writes
        ):
            return
        reported: Set[str] = set()
        for site in flow.reads:
            kind, label = site.pattern
            if kind != "exact" or label is None:
                continue
            strict = site.via == "requirement" or (
                site.via in _STRICT_READS and not site.has_default
            )
            if not strict or flow.written(label):
                continue
            if label in reported:
                continue
            reported.add(label)
            what = (
                f"Requirement of {site.owner}"
                if site.via == "requirement"
                else f"strict {site.via} read"
            )
            yield self.finding(
                Severity.ERROR,
                site.path,
                site.line,
                f"knowgget label {label!r} is a {what} but no code in the"
                " tree ever writes it (wrappers included) — the consumer"
                " can never be satisfied",
                key=label,
            )


@register_rule
class DeadKnowledgeRule(Rule):
    """KL102: every written knowgget has a reader (or a reference)."""

    ID = "KL102"
    TITLE = "whole-program: written knowggets must be read somewhere"

    def check(self, project: Project) -> Iterable[Finding]:
        flow = _shared_flow(project)
        reported: Set[str] = set()
        for site in flow.writes:
            kind, value = site.pattern
            if kind == "dynamic" or value is None:
                continue
            if flow.read_overlaps(site.pattern):
                continue
            rendered = site.render()
            if rendered in reported:
                continue
            if kind == "exact" and flow.referenced_elsewhere(
                value, {s.path for s in flow.writes if s.render() == rendered}
            ):
                continue
            reported.add(rendered)
            origin = (
                f" (via {site.derived_from})" if site.derived_from else ""
            )
            yield self.finding(
                Severity.WARNING,
                site.path,
                site.line,
                f"knowgget {rendered!r} is written here{origin} but no"
                " Requirement or Knowledge Base read anywhere in the tree"
                " ever consumes it — dead knowledge",
                key=rendered,
            )


@register_rule
class OrphanTopicRule(Rule):
    """KL103: publish/subscribe topic sides must pair up."""

    ID = "KL103"
    TITLE = "whole-program: no orphan bus topics"

    def check(self, project: Project) -> Iterable[Finding]:
        flow = _shared_flow(project)
        has_dynamic_publish = flow.has_dynamic_publish()
        has_dynamic_subscribe = any(
            site.pattern[0] == "dynamic" for site in flow.subscribes
        )
        reported: Set[str] = set()
        for site in flow.publishes:
            kind, value = site.pattern
            if kind == "dynamic" or value is None:
                continue
            if _allowlisted(value):
                continue
            if has_dynamic_subscribe:
                continue
            if any(
                patterns_overlap(site.pattern, other.pattern)
                for other in flow.subscribes
            ):
                continue
            rendered = site.render()
            if rendered in reported:
                continue
            reported.add(rendered)
            origin = (
                f" (via {site.derived_from})" if site.derived_from else ""
            )
            yield self.finding(
                Severity.WARNING,
                site.path,
                site.line,
                f"topic {rendered!r} is published here{origin} but nothing"
                " in the tree subscribes to it",
                key=rendered,
            )
        for site in flow.subscribes:
            kind, value = site.pattern
            if kind == "dynamic" or value is None:
                continue
            if _allowlisted(value):
                continue
            if has_dynamic_publish:
                continue
            if any(
                patterns_overlap(site.pattern, other.pattern)
                for other in flow.publishes
            ):
                continue
            rendered = site.render()
            key = f"sub:{rendered}"
            if key in reported:
                continue
            reported.add(key)
            yield self.finding(
                Severity.ERROR,
                site.path,
                site.line,
                f"topic {rendered!r} is subscribed here but never published"
                " anywhere in the tree (wrappers included) — the handler"
                " can never fire",
                key=rendered,
            )


def _allowlisted(value: str) -> bool:
    return any(
        value == prefix or value.startswith(prefix)
        for prefix in DYNAMIC_TOPIC_ALLOWLIST
    )


@register_rule
class ContractDriftRule(Rule):
    """KL104: module reads must match its declared requirements."""

    ID = "KL104"
    TITLE = "whole-program: module reads match declared Requirements"

    def check(self, project: Project) -> Iterable[Finding]:
        flow = _shared_flow(project)
        # Only classes that declare Requirements have a contract to
        # drift from; others are free-form consumers.
        contracts = flow.requirement_labels
        if not contracts:
            return
        writes_by_owner: Dict[str, List[FlowSite]] = {}
        for site in flow.writes:
            if site.owner:
                writes_by_owner.setdefault(site.owner, []).append(site)
        for site in flow.reads:
            owner = site.owner
            if owner is None or owner not in contracts:
                continue
            if site.via not in _STRICT_READS or site.has_default:
                continue
            kind, label = site.pattern
            if kind != "exact" or label is None:
                continue
            required = contracts[owner]
            if label in required:
                continue
            if any(
                label.startswith(req + ".") or req.startswith(label + ".")
                for req in required
            ):
                continue
            if any(
                patterns_overlap(site.pattern, write.pattern)
                for write in writes_by_owner.get(owner, ())
            ):
                continue  # the module's own state, not an input contract
            yield self.finding(
                Severity.WARNING,
                site.path,
                site.line,
                f"{owner} strictly reads knowgget {label!r} but its"
                " REQUIREMENTS never declare it and the module never writes"
                " it — declare the Requirement, or read tolerantly"
                " (default= / with_label)",
                key=f"{owner}:{label}",
            )
