"""KL301–KL306 — process-boundary and wire-schema rules.

These rules run on the :mod:`repro.analysis.procgraph` whole-program
boundary inventory.  They are the static gate for the fleet/SIEM/ckpt
layer (ROADMAP item 1, DESIGN.md §§9–10): three hand-maintained wire
contracts and a fork-based fleet whose exactly-once merge guarantees
previously had only runtime tests.

- **KL301** — writer/reader schema drift: within a versioned wire
  schema group, a reader consuming a key no writer emits is an ERROR
  (the contract already drifted); every writer group also carries a
  WARNING pinning the digest of its emitted field set, so changing the
  fields without bumping the version forces a fresh triage — the
  baseline entry records the accepted digest.
- **KL302** — non-address-free payloads: ``id()``, default ``repr``
  (call or ``!r``), lambdas or bare function references inside a
  payload that crosses a process or file boundary.  These differ
  between processes and runs, so they break byte-determinism and
  content-keyed dedup (the PR-7 deadletter fix, generalized).
- **KL303** — fork-unsafety: a lock, open file handle, or live
  telemetry object created in the spawning function and passed into a
  ``Process(target=…, args=…)`` tuple.  Under the fork start method
  these are silently inherited in a broken state; under spawn they
  fail to pickle.
- **KL304** — queue discipline: a cross-process queue ``put`` without
  a durable ``flush`` earlier in the same function (the
  flush-before-put pattern ``fleet/worker.py`` establishes), or a
  ``get`` in a function that never reaches schema validation.
- **KL305** — exit-path hygiene: an ``os._exit`` not preceded by a
  durable call (flush/save/checkpoint/snapshot) in the same function,
  or a signal handler that neither persists state nor hands shutdown
  to the run loop via ``request_stop``/``stop``.
- **KL306** — dedup-key completeness: a canonical sort key reading a
  record field the paired dedup/content key ignores.  Two records
  equal under the content key but distinct under the sort key make
  "exactly-once" depend on arrival order.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.engine import Rule, register_rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project
from repro.analysis.procgraph import (
    ProcGraph,
    STOP_REQUEST_NAMES,
    derive_procgraph,
    _keyword_value,
)
from repro.analysis.stategraph import (
    NON_PICKLABLE_CONSTRUCTORS,
    _chain_of,
    _single_assignment_locals,
)

#: Constructor names KL303 treats as live-telemetry subscribers.
TELEMETRY_CONSTRUCTORS = frozenset({"Telemetry", "FlightRecorder"})

#: Serializer callee names whose positional args are payload expressions.
_DUMP_CALLEES = frozenset({"dumps", "dump"})


def shared_procgraph(project: Project) -> ProcGraph:
    """Build (and memoize on the project) the process-boundary graph."""
    cached = getattr(project, "_procgraph_cache", None)
    if cached is not None:
        return cached
    graph = getattr(project, "_callgraph_cache", None)
    if graph is None:
        graph = CallGraph.build(project)
        project._callgraph_cache = graph  # type: ignore[attr-defined]
    proc = derive_procgraph(project, graph)
    project._procgraph_cache = proc  # type: ignore[attr-defined]
    return proc


@register_rule
class SchemaDriftRule(Rule):
    """KL301: wire readers stay within the written field set."""

    ID = "KL301"
    TITLE = "boundary: writer/reader wire-schema drift"

    def check(self, project: Project) -> Iterable[Finding]:
        proc = shared_procgraph(project)
        for module in sorted(proc.schema_groups):
            group = proc.schema_groups[module]
            if not group.writers:
                continue
            emitted = set(group.emitted_keys())
            for reader in group.readers:
                for key in reader.keys:
                    if key in emitted:
                        continue
                    yield self.finding(
                        Severity.ERROR,
                        reader.path,
                        reader.line,
                        f"reader {reader.qualname!r} consumes key {key!r}"
                        f" that no writer in {module} emits (emitted field"
                        f" set: {', '.join(group.emitted_keys())}) — the"
                        " wire contract has drifted",
                        key=f"{reader.qualname}.{key}",
                    )
            version = "?" if group.version is None else str(group.version)
            line = group.version_line or group.writers[0].line
            yield self.finding(
                Severity.WARNING,
                group.path,
                line,
                f"wire schema {module} v{version} emits field set"
                f" [{', '.join(group.emitted_keys())}] with digest"
                f" {group.digest()} — changing this set requires a version"
                " bump; the baseline entry pins the accepted digest",
                key=f"{module.rsplit('.', 1)[-1]}@v{version}:{group.digest()}",
            )


@register_rule
class AddressFreePayloadRule(Rule):
    """KL302: nothing address-dependent crosses a process/file boundary."""

    ID = "KL302"
    TITLE = "boundary: non-address-free payload crosses a boundary"

    def check(self, project: Project) -> Iterable[Finding]:
        proc = shared_procgraph(project)
        # Payload roots overlap (a dict passed to dumps() is walked as
        # both), so findings dedupe on their (path, line, key) identity.
        seen: Set[Tuple[str, int, str]] = set()
        for module, qualname in self._contexts(proc):
            info = proc.graph.functions.get((module, qualname))
            if info is None:
                continue
            path = info.source.relpath
            emitted: List[Finding] = []
            for child in ast.walk(info.node):
                if (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Name)
                    and child.func.id == "id"
                ):
                    emitted.append(
                        self.finding(
                            Severity.ERROR,
                            path,
                            child.lineno,
                            f"id() inside boundary-crossing function"
                            f" {qualname!r} — object addresses differ"
                            " between processes and runs, breaking"
                            " byte-determinism and content-keyed dedup",
                            key=f"{qualname}.id",
                        )
                    )
            for payload in self._payload_roots(info.node):
                emitted.extend(
                    self._check_payload(proc, module, qualname, path, payload)
                )
            for finding in emitted:
                identity = (finding.path, finding.line, finding.key)
                if identity in seen:
                    continue
                seen.add(identity)
                yield finding

    def _contexts(self, proc: ProcGraph) -> List[Tuple[str, str]]:
        """(module, qualname) of every function that emits across a boundary."""
        contexts: Set[Tuple[str, str]] = set()
        for site in proc.serialization_sites:
            if site.direction == "write" and site.function is not None:
                contexts.add((site.module, site.function))
        for site in proc.queue_sites:
            if site.op == "put" and site.function is not None:
                contexts.add((site.module, site.function))
        contexts.update(proc.writer_functions())
        return sorted(contexts)

    def _payload_roots(self, node: ast.AST) -> List[ast.expr]:
        """Dict displays plus serializer-call positional args."""
        roots: List[ast.expr] = []
        for child in ast.walk(node):
            if isinstance(child, ast.Dict):
                roots.extend(value for value in child.values if value is not None)
            elif (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in _DUMP_CALLEES
            ):
                roots.extend(child.args)
        return roots

    def _check_payload(
        self,
        proc: ProcGraph,
        module: str,
        qualname: str,
        path: str,
        payload: ast.expr,
    ) -> Iterable[Finding]:
        if isinstance(payload, ast.Lambda):
            yield self.finding(
                Severity.ERROR,
                path,
                payload.lineno,
                f"lambda inside a payload emitted by {qualname!r} — a"
                " lambda serializes by address (or not at all); name the"
                " function and record it via repro.util.naming"
                ".callable_name",
                key=f"{qualname}.lambda",
            )
            return
        if isinstance(payload, ast.Name):
            target = proc.graph.functions.get((module, payload.id))
            if target is not None:
                yield self.finding(
                    Severity.ERROR,
                    path,
                    payload.lineno,
                    f"bare function reference {payload.id!r} inside a"
                    f" payload emitted by {qualname!r} — record"
                    " callable_name(...) instead so the wire form is"
                    " address-free",
                    key=f"{qualname}.{payload.id}",
                )
            return
        for child in ast.walk(payload):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Name)
                and child.func.id == "repr"
            ):
                yield self.finding(
                    Severity.WARNING,
                    path,
                    child.lineno,
                    f"repr() inside a payload emitted by {qualname!r} —"
                    " default object repr embeds the memory address; use a"
                    " stable rendering",
                    key=f"{qualname}.repr",
                )
            elif isinstance(child, ast.FormattedValue) and child.conversion == ord(
                "r"
            ):
                yield self.finding(
                    Severity.WARNING,
                    path,
                    child.lineno,
                    f"!r conversion inside a payload emitted by"
                    f" {qualname!r} — default object repr embeds the"
                    " memory address; use a stable rendering",
                    key=f"{qualname}.conv_r",
                )


@register_rule
class ForkSafetyRule(Rule):
    """KL303: nothing fork-unsafe rides into a worker entrypoint."""

    ID = "KL303"
    TITLE = "boundary: fork-unsafe state passed to a process entrypoint"

    def check(self, project: Project) -> Iterable[Finding]:
        proc = shared_procgraph(project)
        for site in proc.fork_sites:
            if site.kind != "spawn" or site.node is None:
                continue
            if site.function is None:
                continue
            caller = proc.graph.functions.get((site.module, site.function))
            if caller is None:
                continue
            locals_map = _single_assignment_locals(caller.node)
            arguments = _keyword_value(site.node, "args")
            if not isinstance(arguments, (ast.Tuple, ast.List)):
                continue
            for element in arguments.elts:
                if not isinstance(element, ast.Name):
                    continue
                value = locals_map.get(element.id)
                if not isinstance(value, ast.Call):
                    continue
                chain = _chain_of(value.func)
                constructor = chain[-1] if chain else ""
                if (
                    constructor in NON_PICKLABLE_CONSTRUCTORS
                    or constructor == "open"
                ):
                    yield self.finding(
                        Severity.ERROR,
                        site.path,
                        site.line,
                        f"{element.id!r} (a {constructor}() from line"
                        f" {value.lineno}) is passed into the"
                        f" {site.target or '?'} process args — locks and"
                        " open handles are inherited broken under fork and"
                        " unpicklable under spawn",
                        key=f"{site.function}.{element.id}",
                    )
                elif constructor in TELEMETRY_CONSTRUCTORS:
                    yield self.finding(
                        Severity.WARNING,
                        site.path,
                        site.line,
                        f"live telemetry object {element.id!r} is passed"
                        f" into the {site.target or '?'} process args —"
                        " subscribers forked mid-flight double-report;"
                        " construct telemetry inside the child",
                        key=f"{site.function}.{element.id}",
                    )


@register_rule
class QueueDisciplineRule(Rule):
    """KL304: flush-before-put on the way in, validate on the way out."""

    ID = "KL304"
    TITLE = "boundary: queue crossing without durability/validation"

    def check(self, project: Project) -> Iterable[Finding]:
        proc = shared_procgraph(project)
        flush_lines: Dict[Tuple[str, Optional[str]], List[int]] = {}
        for flush in proc.flush_sites:
            flush_lines.setdefault((flush.module, flush.function), []).append(
                flush.line
            )
        for site in proc.queue_sites:
            owner = site.function or "<module>"
            if site.op == "put":
                earlier = flush_lines.get((site.module, site.function), [])
                if not any(line < site.line for line in earlier):
                    yield self.finding(
                        Severity.ERROR,
                        site.path,
                        site.line,
                        f"queue {site.method}() in {owner!r} without a"
                        " durable flush earlier in the same function — the"
                        " flush-before-put pattern keeps the stream file at"
                        " least as complete as what the aggregator saw, so"
                        " a kill between the two costs nothing",
                        key=f"{owner}.put",
                    )
            else:
                bare = owner.rsplit(".", 1)[-1]
                if bare not in proc.validating_names:
                    yield self.finding(
                        Severity.ERROR,
                        site.path,
                        site.line,
                        f"queue {site.method}() in {owner!r}, which never"
                        " reaches schema validation — records crossing the"
                        " process boundary must be version-checked"
                        " (validate_batch) before use",
                        key=f"{owner}.get",
                    )


@register_rule
class ExitHygieneRule(Rule):
    """KL305: no-cleanup exits only after state is durable."""

    ID = "KL305"
    TITLE = "boundary: exit path skips durable flush"

    def check(self, project: Project) -> Iterable[Finding]:
        proc = shared_procgraph(project)
        calls = self._calls_by_function(proc)
        for site in proc.exit_sites:
            owner = site.function or "<module>"
            observed = calls.get((site.module, site.function or ""), [])
            durable = any(
                line < site.line and name in proc.durable_names
                for line, name in observed
            )
            if not durable:
                yield self.finding(
                    Severity.ERROR,
                    site.path,
                    site.line,
                    f"os._exit in {owner!r} with no durable call"
                    " (flush/save/checkpoint/snapshot) earlier in the same"
                    " function — state reachable only from this process"
                    " dies with it",
                    key=f"{owner}._exit",
                )
        allowed = proc.durable_names | STOP_REQUEST_NAMES
        for site in proc.signal_sites:
            if site.handler_qualname is None:
                continue  # handler not statically resolvable
            observed = calls.get(
                (site.handler_module or "", site.handler_qualname), []
            )
            if not any(name in allowed for _, name in observed):
                yield self.finding(
                    Severity.ERROR,
                    site.path,
                    site.line,
                    f"signal handler {site.handler_qualname!r} neither"
                    " persists state nor requests a clean stop — a signal"
                    " landing mid-run would drop the manifest/snapshot"
                    " flush",
                    key=f"{site.handler_qualname}.handler",
                )

    def _calls_by_function(
        self, proc: ProcGraph
    ) -> Dict[Tuple[str, str], List[Tuple[int, str]]]:
        calls: Dict[Tuple[str, str], List[Tuple[int, str]]] = {}
        for site in proc.graph.call_sites:
            if site.caller is None or not proc.scanned(site.source):
                continue
            calls.setdefault(
                (site.caller.module, site.caller.qualname), []
            ).append((site.node.lineno, site.chain[-1]))
        return calls


@register_rule
class DedupCompletenessRule(Rule):
    """KL306: the content key covers every canonical sort field."""

    ID = "KL306"
    TITLE = "boundary: sort-key field missing from dedup/content key"

    def check(self, project: Project) -> Iterable[Finding]:
        proc = shared_procgraph(project)
        by_module: Dict[str, List] = {}
        for spec in proc.key_specs:
            by_module.setdefault(spec.module, []).append(spec)
        for module in sorted(by_module):
            specs = by_module[module]
            dedup_fields: Set[str] = set()
            for spec in specs:
                if spec.kind == "dedup":
                    dedup_fields.update(spec.fields)
            if not dedup_fields:
                continue
            for spec in specs:
                if spec.kind != "sort":
                    continue
                for name in spec.fields:
                    if name in dedup_fields:
                        continue
                    yield self.finding(
                        Severity.WARNING,
                        spec.path,
                        spec.line,
                        f"sort key {spec.qualname!r} reads field {name!r}"
                        f" that no dedup/content key in {module} covers —"
                        " records equal under the content key but distinct"
                        f" in {name!r} make exactly-once merge order"
                        " arrival-dependent",
                        key=f"{spec.qualname}.{name}",
                    )
