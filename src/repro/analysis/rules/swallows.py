"""KL007 — swallowed exceptions: no silent failure in the substrate.

A reproduction whose components fail silently cannot be trusted: a
module crash, a dropped capture or a failed transfer must surface
somewhere — the supervisor's failure record, the bus dead-letter topic,
a counter — never vanish into ``except: pass``.  Two shapes are banned
throughout ``repro``:

- a **bare** ``except:`` clause, which also traps ``KeyboardInterrupt``
  and ``SystemExit`` (always wrong here);
- an ``except Exception:`` / ``except BaseException:`` handler whose
  body does nothing (only ``pass``, ``...``, ``continue`` or a bare
  ``return``) — a catch-all that records nothing.

Narrow handlers (``except ValueError: pass``) stay legal: ignoring one
anticipated error is a decision, swallowing *everything* is a bug
factory.  Justified catch-alls go in the baseline with a reason.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.analysis.engine import FileRule, register_rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project, SourceFile

#: Exception names treated as catch-alls when the handler body is inert.
CATCH_ALL_NAMES = frozenset({"Exception", "BaseException"})


def _names_of(handler_type: Optional[ast.expr]) -> Iterator[str]:
    """The dotted-name leaves of an except clause's type expression."""
    if handler_type is None:
        return
    nodes = (
        handler_type.elts
        if isinstance(handler_type, ast.Tuple)
        else [handler_type]
    )
    for node in nodes:
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr


def _is_inert(body: Iterable[ast.stmt]) -> bool:
    """True if the handler body observably does nothing."""
    for statement in body:
        if isinstance(statement, (ast.Pass, ast.Continue)):
            continue
        if isinstance(statement, ast.Return) and statement.value is None:
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue  # docstring or `...`
        return False
    return True


@register_rule
class SwallowedExceptionRule(FileRule):
    """KL007: no bare ``except:`` and no inert catch-all handlers."""

    ID = "KL007"
    TITLE = "no swallowed exceptions (bare or inert catch-all handlers)"

    def check_file(
        self, project: Project, source: SourceFile
    ) -> Iterable[Finding]:
        yield from self._check_file(source)

    def _check_file(self, source: SourceFile) -> Iterator[Finding]:
        scopes: list = []
        yield from self._walk(source, source.tree, scopes)

    def _walk(
        self, source: SourceFile, node: ast.AST, scopes: list
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                scopes.append(child.name)
                yield from self._walk(source, child, scopes)
                scopes.pop()
                continue
            if isinstance(child, ast.ExceptHandler):
                yield from self._check_handler(source, child, scopes)
            yield from self._walk(source, child, scopes)

    def _check_handler(
        self, source: SourceFile, handler: ast.ExceptHandler, scopes: list
    ) -> Iterator[Finding]:
        scope = ".".join(scopes) if scopes else "<module>"
        if handler.type is None:
            yield self.finding(
                Severity.ERROR,
                source.relpath,
                handler.lineno,
                f"bare 'except:' in {scope} traps SystemExit and"
                " KeyboardInterrupt; name the exceptions (and record the"
                " failure somewhere observable)",
                key=f"{scope}.bare",
                column=handler.col_offset,
            )
            return
        caught = set(_names_of(handler.type))
        catch_alls = caught & CATCH_ALL_NAMES
        if catch_alls and _is_inert(handler.body):
            name = sorted(catch_alls)[0]
            yield self.finding(
                Severity.ERROR,
                source.relpath,
                handler.lineno,
                f"'except {name}:' in {scope} silently swallows every"
                " failure; record it (supervisor, dead-letter, counter)"
                " or catch the specific exception",
                key=f"{scope}.{name}",
                column=handler.col_offset,
            )
