"""KL005 — event-bus topics: every subscription has a publisher.

Components communicate only through the
:class:`~repro.eventbus.bus.EventBus`, and topics are plain strings — a
typo'd subscription compiles, runs, and simply never fires.  This rule
cross-checks the two sides statically:

- **publications** — ``*.bus.publish(topic, …)`` call sites;
- **subscriptions** — ``*bus.subscribe(topic, …)`` and
  ``*bus.subscribe_prefix(prefix, …)`` call sites.

Topic expressions may be literals, names resolving to module-level
constants (``ALERT_TOPIC``, including dotted references to constants in
other modules such as ``alerts.ALERT_TOPIC``), concatenations with a
constant head
(``KNOWLEDGE_TOPIC_PREFIX + key`` → prefix ``knowledge.``) or f-strings
with a constant head.  A subscription whose pattern can never overlap
any publication pattern is flagged; fully-dynamic expressions on either
side are left alone (statically unknowable).

Only receivers spelled ``…bus`` / ``…_bus`` are considered, so
same-named methods on unrelated classes (e.g.
``KnowledgeBase.subscribe``, which takes a *label*, not a topic) are not
misread.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.analysis.astutil import (
    StrPattern,
    call_chain,
    patterns_overlap,
    string_pattern,
)
from repro.analysis.engine import Rule, register_rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project, SourceFile

_BUS_RECEIVERS = ("bus", "_bus")


@dataclass(frozen=True)
class TopicSite:
    pattern: StrPattern
    path: str
    line: int
    module: str
    via: str  # "publish", "subscribe", "subscribe_prefix"


def collect_topic_sites(project: Project) -> List[TopicSite]:
    """Every statically-visible bus publish/subscribe call site."""
    sites: List[TopicSite] = []
    for source in project.files:
        if source.in_package("repro.analysis"):
            continue
        sites.extend(_scan_file(project, source))
    return sites


def _scan_file(project: Project, source: SourceFile) -> Iterable[TopicSite]:
    def resolve(name: str) -> Optional[str]:
        return project.resolve_str(source.module, name)

    def resolve_chain(chain: List[str]) -> Optional[str]:
        return project.resolve_str_chain(source.module, chain)

    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = call_chain(node)
        if chain is None or len(chain) < 2:
            continue
        method = chain[-1]
        if method not in ("publish", "subscribe", "subscribe_prefix"):
            continue
        receiver = chain[-2]
        if not any(
            receiver == r or receiver.endswith(r) for r in _BUS_RECEIVERS
        ):
            continue
        if not node.args:
            continue
        kind, value = string_pattern(node.args[0], resolve, resolve_chain)
        if method == "subscribe_prefix" and kind == "exact":
            # A prefix subscription matches a topic family by design.
            kind = "prefix"
        yield TopicSite(
            pattern=(kind, value),
            path=source.relpath,
            line=node.lineno,
            module=source.module,
            via=method,
        )


@register_rule
class TopicFlowRule(Rule):
    """KL005: every bus subscription must have a matching publication."""

    ID = "KL005"
    TITLE = "bus topics: no subscription without a matching publication"

    def check(self, project: Project) -> Iterable[Finding]:
        sites = collect_topic_sites(project)
        publications = [s for s in sites if s.via == "publish"]
        has_dynamic_publish = any(
            s.pattern[0] == "dynamic" for s in publications
        )
        for site in sites:
            if site.via == "publish":
                continue
            kind, value = site.pattern
            if kind == "dynamic" or value is None:
                continue
            if any(
                patterns_overlap(site.pattern, publication.pattern)
                for publication in publications
            ):
                continue
            if has_dynamic_publish:
                # An unanalyzable publish() somewhere could feed this
                # subscription; stay quiet rather than guess wrong.
                continue
            rendered = value if kind == "exact" else f"{value}*"
            yield self.finding(
                Severity.ERROR,
                site.path,
                site.line,
                f"topic {rendered!r} is subscribed here but never published"
                " anywhere in the tree — the handler can never fire",
                key=rendered,
            )
