"""KL003 — knowledge-label flow: every consumed knowgget is producible.

Detection modules activate *only* when their declarative
:class:`~repro.core.modules.base.Requirement` labels appear in the
Knowledge Base (paper §IV-B4).  A requirement label that no sensing or
collective producer ever writes means the module is dormant forever —
the exact failure the reactivity experiment (§VI-C) would silently mask,
because "no alerts" and "module never activated" look identical.

The rule derives, statically:

- **producers** — ``kb.put(...)`` / ``kb.put_static(...)`` call sites
  with a constant label, or an f-string label with a constant head
  (``f"Multihop.{medium}"`` produces the prefix ``Multihop.``);
- **consumers** — ``Requirement(label=...)`` declarations plus
  ``kb.get`` / ``kb.get_knowgget`` / ``kb.with_label`` / ``kb.subscribe``
  / ``kb.sublabels`` reads with constant labels (names resolving to
  module-level string or tuple-of-strings constants count too).

Findings:

- ERROR: a label is consumed but no producer pattern covers it;
- WARNING: a label is produced but never consumed *and* never referenced
  as a string constant anywhere else in the tree (a knowgget nobody will
  ever look at).

The derived maps are exported via :func:`derive_label_flow` so tests can
machine-check them against :mod:`repro.taxonomy.modules_map` (Figure 3).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.astutil import call_arg, call_chain, string_pattern
from repro.analysis.engine import Rule, register_rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project, SourceFile

#: Receiver spellings that denote a KnowledgeBase.
_KB_RECEIVERS = frozenset({"kb", "_kb"})
_PRODUCER_METHODS = frozenset({"put", "put_static"})
_CONSUMER_METHODS = frozenset(
    {"get", "get_knowgget", "with_label", "subscribe", "sublabels"}
)
#: Packages never scanned (the analyzer itself; taxonomy helpers build
#: knowledge bases reflectively from the very maps under test).
_EXCLUDED_PACKAGES = ("repro.analysis", "repro.taxonomy")


@dataclass(frozen=True)
class LabelSite:
    """One producer or consumer occurrence of a knowgget label."""

    path: str
    line: int
    module: str
    via: str  # "put", "put_static", "requirement", "get", ...
    owner: Optional[str] = None  # enclosing class, when inside one


@dataclass
class LabelFlow:
    """The statically-derived knowgget label flow over a project."""

    #: exact label -> producer sites.
    producers_exact: Dict[str, List[LabelSite]] = field(default_factory=dict)
    #: label prefix (f-string head) -> producer sites.
    producers_prefix: Dict[str, List[LabelSite]] = field(default_factory=dict)
    #: exact label -> consumer sites (requirements and kb reads).
    consumers: Dict[str, List[LabelSite]] = field(default_factory=dict)
    #: class name -> its Requirement labels.
    requirement_labels: Dict[str, Set[str]] = field(default_factory=dict)
    #: every string constant in the tree, for orphan softening.
    string_constants: Dict[str, Set[str]] = field(default_factory=dict)

    def producible(self, label: str) -> bool:
        """Is the label covered by some producer (exact or prefix)?"""
        if label in self.producers_exact:
            return True
        return any(
            label.startswith(prefix) and label != prefix
            for prefix in self.producers_prefix
        )

    def consumed(self, label: str) -> bool:
        return label in self.consumers

    def referenced_elsewhere(self, label: str, producer_paths: Set[str]) -> bool:
        """Does the label occur as a string constant outside its producers?"""
        return bool(self.string_constants.get(label, set()) - producer_paths)


def derive_label_flow(project: Project) -> LabelFlow:
    """Build the producer/consumer label maps for a parsed project."""
    flow = LabelFlow()
    for source in project.files:
        if any(source.in_package(pkg) for pkg in _EXCLUDED_PACKAGES):
            continue
        _scan_file(project, source, flow)
    return flow


def _scan_file(project: Project, source: SourceFile, flow: LabelFlow) -> None:
    def resolve(name: str) -> Optional[str]:
        return project.resolve_str(source.module, name)

    def resolve_chain(chain: List[str]) -> Optional[str]:
        return project.resolve_str_chain(source.module, chain)

    for owner, node in _walk_with_class(source.tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            flow.string_constants.setdefault(node.value, set()).add(
                source.relpath
            )
        if not isinstance(node, ast.Call):
            continue
        chain = call_chain(node)
        if chain is None:
            continue
        method = chain[-1]
        if method == "Requirement" or (
            len(chain) >= 2 and chain[-2:] == ["base", "Requirement"]
        ):
            label_node = call_arg(node, 0, "label")
            if label_node is None:
                continue
            kind, value = string_pattern(label_node, resolve, resolve_chain)
            if kind == "exact" and value is not None:
                _record(
                    flow.consumers,
                    value,
                    LabelSite(
                        source.relpath, node.lineno, source.module,
                        "requirement", owner,
                    ),
                )
                if owner is not None:
                    flow.requirement_labels.setdefault(owner, set()).add(value)
            continue
        if len(chain) < 2 or chain[-2] not in _KB_RECEIVERS:
            continue
        site_via = method
        label_node = call_arg(node, 0, "label")
        if label_node is None:
            continue
        if method in _PRODUCER_METHODS:
            kind, value = string_pattern(label_node, resolve, resolve_chain)
            site = LabelSite(
                source.relpath, node.lineno, source.module, site_via, owner
            )
            if kind == "exact" and value is not None:
                _record(flow.producers_exact, value, site)
            elif kind == "prefix" and value is not None:
                _record(flow.producers_prefix, value, site)
        elif method in _CONSUMER_METHODS:
            site = LabelSite(
                source.relpath, node.lineno, source.module, site_via, owner
            )
            for label in _consumed_labels(project, source, label_node):
                _record(flow.consumers, label, site)


def _consumed_labels(
    project: Project, source: SourceFile, label_node: ast.expr
) -> List[str]:
    """Constant labels a consumer argument denotes (str or str-tuple)."""
    kind, value = string_pattern(
        label_node,
        lambda name: project.resolve_str(source.module, name),
        lambda chain: project.resolve_str_chain(source.module, chain),
    )
    if kind == "exact" and value is not None:
        return [value]
    if isinstance(label_node, ast.Name):
        as_tuple = project.resolve_str_tuple(source.module, label_node.id)
        if as_tuple is not None:
            return list(as_tuple)
    return []


def _walk_with_class(tree: ast.Module):
    """Yield ``(enclosing class name or None, node)`` pairs."""

    def visit(node: ast.AST, owner: Optional[str]):
        for child in ast.iter_child_nodes(node):
            child_owner = (
                child.name if isinstance(child, ast.ClassDef) else owner
            )
            yield child_owner, child
            yield from visit(child, child_owner)

    yield from visit(tree, None)


def _record(
    mapping: Dict[str, List[LabelSite]], label: str, site: LabelSite
) -> None:
    mapping.setdefault(label, []).append(site)


@register_rule
class LabelFlowRule(Rule):
    """KL003: consumed knowgget labels must be producible, and vice versa."""

    ID = "KL003"
    TITLE = "knowgget labels: every consumer has a producer (and vice versa)"

    def check(self, project: Project) -> Iterable[Finding]:
        flow = derive_label_flow(project)

        for label, sites in sorted(flow.consumers.items()):
            if flow.producible(label):
                continue
            site = sites[0]
            role = (
                "a Requirement of"
                if site.via == "requirement"
                else "read by"
            )
            where = f" {site.owner}" if site.owner else f" {site.module}"
            yield self.finding(
                Severity.ERROR,
                site.path,
                site.line,
                f"knowgget label {label!r} is {role}{where} but no sensing or"
                " collective producer ever writes it — the consumer is"
                " dormant forever",
                key=label,
            )

        for label, sites in sorted(flow.producers_exact.items()):
            if flow.consumed(label):
                continue
            producer_paths = {site.path for site in sites}
            if flow.referenced_elsewhere(label, producer_paths):
                continue
            site = sites[0]
            yield self.finding(
                Severity.WARNING,
                site.path,
                site.line,
                f"knowgget label {label!r} is produced here but never"
                " consumed by any Requirement or Knowledge Base read",
                key=label,
            )
