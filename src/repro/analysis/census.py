"""Runtime state census — the live counterpart of the static state graph.

The state graph (:mod:`repro.analysis.stategraph`) claims to know every
field of every checkpoint-relevant class.  That claim is only credible
if it is checked against ground truth: this module walks the *live*
object graph of a real scenario run (E1's Simulator/KalisNode, E14's
chaos world) and reports every ``repro.*`` object attribute the static
inventory does not know about.  The tier-1 suite asserts the report is
empty — so the inventory is validated against reality, not just against
planted fixtures (the same pattern as PR 4's ``bus_topics`` runtime
cross-check).
"""

from __future__ import annotations

import enum
import functools
import types
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

#: Packages whose objects the census inspects.
CENSUS_PACKAGE_PREFIX = "repro."
#: Analysis/taxonomy objects are tooling, never checkpointed.
CENSUS_EXCLUDED_PREFIXES = ("repro.analysis", "repro.taxonomy")

#: Scalar types that carry no object graph.
_SCALARS = (type(None), bool, int, float, complex, str, bytes, bytearray)


@dataclass
class CensusReport:
    """What the walker saw, versus what the static inventory knows."""

    #: Objects visited (post-dedup).
    objects: int = 0
    #: Distinct repro classes encountered live.
    classes: Set[Tuple[str, str]] = field(default_factory=set)
    #: "module.Class.field" seen live but absent from the inventory.
    missing: List[str] = field(default_factory=list)
    #: (module, class) seen live but absent from the inventory entirely.
    missing_classes: List[str] = field(default_factory=list)

    def ok(self) -> bool:
        return not self.missing and not self.missing_classes


def run_census(
    roots: Iterable[object],
    index: Dict[Tuple[str, str], Set[str]],
    injected: Set[str] = frozenset(),
) -> CensusReport:
    """Walk the live object graph; compare against the static inventory.

    :param roots: live objects to start from (a Simulator, KalisNodes…).
    :param index: ``(module, class name) -> known field names``, from
        :meth:`~repro.analysis.stategraph.StateGraph.inventory_index`.
    :param injected: attribute names assigned onto foreign objects at a
        statically-known site (monkey-patch seams like the fault plan's
        ``module.handle`` wrap), from
        :meth:`~repro.analysis.stategraph.StateGraph.injected_attribute_names`
        — counted as known on any class.
    """
    report = CensusReport()
    seen: Set[int] = set()
    missing: Set[str] = set()
    missing_classes: Set[str] = set()
    stack: List[object] = list(roots)
    while stack:
        obj = stack.pop()
        if isinstance(obj, _SCALARS):
            continue
        identity = id(obj)
        if identity in seen:
            continue
        seen.add(identity)
        report.objects += 1
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
            continue
        if isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
            continue
        if isinstance(obj, types.FunctionType):
            for cell in obj.__closure__ or ():
                try:
                    stack.append(cell.cell_contents)
                except ValueError:
                    continue  # empty cell
            continue
        if isinstance(obj, types.MethodType):
            stack.append(obj.__self__)
            continue
        if isinstance(obj, functools.partial):
            stack.append(obj.func)
            stack.extend(obj.args)
            stack.extend(obj.keywords.values())
            continue
        if isinstance(obj, enum.Enum) or isinstance(obj, type):
            continue
        cls = type(obj)
        module = getattr(cls, "__module__", "") or ""
        if not module.startswith(CENSUS_PACKAGE_PREFIX):
            continue
        if any(module.startswith(p) for p in CENSUS_EXCLUDED_PREFIXES):
            continue
        mro_keys = [
            (base.__module__, base.__name__)
            for base in cls.__mro__
            if getattr(base, "__module__", "").startswith(
                CENSUS_PACKAGE_PREFIX
            )
        ]
        report.classes.add((module, cls.__name__))
        if not any(key in index for key in mro_keys):
            missing_classes.add(f"{module}.{cls.__name__}")
            continue
        for name, value in _live_attributes(obj):
            known = name in injected or any(
                name in index.get(key, ()) for key in mro_keys
            )
            if not known:
                missing.add(f"{module}.{cls.__name__}.{name}")
            stack.append(value)
    report.missing = sorted(missing)
    report.missing_classes = sorted(missing_classes)
    return report


def _live_attributes(obj: object) -> Iterable[Tuple[str, object]]:
    """An object's instance attributes, covering __dict__ and __slots__."""
    attributes = getattr(obj, "__dict__", None)
    if attributes is not None:
        yield from list(attributes.items())
    for base in type(obj).__mro__:
        for slot in getattr(base, "__slots__", ()):
            if slot in ("__dict__", "__weakref__"):
                continue
            try:
                yield slot, getattr(obj, slot)
            except AttributeError:
                continue
