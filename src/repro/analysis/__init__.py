"""kalis-lint: an AST-based invariant checker for the Kalis reproduction.

The reproduction's correctness rests on invariants Python cannot
enforce at runtime — detection modules activate only via declaratively
listed knowgget labels, modules are instantiated by name through the
registry, the event substrate must stay deterministic, and packet
schemas must round-trip through the trace codec.  This package checks
them statically, over the parsed AST and import graph of ``src/repro``.

Public surface:

- :func:`repro.analysis.engine.run_rules` /
  :class:`repro.analysis.project.Project` — programmatic analysis;
- :func:`repro.analysis.rules.labels.derive_label_flow` — the KL003
  producer/consumer label map (machine-checked against the paper's
  Figure 3 taxonomy in tests);
- :class:`repro.analysis.callgraph.CallGraph` /
  :func:`repro.analysis.knowflow.derive_knowflow` — the whole-program
  symbol/call-graph layer and the knowledge-flow + topic graphs the
  KL1xx rules run on (exported via ``kalis-lint graph``);
- :mod:`repro.analysis.cli` — the ``kalis-lint`` command.

Per-file rules: KL001 determinism, KL002 module contracts, KL003
knowledge-label flow, KL004 packet schemas, KL005 event-bus topics,
KL006 unused imports, KL007 swallowed exceptions, KL008 no print()
outside the CLI surface — plus KL000 (syntax failure) and KL099 (stale
baseline entry).  Whole-program rules: KL101 knowgget liveness, KL102
dead knowledge, KL103 orphan bus topics, KL104 module contract drift,
KL105 determinism taint.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.callgraph import CallGraph
from repro.analysis.engine import Rule, available_rules, register_rule, run_rules
from repro.analysis.findings import Finding, Severity, sort_findings
from repro.analysis.knowflow import KnowFlow, derive_knowflow
from repro.analysis.project import Project, SourceFile

__all__ = [
    "Baseline",
    "BaselineEntry",
    "CallGraph",
    "Finding",
    "KnowFlow",
    "Project",
    "Rule",
    "Severity",
    "SourceFile",
    "available_rules",
    "derive_knowflow",
    "register_rule",
    "run_rules",
    "sort_findings",
]
