"""kalis-lint: an AST-based invariant checker for the Kalis reproduction.

The reproduction's correctness rests on invariants Python cannot
enforce at runtime — detection modules activate only via declaratively
listed knowgget labels, modules are instantiated by name through the
registry, the event substrate must stay deterministic, and packet
schemas must round-trip through the trace codec.  This package checks
them statically, over the parsed AST and import graph of ``src/repro``.

Public surface:

- :func:`repro.analysis.engine.run_rules` /
  :class:`repro.analysis.project.Project` — programmatic analysis;
- :func:`repro.analysis.rules.labels.derive_label_flow` — the KL003
  producer/consumer label map (machine-checked against the paper's
  Figure 3 taxonomy in tests);
- :mod:`repro.analysis.cli` — the ``kalis-lint`` command.

Rules: KL001 determinism, KL002 module contracts, KL003 knowledge-label
flow, KL004 packet schemas, KL005 event-bus topics, KL006 unused
imports, KL007 swallowed exceptions, KL008 no print() outside the CLI
surface — plus KL000 (syntax failure) and KL099 (stale baseline entry).
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.engine import Rule, available_rules, register_rule, run_rules
from repro.analysis.findings import Finding, Severity, sort_findings
from repro.analysis.project import Project, SourceFile

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "Project",
    "Rule",
    "Severity",
    "SourceFile",
    "available_rules",
    "register_rule",
    "run_rules",
    "sort_findings",
]
