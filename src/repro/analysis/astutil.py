"""Small AST helpers shared by kalis-lint rules.

Rules deal with the same handful of shapes over and over: dotted
attribute chains (``self.ctx.kb.put``), string arguments that may be
literals, names bound to module-level constants, concatenations or
f-strings, and class-body attribute assignments.  These helpers keep the
rules themselves short and declarative.
"""

from __future__ import annotations

import ast
from typing import Callable, List, Optional, Tuple

#: A statically-understood string expression: ``("exact", value)`` for a
#: fully-known string, ``("prefix", head)`` when only a leading constant
#: part is known (f-string or concatenation), ``("dynamic", None)`` when
#: nothing useful is known.
StrPattern = Tuple[str, Optional[str]]

Resolver = Callable[[str], Optional[str]]
#: Resolver for dotted constant references (``alias.CONST``): takes the
#: attribute chain as a list and returns the constant's value, if known.
ChainResolver = Callable[[List[str]], Optional[str]]


def const_str(node: ast.AST) -> Optional[str]:
    """The value of a plain string literal, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def attribute_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-trivial bases."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        parts.reverse()
        return parts
    return None


def call_chain(call: ast.Call) -> Optional[List[str]]:
    """The dotted chain of a call's function, e.g. ``self.bus.publish``."""
    return attribute_chain(call.func)


def decorator_names(node: ast.ClassDef) -> List[str]:
    """Last-segment names of a class's decorators (``register_module``)."""
    names: List[str] = []
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        chain = attribute_chain(target)
        if chain:
            names.append(chain[-1])
    return names


def base_names(node: ast.ClassDef) -> List[str]:
    """Last-segment names of a class's bases."""
    names: List[str] = []
    for base in node.bases:
        chain = attribute_chain(base)
        if chain:
            names.append(chain[-1])
    return names


def class_body_assign(node: ast.ClassDef, name: str) -> Optional[ast.expr]:
    """The value expression assigned to ``name`` in the class body."""
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return statement.value
        elif isinstance(statement, ast.AnnAssign):
            target = statement.target
            if isinstance(target, ast.Name) and target.id == name:
                return statement.value
    return None


def string_pattern(
    node: ast.AST,
    resolve: Optional[Resolver] = None,
    resolve_chain: Optional[ChainResolver] = None,
) -> StrPattern:
    """Statically classify a string-valued expression.

    Handles literals, names resolvable to module-level string constants
    (via ``resolve``), dotted constant references resolvable through
    module aliases (via ``resolve_chain``, e.g. ``alerts.ALERT_TOPIC``
    after ``from repro.core import alerts``), ``CONST + tail``
    concatenations, and f-strings with a constant head
    (``f"Multihop.{medium}"`` -> prefix ``"Multihop."``).
    """
    literal = const_str(node)
    if literal is not None:
        return ("exact", literal)
    if isinstance(node, ast.Name) and resolve is not None:
        resolved = resolve(node.id)
        if resolved is not None:
            return ("exact", resolved)
        return ("dynamic", None)
    if isinstance(node, ast.Attribute) and resolve_chain is not None:
        chain = attribute_chain(node)
        if chain is not None:
            resolved = resolve_chain(chain)
            if resolved is not None:
                return ("exact", resolved)
        return ("dynamic", None)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        head_kind, head = string_pattern(node.left, resolve, resolve_chain)
        if head_kind == "exact" and head is not None:
            tail_kind, tail = string_pattern(node.right, resolve, resolve_chain)
            if tail_kind == "exact" and tail is not None:
                return ("exact", head + tail)
            return ("prefix", head)
        return ("dynamic", None)
    if isinstance(node, ast.JoinedStr):
        head_parts: List[str] = []
        for value in node.values:
            part = const_str(value)
            if part is not None:
                head_parts.append(part)
            else:
                break
        if len(head_parts) == len(node.values):
            return ("exact", "".join(head_parts))
        if head_parts:
            return ("prefix", "".join(head_parts))
        return ("dynamic", None)
    return ("dynamic", None)


def pattern_covers(producer: StrPattern, label: str) -> bool:
    """Does a produced pattern cover a concrete consumed string?"""
    kind, value = producer
    if value is None:
        return False
    if kind == "exact":
        return value == label
    return label.startswith(value)


def patterns_overlap(a: StrPattern, b: StrPattern) -> bool:
    """Could the two patterns ever denote the same string?"""
    kind_a, value_a = a
    kind_b, value_b = b
    if value_a is None or value_b is None:
        return False
    if kind_a == "exact" and kind_b == "exact":
        return value_a == value_b
    if kind_a == "exact":
        return value_a.startswith(value_b)
    if kind_b == "exact":
        return value_b.startswith(value_a)
    return value_a.startswith(value_b) or value_b.startswith(value_a)


def keyword_arg(call: ast.Call, name: str) -> Optional[ast.expr]:
    """The value of a keyword argument, or None when absent."""
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def call_arg(call: ast.Call, position: int, name: str) -> Optional[ast.expr]:
    """Positional-or-keyword argument lookup."""
    if len(call.args) > position:
        return call.args[position]
    return keyword_arg(call, name)
