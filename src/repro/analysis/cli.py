"""The kalis-lint command line.

``kalis-lint`` (console script) and ``python -m repro.analysis`` run the
invariant checker over a source tree::

    kalis-lint src/repro                 # lint, honoring the baseline
    kalis-lint --list-rules              # what is checked
    kalis-lint --select KL001,KL003 …    # a subset of rules
    kalis-lint --write-baseline …        # snapshot current findings
    kalis-lint --format json …           # machine-readable output
    kalis-lint --format sarif …          # SARIF 2.1.0 (CI annotations)
    kalis-lint --jobs 4 …                # file rules across 4 processes
                                         # (output identical to serial)
    kalis-lint --changed [REF] …         # only files touched since REF
                                         # (plus their transitive importers)
    kalis-lint --fix [--dry-run] …       # rewrite autofixable findings
                                         # (KL006 unused imports)
    kalis-lint --no-cache …              # skip the .kalis-lint-cache
    kalis-lint graph --format dot|json   # export the whole-program
                                         # knowledge-flow and topic graphs
    kalis-lint graph --view state        # export the state graph
                                         # (checkpoint-safety inventory)
    kalis-lint graph --view proc         # export the process-boundary
                                         # graph (serialization, forks,
                                         # queues, wire schemas)
    kalis-lint baseline --audit …        # flag stale baseline entries
    kalis-lint baseline --audit --prune  # …and rewrite without them

``--changed`` still parses the *whole* tree (the KL1xx whole-program
rules are unsound on a partial parse); only the reported findings are
filtered to the change closure, so it is fast to read, not fast to run.

Exit codes: 0 clean, 1 findings (including stale baseline entries),
2 usage or baseline-file errors.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Set

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.engine import (
    STALE_BASELINE_RULE_ID,
    available_rules,
    run_rules,
)
from repro.analysis.findings import Finding, Severity, sort_findings
from repro.analysis.project import Project

#: Default baseline file name, looked up in the project root.
BASELINE_FILENAME = "kalis-lint.baseline"
#: Reason stamped on entries created by ``--write-baseline``.
TODO_REASON = "TODO: justify this finding or fix it"


def build_parser() -> argparse.ArgumentParser:
    """Build the kalis-lint argument parser."""
    parser = argparse.ArgumentParser(
        prog="kalis-lint",
        description=(
            "AST-based invariant checker for the Kalis reproduction:"
            " determinism, module contracts, knowledge-label flow, packet"
            " schemas, and event-bus topics."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="project root for relative paths (default: auto-detected via"
        " pyproject.toml/.git)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <root>/{BASELINE_FILENAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0;"
        " existing justifications are preserved",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        dest="output_format",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run file-scoped rules across N worker processes (default 1"
        " = serial; output is byte-identical either way)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="report only findings in files changed vs. REF (default HEAD)"
        " and their transitive importers; the whole tree is still parsed",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="rewrite autofixable findings in place (KL006 unused imports)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="with --fix: print the diff instead of writing files",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="parse and run every rule from scratch, ignoring"
        " .kalis-lint-cache",
    )
    return parser


def build_graph_parser() -> argparse.ArgumentParser:
    """Build the ``kalis-lint graph`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="kalis-lint graph",
        description=(
            "Export the whole-program knowledge-flow and bus-topic graphs"
            " (deterministic: byte-identical across runs)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="project root for relative paths",
    )
    parser.add_argument(
        "--format",
        choices=("dot", "json"),
        default="json",
        dest="output_format",
    )
    parser.add_argument(
        "--view",
        choices=("flow", "state", "proc"),
        default="flow",
        help="flow: knowledge-flow and bus-topic graphs (default);"
        " state: the whole-program state inventory (checkpoint roots,"
        " field classification, rebuild hooks); proc: the"
        " process-boundary graph (serialization sites, forks, queues,"
        " exits, wire schemas)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="FILE",
        help="write to FILE instead of stdout",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run kalis-lint; returns the process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "graph":
        return graph_main(arguments[1:])
    if arguments and arguments[0] == "baseline":
        return baseline_main(arguments[1:])
    parser = build_parser()
    options = parser.parse_args(arguments)

    if options.list_rules:
        for rule_class in available_rules():
            print(f"{rule_class.ID}  {rule_class.TITLE}")
        return 0

    paths = [Path(p) for p in options.paths]
    if not paths:
        default = Path("src/repro")
        if not default.exists():
            parser.error("no paths given and ./src/repro does not exist")
        paths = [default]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")

    cache = None
    if not options.no_cache:
        from repro.analysis.cache import LintCache
        from repro.analysis.project import _find_root

        cache_root = (
            options.root
            or _find_root([path.resolve() for path in paths])
        ).resolve()
        cache = LintCache(cache_root)
    project = Project.load(paths, root=options.root, cache=cache)

    select = None
    if options.select:
        select = [r.strip() for r in options.select.split(",") if r.strip()]
    try:
        findings = run_rules(
            project, select=select, cache=cache, jobs=options.jobs
        )
    except KeyError as error:
        # str(KeyError) wraps the message in quotes; unwrap it.
        parser.error(error.args[0] if error.args else str(error))

    baseline_path = options.baseline or (project.root / BASELINE_FILENAME)
    if options.no_baseline:
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as error:
            print(f"kalis-lint: {error}", file=sys.stderr)
            return 2

    if options.write_baseline:
        return _write_baseline(baseline_path, baseline, findings)

    scope: Optional[Set[str]] = None
    if options.changed is not None:
        try:
            scope = _changed_scope(project, options.changed)
        except RuntimeError as error:
            print(f"kalis-lint: {error}", file=sys.stderr)
            return 2

    suppressed = 0
    reported: List[Finding] = []
    for finding in findings:
        if scope is not None and finding.path not in scope:
            continue
        if baseline.suppresses(finding):
            suppressed += 1
        else:
            reported.append(finding)

    scanned = {source.relpath for source in project.files}
    scanned.update(failure.relpath for failure in project.failures)
    if scope is not None:
        # Out-of-scope files were not (re-)judged; their baseline
        # entries cannot be called stale.
        scanned &= scope
    for entry in baseline.stale_entries(scanned):
        if select is not None and entry.rule not in select:
            # The entry's rule did not run; it cannot be judged stale.
            continue
        reported.append(
            Finding(
                rule=STALE_BASELINE_RULE_ID,
                severity=Severity.WARNING,
                path=entry.path,
                line=0,
                message=(
                    f"stale baseline entry: {entry.rule} no longer reports"
                    f" {entry.key!r} here ({entry.reason}); remove the entry"
                ),
                key=entry.key,
            )
        )
    reported = sort_findings(reported)

    if options.fix:
        from repro.analysis.fixes import apply_fixes, fixable

        changed, diff = apply_fixes(
            project, reported, dry_run=options.dry_run
        )
        fixed = {
            (finding.path, finding.line, finding.key)
            for finding in fixable(reported)
            if finding.path in set(changed)
        }
        if options.dry_run:
            sys.stdout.write(diff)
        else:
            # Fixed findings are gone from the tree; don't re-report them.
            reported = [
                finding
                for finding in reported
                if (finding.path, finding.line, finding.key) not in fixed
            ]
        verb = "would fix" if options.dry_run else "fixed"
        print(
            f"kalis-lint: {verb} {len(fixed)} finding(s) in"
            f" {len(changed)} file(s)"
        )

    if options.output_format == "sarif":
        from repro.analysis.sarif import render_sarif

        sys.stdout.write(render_sarif(reported))
    elif options.output_format == "json":
        print(
            json.dumps(
                {
                    "findings": [finding.to_dict() for finding in reported],
                    "suppressed": suppressed,
                    "files": len(project.files),
                },
                indent=2,
            )
        )
    else:
        for finding in reported:
            print(finding.render())
        summary = (
            f"kalis-lint: {len(reported)} finding(s)"
            if reported
            else "kalis-lint: clean"
        )
        details = [f"{len(project.files)} files"]
        if suppressed:
            details.append(f"{suppressed} baselined")
        print(f"{summary} ({', '.join(details)})")

    return 1 if reported else 0


def _changed_scope(project: Project, ref: str) -> Set[str]:
    """Relpaths in the change closure: files changed vs. ``ref`` plus
    every file that (transitively) imports one of them."""
    changed: Set[str] = set()
    for command in (
        ["git", "diff", "--name-only", ref, "--"],
        # Brand-new files are invisible to diff until tracked.
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            completed = subprocess.run(
                command,
                cwd=project.root,
                capture_output=True,
                text=True,
                check=True,
            )
        except (OSError, subprocess.CalledProcessError) as error:
            detail = getattr(error, "stderr", "") or str(error)
            hint = (
                "; --changed takes an optional git REF, not a path — put"
                " paths before it (kalis-lint src/repro --changed)"
                if Path(ref).exists()
                else ""
            )
            raise RuntimeError(
                f"--changed: {' '.join(command[:2])} failed:"
                f" {detail.strip()}{hint}"
            ) from error
        changed.update(
            line.strip() for line in completed.stdout.splitlines() if line.strip()
        )

    by_relpath = {source.relpath: source for source in project.files}
    frontier = [
        by_relpath[relpath].module
        for relpath in changed
        if relpath in by_relpath
    ]
    closure: Set[str] = set(frontier)
    while frontier:
        module = frontier.pop()
        for importer in project.importers_of(module):
            if importer not in closure:
                closure.add(importer)
                frontier.append(importer)

    scope = {
        source.relpath
        for source in project.files
        if source.module in closure
    }
    # Changed files that did not parse (or are not modules) stay in
    # scope so their findings/baseline entries are still judged.
    scope.update(changed)
    return scope


def graph_main(argv: List[str]) -> int:
    """Run ``kalis-lint graph``; returns the process exit code."""
    parser = build_graph_parser()
    options = parser.parse_args(argv)
    paths = [Path(p) for p in options.paths]
    if not paths:
        default = Path("src/repro")
        if not default.exists():
            parser.error("no paths given and ./src/repro does not exist")
        paths = [default]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")

    project = Project.load(paths, root=options.root)
    if options.view == "proc":
        from repro.analysis import procgraph

        proc = procgraph.derive_procgraph(project)
        rendered = (
            procgraph.export_dot(proc)
            if options.output_format == "dot"
            else procgraph.export_json(proc)
        )
    elif options.view == "state":
        from repro.analysis import stategraph

        state = stategraph.derive_stategraph(project)
        rendered = (
            stategraph.export_dot(state)
            if options.output_format == "dot"
            else stategraph.export_json(state)
        )
    else:
        from repro.analysis.knowflow import (
            derive_knowflow,
            export_dot,
            export_json,
        )

        flow = derive_knowflow(project)
        rendered = (
            export_dot(flow)
            if options.output_format == "dot"
            else export_json(flow)
        )
    if options.output is not None:
        options.output.write_text(rendered, encoding="utf-8")
    else:
        sys.stdout.write(rendered)
    return 0


def build_baseline_parser() -> argparse.ArgumentParser:
    """Build the ``kalis-lint baseline`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="kalis-lint baseline",
        description=(
            "Audit the baseline against a full lint run: flag entries"
            " whose (rule, path, key) no longer matches any current"
            " finding, and optionally prune them."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--root", type=Path, default=None, help="project root"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <root>/{BASELINE_FILENAME})",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="report stale entries; exit 1 if any (this is the default"
        " and only mode, the flag exists for readability in CI)",
    )
    parser.add_argument(
        "--prune",
        action="store_true",
        help="rewrite the baseline file without the stale entries",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore .kalis-lint-cache for the underlying lint run",
    )
    return parser


def baseline_main(argv: List[str]) -> int:
    """Run ``kalis-lint baseline``; returns the process exit code."""
    parser = build_baseline_parser()
    options = parser.parse_args(argv)
    paths = [Path(p) for p in options.paths]
    if not paths:
        default = Path("src/repro")
        if not default.exists():
            parser.error("no paths given and ./src/repro does not exist")
        paths = [default]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")

    cache = None
    if not options.no_cache:
        from repro.analysis.cache import LintCache
        from repro.analysis.project import _find_root

        cache_root = (
            options.root or _find_root([path.resolve() for path in paths])
        ).resolve()
        cache = LintCache(cache_root)
    project = Project.load(paths, root=options.root, cache=cache)
    findings = run_rules(project, cache=cache)

    baseline_path = options.baseline or (project.root / BASELINE_FILENAME)
    try:
        baseline = Baseline.load(baseline_path)
    except BaselineError as error:
        print(f"kalis-lint: {error}", file=sys.stderr)
        return 2
    for finding in findings:
        baseline.suppresses(finding)  # marks matching entries as used

    scanned = {source.relpath for source in project.files}
    scanned.update(failure.relpath for failure in project.failures)
    stale = baseline.stale_entries(scanned)
    unjudged = [
        entry for entry in baseline.entries() if entry.path not in scanned
    ]
    for entry in stale:
        print(
            f"{entry.path}: stale {entry.rule} entry {entry.key!r}"
            f" ({entry.reason})"
        )
    if options.prune and stale:
        stale_ids = {entry.identity for entry in stale}
        kept = [
            entry
            for entry in baseline.entries()
            if entry.identity not in stale_ids
        ]
        baseline_path.write_text(
            Baseline.render_file(kept), encoding="utf-8"
        )
        print(
            f"kalis-lint: pruned {len(stale)} stale entr"
            f"{'y' if len(stale) == 1 else 'ies'} from {baseline_path}"
            f" ({len(kept)} kept)"
        )
        return 0
    summary = (
        f"kalis-lint: {len(stale)} stale baseline entr"
        f"{'y' if len(stale) == 1 else 'ies'}"
        if stale
        else "kalis-lint: baseline is live"
    )
    details = [f"{len(baseline)} entries", f"{len(project.files)} files"]
    if unjudged:
        details.append(f"{len(unjudged)} outside the scanned paths")
    print(f"{summary} ({', '.join(details)})")
    return 1 if stale else 0


def _write_baseline(
    baseline_path: Path, existing: Baseline, findings: List[Finding]
) -> int:
    """Snapshot current findings, keeping justifications already written."""
    previous = {entry.identity: entry for entry in existing.entries()}
    entries = []
    for finding in findings:
        identity = (finding.rule, finding.path, finding.key)
        kept = previous.get(identity)
        reason = kept.reason if kept is not None else TODO_REASON
        entries.append(Baseline.entry_for(finding, reason))
    baseline_path.write_text(
        Baseline.render_file(entries), encoding="utf-8"
    )
    print(
        f"kalis-lint: wrote {len(entries)} entr"
        f"{'y' if len(entries) == 1 else 'ies'} to {baseline_path}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
