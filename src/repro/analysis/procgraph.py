"""The whole-program process-boundary graph: every seam a record crosses.

The fleet pipeline (PR 8) and service mode (PR 7) multiplied the places
where state leaves a Python process: pickle payloads inside snapshot
files, NDJSON batch streams, a bounded multiprocessing queue, forked
worker entrypoints, ``os._exit`` kill paths and signal handlers.  Each
of those seams carries a hand-maintained wire contract (ckpt
``SCHEMA_VERSION``, obs export ``FORMAT_VERSION``, siem batch schema),
and until now only runtime tests guarded them.  Built on the
:mod:`repro.analysis.callgraph` symbol index, this layer derives:

- every **serialization site** (``pickle``/``json`` dumps/loads,
  ``gzip.open``) with its enclosing function and direction;
- every **boundary crossing**: fork spawns (``Process(target=…)`` with
  the target resolved to its definition), ``get_context`` method
  choices, bounded-queue puts/gets, ``os._exit`` sites, and
  ``signal.signal`` registrations with the handler resolved;
- every **wire schema**: per-module groups keyed on a ``*_VERSION``
  constant, with *writers* (functions emitting a dict whose keys
  include the ``v``/``version`` field — dict literals and
  ``header["k"] = …`` subscript builds both count) and *readers*
  (``read_*``/``load``/``validate_*``/``parse_*`` functions, with the
  string keys they consume via ``x["k"]``, ``x.get("k")``, ``"k" in x``
  and the ``for f in ("a", "b"): if f not in rec`` idiom), plus a
  stable digest of the emitted field set;
- every **dedup/sort key spec** (``*_dedup_key``/``*_sort_key``
  function pairs and the record fields their tuples read) — the
  exactly-once contract's static shadow;
- two name-based closures: the **validating** functions (anything that
  transitively reaches a schema reader or ``validate*``) and the
  **durable** functions (anything that transitively reaches a
  ``flush``/``save``/``checkpoint``/``snapshot``/``fsync``).

The KL301–KL306 rules (:mod:`repro.analysis.rules.boundaries`) ride on
this graph, and :func:`export_json` / :func:`export_dot` ship it with
fully sorted iteration so two runs produce byte-identical output — CI
asserts this, mirroring the flow and state views.  The runtime
counterpart lives in the fleet smoke cross-check test: a real fleet
run's observed file/queue crossings must be a subset of this static
inventory (the PR-6 census pattern).
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph, FunctionInfo
from repro.analysis.project import Project, SourceFile

#: Packages the graph never scans (mirrors knowflow/stategraph).
EXCLUDED_PACKAGES = ("repro.analysis", "repro.taxonomy")

#: ``(module, callee) -> (format, direction)`` for serializer calls.
SERIALIZER_CALLS = {
    ("pickle", "dumps"): ("pickle", "write"),
    ("pickle", "dump"): ("pickle", "write"),
    ("pickle", "loads"): ("pickle", "read"),
    ("pickle", "load"): ("pickle", "read"),
    ("json", "dumps"): ("json", "write"),
    ("json", "dump"): ("json", "write"),
    ("json", "loads"): ("json", "read"),
    ("json", "load"): ("json", "read"),
    ("gzip", "open"): ("gzip", "open"),
}

#: Queue method names that move a record across the process boundary.
QUEUE_PUT_METHODS = frozenset({"put", "put_nowait"})
QUEUE_GET_METHODS = frozenset({"get", "get_nowait"})

#: Call names that make state durable (seed of the durable closure).
DURABLE_CALL_NAMES = frozenset(
    {"flush", "save", "checkpoint", "snapshot", "fsync", "write_snapshot"}
)
#: Handler calls that cleanly hand shutdown to the run loop.
STOP_REQUEST_NAMES = frozenset({"request_stop", "stop"})

#: A function whose (underscore-stripped) name starts with one of these
#: is a schema-reader candidate.
READER_NAME_PREFIXES = ("read", "load", "validate", "parse")

#: Dict keys that mark a dict build as a versioned wire record.
VERSION_FIELD_NAMES = frozenset({"v", "version"})


def _is_queue_receiver(name: str) -> bool:
    """Does a receiver spelling denote a cross-process queue?"""
    return name == "q" or name.endswith("queue")


@dataclass
class SerializationSite:
    """One pickle/json/gzip call that moves bytes across a boundary."""

    path: str
    module: str
    line: int
    #: Enclosing function qualname, or None at module/class level.
    function: Optional[str]
    format: str  # "pickle" | "json" | "gzip"
    direction: str  # "write" | "read" | "open"
    chain: str


@dataclass
class ForkSite:
    """One ``Process(target=…)`` spawn (or ``get_context`` choice)."""

    path: str
    module: str
    line: int
    function: Optional[str]
    kind: str  # "spawn" | "context"
    #: Spawn: the target's name as written; context: the start method.
    target: Optional[str] = None
    #: Resolved target definition, when static resolution succeeded.
    target_module: Optional[str] = None
    target_qualname: Optional[str] = None
    #: The spawn's ``ast.Call`` (not exported; KL303 inspects its args).
    node: Optional[ast.Call] = field(default=None, repr=False)


@dataclass
class QueueSite:
    """One queue ``put``/``get`` on a queue-spelled receiver."""

    path: str
    module: str
    line: int
    function: Optional[str]
    receiver: str
    op: str  # "put" | "get"
    method: str


@dataclass
class ExitSite:
    """One ``os._exit`` call — a no-cleanup process death."""

    path: str
    module: str
    line: int
    function: Optional[str]


@dataclass
class SignalSite:
    """One ``signal.signal`` registration with its handler, if resolved."""

    path: str
    module: str
    line: int
    function: Optional[str]
    handler: Optional[str] = None
    handler_module: Optional[str] = None
    handler_qualname: Optional[str] = None


@dataclass
class FlushSite:
    """One ``.flush()`` call (the durable half of flush-before-put)."""

    path: str
    module: str
    line: int
    function: Optional[str]
    receiver: str


@dataclass
class SchemaFunction:
    """One writer or reader of a versioned wire record."""

    module: str
    qualname: str
    name: str
    path: str
    line: int
    role: str  # "writer" | "reader"
    keys: Tuple[str, ...]


@dataclass
class SchemaGroup:
    """One module's wire contract: version, writers, readers, digest."""

    module: str
    path: str
    version: Optional[int] = None
    version_const: Optional[str] = None
    version_line: int = 0
    writers: List[SchemaFunction] = field(default_factory=list)
    readers: List[SchemaFunction] = field(default_factory=list)

    def emitted_keys(self) -> Tuple[str, ...]:
        keys: Set[str] = set()
        for writer in self.writers:
            keys.update(writer.keys)
        return tuple(sorted(keys))

    def digest(self) -> str:
        """A stable 8-hex digest of the emitted field set."""
        joined = ",".join(self.emitted_keys()).encode("utf-8")
        return hashlib.sha1(joined).hexdigest()[:8]


@dataclass
class KeySpec:
    """One dedup/content or sort key function and the fields it reads."""

    module: str
    qualname: str
    path: str
    line: int
    kind: str  # "dedup" | "sort"
    fields: Tuple[str, ...]


@dataclass
class ProcGraph:
    """The derived whole-program process-boundary inventory."""

    project: Project
    graph: CallGraph
    serialization_sites: List[SerializationSite] = field(default_factory=list)
    fork_sites: List[ForkSite] = field(default_factory=list)
    queue_sites: List[QueueSite] = field(default_factory=list)
    exit_sites: List[ExitSite] = field(default_factory=list)
    signal_sites: List[SignalSite] = field(default_factory=list)
    flush_sites: List[FlushSite] = field(default_factory=list)
    #: module -> its wire-schema group.
    schema_groups: Dict[str, SchemaGroup] = field(default_factory=dict)
    key_specs: List[KeySpec] = field(default_factory=list)
    #: Bare names of functions that transitively reach schema validation.
    validating_names: Set[str] = field(default_factory=set)
    #: Bare names of calls/functions that transitively make state durable.
    durable_names: Set[str] = field(default_factory=set)

    def scanned(self, source: SourceFile) -> bool:
        return not any(source.in_package(pkg) for pkg in EXCLUDED_PACKAGES)

    def writer_functions(self) -> Set[Tuple[str, str]]:
        """(module, qualname) of every schema writer."""
        return {
            (writer.module, writer.qualname)
            for group in self.schema_groups.values()
            for writer in group.writers
        }

    def fork_target_names(self) -> Set[str]:
        """Resolved qualnames (or raw names) of every fork entrypoint."""
        names: Set[str] = set()
        for site in self.fork_sites:
            if site.kind != "spawn":
                continue
            if site.target_qualname is not None:
                names.add(site.target_qualname)
            elif site.target is not None:
                names.add(site.target)
        return names


def derive_procgraph(
    project: Project, graph: Optional[CallGraph] = None
) -> ProcGraph:
    """Build the whole-program process-boundary graph."""
    if graph is None:
        graph = CallGraph.build(project)
    proc = ProcGraph(project=project, graph=graph)
    int_constants = _module_int_constants(project, proc)
    _collect_call_sites(proc)
    _collect_schemas(proc, int_constants)
    _collect_key_specs(proc)
    proc.validating_names = _name_closure(
        proc,
        seed_names={
            reader.name
            for group in proc.schema_groups.values()
            for reader in group.readers
        }
        | {
            info.name
            for info in proc.graph.functions.values()
            if info.name.lstrip("_").startswith("validate")
        },
    )
    proc.durable_names = _name_closure(proc, seed_names=set(DURABLE_CALL_NAMES))
    _sort_graph(proc)
    return proc


# -- call-site classification --------------------------------------------------


def _collect_call_sites(proc: ProcGraph) -> None:
    project = proc.project
    for site in proc.graph.call_sites:
        if not proc.scanned(site.source):
            continue
        chain = site.chain
        module = site.source.module
        common = dict(
            path=site.source.relpath,
            module=module,
            line=site.node.lineno,
            function=site.caller.qualname if site.caller else None,
        )
        serializer = _serializer_pair(project, module, chain)
        if serializer is not None:
            fmt, direction = SERIALIZER_CALLS[serializer]
            proc.serialization_sites.append(
                SerializationSite(
                    format=fmt,
                    direction=direction,
                    chain=".".join(chain),
                    **common,
                )
            )
            continue
        callee = chain[-1]
        receiver = chain[-2] if len(chain) >= 2 else ""
        if callee in QUEUE_PUT_METHODS and _is_queue_receiver(receiver):
            proc.queue_sites.append(
                QueueSite(receiver=receiver, op="put", method=callee, **common)
            )
        elif callee in QUEUE_GET_METHODS and _is_queue_receiver(receiver):
            proc.queue_sites.append(
                QueueSite(receiver=receiver, op="get", method=callee, **common)
            )
        elif callee == "flush" and len(chain) >= 2:
            proc.flush_sites.append(FlushSite(receiver=receiver, **common))
        elif callee == "Process":
            target = _keyword_value(site.node, "target")
            name = target.id if isinstance(target, ast.Name) else None
            resolved = (
                _resolve_function(proc, module, name) if name else None
            )
            proc.fork_sites.append(
                ForkSite(
                    kind="spawn",
                    target=name,
                    target_module=resolved.module if resolved else None,
                    target_qualname=resolved.qualname if resolved else None,
                    node=site.node,
                    **common,
                )
            )
        elif callee == "get_context" and site.node.args:
            first = site.node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                proc.fork_sites.append(
                    ForkSite(kind="context", target=first.value, **common)
                )
        elif callee == "_exit" and receiver == "os":
            proc.exit_sites.append(ExitSite(**common))
        elif callee == "signal" and receiver == "signal":
            handler = site.node.args[1] if len(site.node.args) >= 2 else None
            name = handler.id if isinstance(handler, ast.Name) else None
            resolved = (
                _resolve_function(proc, module, name) if name else None
            )
            proc.signal_sites.append(
                SignalSite(
                    handler=name,
                    handler_module=resolved.module if resolved else None,
                    handler_qualname=resolved.qualname if resolved else None,
                    **common,
                )
            )


def _serializer_pair(
    project: Project, module: str, chain: Tuple[str, ...]
) -> Optional[Tuple[str, str]]:
    """The ``(module, callee)`` serializer key for a call chain, if any."""
    if len(chain) == 1:
        link = project.imported_names.get((module, chain[0]))
        if link is not None and link in SERIALIZER_CALLS:
            return link
        return None
    head = project.resolve_module(module, chain[0]) or chain[0]
    pair = (head, chain[-1])
    return pair if pair in SERIALIZER_CALLS else None


def _resolve_function(
    proc: ProcGraph, module: str, name: str
) -> Optional[FunctionInfo]:
    """Resolve a bare name to a function definition (local or imported)."""
    direct = proc.graph.functions.get((module, name))
    if direct is not None:
        return direct
    link = proc.project.imported_names.get((module, name))
    if link is not None:
        return proc.graph.functions.get(link)
    return None


def _keyword_value(node: ast.Call, keyword: str) -> Optional[ast.expr]:
    for entry in node.keywords:
        if entry.arg == keyword:
            return entry.value
    return None


# -- wire-schema extraction ----------------------------------------------------


def _module_int_constants(
    project: Project, proc: ProcGraph
) -> Dict[Tuple[str, str], Tuple[int, int]]:
    """(module, NAME) -> (int value, line) for module-level int consts."""
    constants: Dict[Tuple[str, str], Tuple[int, int]] = {}
    for source in project.files:
        if not proc.scanned(source):
            continue
        for statement in source.tree.body:
            if not isinstance(statement, ast.Assign):
                continue
            value = statement.value
            if not (
                isinstance(value, ast.Constant)
                and isinstance(value.value, int)
                and not isinstance(value.value, bool)
            ):
                continue
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    constants[(source.module, target.id)] = (
                        value.value,
                        statement.lineno,
                    )
    return constants


def _collect_schemas(
    proc: ProcGraph, int_constants: Dict[Tuple[str, str], Tuple[int, int]]
) -> None:
    ordered = [proc.graph.functions[key] for key in sorted(proc.graph.functions)]
    scanned = [
        info for info in ordered if proc.scanned(info.source)
    ]
    # Pass 1: writers anchor the groups (a group exists once anything in
    # the module emits a versioned record).
    for info in scanned:
        writer_keys, version_expr = _writer_keys(info.node)
        if not writer_keys:
            continue
        group = _group_for(proc, info.module, info.source.relpath)
        group.writers.append(
            SchemaFunction(
                module=info.module,
                qualname=info.qualname,
                name=info.name,
                path=info.source.relpath,
                line=info.node.lineno,
                role="writer",
                keys=tuple(writer_keys),
            )
        )
        if group.version is None and version_expr is not None:
            group.version = _resolve_int(
                proc.project, int_constants, info.module, version_expr
            )
    # Pass 2: readers attach to an existing group (or a module carrying
    # a ``*_VERSION`` constant) — separate passes so source order of the
    # reader and writer definitions cannot matter.
    for info in scanned:
        if not info.name.lstrip("_").startswith(READER_NAME_PREFIXES):
            continue
        if info.module not in proc.schema_groups and not _module_version(
            int_constants, info.module
        ):
            continue
        reader_keys = _reader_keys(info.node)
        if not reader_keys:
            continue
        group = _group_for(proc, info.module, info.source.relpath)
        group.readers.append(
            SchemaFunction(
                module=info.module,
                qualname=info.qualname,
                name=info.name,
                path=info.source.relpath,
                line=info.node.lineno,
                role="reader",
                keys=tuple(reader_keys),
            )
        )
    # Stamp explicit version constants (they win over inline literals).
    for module, group in proc.schema_groups.items():
        versioned = _module_version(int_constants, module)
        if versioned is not None:
            name, (value, line) = versioned
            group.version = value
            group.version_const = name
            group.version_line = line


def _group_for(proc: ProcGraph, module: str, path: str) -> SchemaGroup:
    group = proc.schema_groups.get(module)
    if group is None:
        group = SchemaGroup(module=module, path=path)
        proc.schema_groups[module] = group
    return group


def _module_version(
    int_constants: Dict[Tuple[str, str], Tuple[int, int]], module: str
) -> Optional[Tuple[str, Tuple[int, int]]]:
    """The module's ``*_VERSION`` constant ``(name, (value, line))``."""
    candidates = sorted(
        (name, entry)
        for (mod, name), entry in int_constants.items()
        if mod == module and name.endswith("_VERSION")
    )
    return candidates[0] if candidates else None


def _resolve_int(
    project: Project,
    int_constants: Dict[Tuple[str, str], Tuple[int, int]],
    module: str,
    expr: ast.expr,
    _depth: int = 0,
) -> Optional[int]:
    """An int expression's static value (literal or imported constant)."""
    if _depth > 4:
        return None
    if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
        return expr.value
    if isinstance(expr, ast.Name):
        direct = int_constants.get((module, expr.id))
        if direct is not None:
            return direct[0]
        link = project.imported_names.get((module, expr.id))
        if link is not None:
            entry = int_constants.get(link)
            if entry is not None:
                return entry[0]
    return None


def _writer_keys(
    node: ast.AST,
) -> Tuple[List[str], Optional[ast.expr]]:
    """A function's emitted wire-record keys, plus its version expression.

    A dict build counts as a wire record when its keys include ``v`` or
    ``version`` — either a dict literal or a run of ``name["key"] = …``
    subscript assignments onto one local.
    """
    keys: Set[str] = set()
    version_expr: Optional[ast.expr] = None
    by_receiver: Dict[str, Set[str]] = {}
    for child in ast.walk(node):
        if isinstance(child, ast.Dict):
            literal: Dict[str, ast.expr] = {}
            for key_node, value in zip(child.keys, child.values):
                if isinstance(key_node, ast.Constant) and isinstance(
                    key_node.value, str
                ):
                    literal[key_node.value] = value
            if VERSION_FIELD_NAMES & set(literal):
                keys.update(literal)
                if version_expr is None:
                    version_expr = literal.get("v", literal.get("version"))
        elif isinstance(child, ast.Assign):
            for target in child.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    by_receiver.setdefault(target.value.id, set()).add(
                        target.slice.value
                    )
                    if target.slice.value in VERSION_FIELD_NAMES and (
                        version_expr is None
                    ):
                        version_expr = child.value
    for assigned in by_receiver.values():
        if VERSION_FIELD_NAMES & assigned:
            keys.update(assigned)
    return sorted(keys), version_expr


def _reader_keys(node: ast.AST) -> List[str]:
    """The string keys a reader function consumes from its records."""
    keys: Set[str] = set()
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Subscript)
            and isinstance(child.ctx, ast.Load)
            and isinstance(child.value, ast.Name)
            and isinstance(child.slice, ast.Constant)
            and isinstance(child.slice.value, str)
        ):
            keys.add(child.slice.value)
        elif (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr == "get"
            and child.args
            and isinstance(child.args[0], ast.Constant)
            and isinstance(child.args[0].value, str)
        ):
            keys.add(child.args[0].value)
        elif (
            isinstance(child, ast.Compare)
            and len(child.ops) == 1
            and isinstance(child.ops[0], (ast.In, ast.NotIn))
            and isinstance(child.left, ast.Constant)
            and isinstance(child.left.value, str)
        ):
            keys.add(child.left.value)
        elif isinstance(child, ast.For):
            keys.update(_membership_loop_keys(child))
    return sorted(keys)


def _membership_loop_keys(node: ast.For) -> Set[str]:
    """``for f in ("a", "b"): if f not in rec`` — the looped field names."""
    if not isinstance(node.target, ast.Name) or not isinstance(
        node.iter, (ast.Tuple, ast.List)
    ):
        return set()
    strings = [
        element.value
        for element in node.iter.elts
        if isinstance(element, ast.Constant) and isinstance(element.value, str)
    ]
    if len(strings) != len(node.iter.elts) or not strings:
        return set()
    variable = node.target.id
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Compare)
            and len(child.ops) == 1
            and isinstance(child.ops[0], (ast.In, ast.NotIn))
            and isinstance(child.left, ast.Name)
            and child.left.id == variable
        ):
            return set(strings)
    return set()


# -- dedup/sort key specs ------------------------------------------------------


def _collect_key_specs(proc: ProcGraph) -> None:
    for key in sorted(proc.graph.functions):
        info = proc.graph.functions[key]
        if not proc.scanned(info.source):
            continue
        if "dedup_key" in info.name or "content_key" in info.name:
            kind = "dedup"
        elif "sort_key" in info.name:
            kind = "sort"
        else:
            continue
        fields = _param_subscript_keys(info)
        if not fields:
            continue
        proc.key_specs.append(
            KeySpec(
                module=info.module,
                qualname=info.qualname,
                path=info.source.relpath,
                line=info.node.lineno,
                kind=kind,
                fields=tuple(fields),
            )
        )


def _param_subscript_keys(info: FunctionInfo) -> List[str]:
    """String keys read off the function's parameters via subscript."""
    params = set(info.params)
    keys: Set[str] = set()
    for child in ast.walk(info.node):
        if (
            isinstance(child, ast.Subscript)
            and isinstance(child.value, ast.Name)
            and child.value.id in params
            and isinstance(child.slice, ast.Constant)
            and isinstance(child.slice.value, str)
        ):
            keys.add(child.slice.value)
    return sorted(keys)


# -- name closures -------------------------------------------------------------


def _name_closure(proc: ProcGraph, seed_names: Set[str]) -> Set[str]:
    """Bare names of functions transitively calling into ``seed_names``.

    Deliberately name-based (like the call graph's receiver roles): a
    call through a local object (``aggregator.ingest_batch``) still
    propagates, at the cost of conflating same-named functions.
    """
    called_by_function: Dict[Tuple[str, str], Set[str]] = {}
    for site in proc.graph.call_sites:
        if site.caller is None or not proc.scanned(site.source):
            continue
        called_by_function.setdefault(site.caller.key, set()).add(
            site.chain[-1]
        )
    names = set(seed_names)
    changed = True
    while changed:
        changed = False
        for key, called in called_by_function.items():
            info = proc.graph.functions.get(key)
            if info is None or info.name in names:
                continue
            if called & names:
                names.add(info.name)
                changed = True
    return names


# -- sorting and export --------------------------------------------------------


def _sort_graph(proc: ProcGraph) -> None:
    site_key = lambda s: (s.path, s.line)  # noqa: E731
    proc.serialization_sites.sort(key=lambda s: (s.path, s.line, s.chain))
    proc.fork_sites.sort(key=lambda s: (s.path, s.line, s.kind))
    proc.queue_sites.sort(key=lambda s: (s.path, s.line, s.op))
    proc.exit_sites.sort(key=site_key)
    proc.signal_sites.sort(key=site_key)
    proc.flush_sites.sort(key=lambda s: (s.path, s.line, s.receiver))
    proc.key_specs.sort(key=lambda s: (s.path, s.line, s.qualname))
    for group in proc.schema_groups.values():
        group.writers.sort(key=lambda f: (f.path, f.line, f.qualname))
        group.readers.sort(key=lambda f: (f.path, f.line, f.qualname))


def _schema_fn_dict(entry: SchemaFunction) -> Dict[str, object]:
    return {
        "function": entry.qualname,
        "line": entry.line,
        "keys": list(entry.keys),
    }


def export_json(proc: ProcGraph) -> str:
    """The full process-boundary graph as byte-stable JSON."""
    payload: Dict[str, object] = {
        "serialization_sites": [
            {
                "path": site.path,
                "line": site.line,
                "function": site.function,
                "format": site.format,
                "direction": site.direction,
                "chain": site.chain,
            }
            for site in proc.serialization_sites
        ],
        "fork_sites": [
            {
                "path": site.path,
                "line": site.line,
                "function": site.function,
                "kind": site.kind,
                "target": site.target,
                "resolved": (
                    f"{site.target_module}.{site.target_qualname}"
                    if site.target_qualname
                    else None
                ),
            }
            for site in proc.fork_sites
        ],
        "queue_sites": [
            {
                "path": site.path,
                "line": site.line,
                "function": site.function,
                "receiver": site.receiver,
                "op": site.op,
                "method": site.method,
            }
            for site in proc.queue_sites
        ],
        "exit_sites": [
            {
                "path": site.path,
                "line": site.line,
                "function": site.function,
            }
            for site in proc.exit_sites
        ],
        "signal_sites": [
            {
                "path": site.path,
                "line": site.line,
                "function": site.function,
                "handler": site.handler,
                "resolved": (
                    f"{site.handler_module}.{site.handler_qualname}"
                    if site.handler_qualname
                    else None
                ),
            }
            for site in proc.signal_sites
        ],
        "schemas": {
            module: {
                "path": group.path,
                "version": group.version,
                "version_const": group.version_const,
                "digest": group.digest(),
                "emitted_keys": list(group.emitted_keys()),
                "writers": [_schema_fn_dict(w) for w in group.writers],
                "readers": [_schema_fn_dict(r) for r in group.readers],
            }
            for module, group in sorted(proc.schema_groups.items())
        },
        "key_specs": [
            {
                "path": spec.path,
                "line": spec.line,
                "function": spec.qualname,
                "kind": spec.kind,
                "fields": list(spec.fields),
            }
            for spec in proc.key_specs
        ],
        "validating_functions": sorted(proc.validating_names),
        "durable_functions": sorted(proc.durable_names),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def export_dot(proc: ProcGraph) -> str:
    """Boundary crossings as deterministic Graphviz DOT.

    Function nodes are boxes; schema records are notes; the transport
    queue is a ``cds`` shape; fork entrypoints are double-octagons;
    ``os._exit`` is an octagon.  Every node and edge is emitted in
    sorted order so two runs render byte-identically.
    """
    nodes: Dict[str, str] = {}
    edges: Set[Tuple[str, str, str]] = set()

    def fn_node(module: str, function: Optional[str]) -> str:
        name = f"{module}:{function}" if function else module
        nodes.setdefault(name, "box")
        return name

    for module, group in sorted(proc.schema_groups.items()):
        label = f"{module}@v{group.version if group.version is not None else '?'}"
        nodes.setdefault(label, "note")
        for writer in group.writers:
            edges.add((fn_node(module, writer.qualname), label, "write"))
        for reader in group.readers:
            edges.add((label, fn_node(module, reader.qualname), "read"))
    for site in proc.queue_sites:
        nodes.setdefault("queue", "cds")
        owner = fn_node(site.module, site.function)
        if site.op == "put":
            edges.add((owner, "queue", site.method))
        else:
            edges.add(("queue", owner, site.method))
    for site in proc.fork_sites:
        if site.kind != "spawn":
            continue
        target = (
            fn_node(site.target_module, site.target_qualname)
            if site.target_qualname
            else fn_node(site.module, site.target or "?")
        )
        nodes[target] = "doubleoctagon"
        edges.add((fn_node(site.module, site.function), target, "fork"))
    for site in proc.exit_sites:
        nodes.setdefault("os._exit", "octagon")
        edges.add((fn_node(site.module, site.function), "os._exit", "exit"))
    for site in proc.signal_sites:
        if site.handler_qualname is None:
            continue
        handler = fn_node(site.handler_module, site.handler_qualname)
        edges.add((fn_node(site.module, site.function), handler, "signal"))

    lines = [
        "digraph kalis_proc {",
        "  rankdir=LR;",
        '  node [fontname="monospace" shape=box];',
    ]
    for name in sorted(nodes):
        lines.append(f'  "{name}" [shape={nodes[name]}];')
    for left, right, label in sorted(edges):
        lines.append(f'  "{left}" -> "{right}" [label="{label}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"
