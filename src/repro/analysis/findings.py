"""The findings model shared by every kalis-lint rule.

A finding is one concrete invariant violation, addressed by
``file:line`` so editors and CI annotations can jump to it, and carrying
a *stable key* — an identifier that survives unrelated edits (a knowgget
label, a topic, a class name) — so baseline suppression entries do not
rot every time a line number shifts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class Severity(enum.Enum):
    """How bad a finding is.

    Both levels fail the build unless baselined; the distinction exists
    so reports and baselines communicate intent (an ``ERROR`` is a
    broken invariant, a ``WARNING`` is a smell that deserves either a
    fix or a one-line justification).
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    :param rule: rule identifier, e.g. ``"KL001"``.
    :param severity: see :class:`Severity`.
    :param path: file path, POSIX-style, relative to the project root.
    :param line: 1-based line number (0 for whole-file findings).
    :param message: human-readable description of the violation.
    :param key: stable identifier used for baseline matching; must not
        contain whitespace.  Defaults to ``message`` collapsed.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    message: str
    key: str = ""
    column: Optional[int] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.key:
            object.__setattr__(self, "key", self.message.split()[0])
        if any(ch.isspace() for ch in self.key):
            object.__setattr__(self, "key", self.key.replace(" ", "_"))

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def render(self) -> str:
        """The one-line report form: ``path:line: RULE [sev] message``."""
        return f"{self.location}: {self.rule} [{self.severity}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "key": self.key,
        }


def sort_findings(findings) -> list:
    """Deterministic report order: path, then line, then rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.key))
