"""Declarative, seeded fault plans.

A :class:`FaultPlan` is a list of fault events — node crashes and
reboots, radio-interface flaps, injected module crashes, peer-link
partitions — applied to a running simulation.  Everything is scheduled
on the simulator's event queue and any jitter comes from a
:class:`~repro.util.rng.SeededRng` substream, so the same plan and seed
reproduce the same chaos bit-for-bit: the substrate for the chaos
experiments, and the property that lets an alert log serve as a
regression oracle.

The plan knows how to target three layers:

- **simulation nodes** (:class:`NodeCrash`, :class:`InterfaceFlap`) via
  the :meth:`~repro.sim.node.SimNode.crash` /
  :meth:`~repro.sim.node.SimNode.disable_medium` fault hooks;
- **Kalis modules** (:class:`ModuleCrash`) by wrapping the module's
  ``handle`` so it raises :class:`InjectedModuleCrash` on schedule,
  which the Module Manager's supervisor must absorb;
- **the collective-knowledge network** (:class:`LinkOutage`) via
  declared peer-link outage windows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.net.packets.base import Medium
from repro.util.ids import NodeId
from repro.util.rng import SeededRng


class InjectedModuleCrash(RuntimeError):
    """The failure a :class:`ModuleCrash` injects into a module."""


class ProcessKilled(Exception):
    """Raised out of the event loop when a :class:`ProcessKill` fires.

    Models a SIGKILL/SIGTERM of the whole Kalis process: the driver
    (e.g. :class:`repro.ckpt.CheckpointService` or the E15 soak
    harness) catches it, snapshots the deployment as of the kill
    instant, discards the live objects and restores from the snapshot.
    """

    def __init__(self, at: float) -> None:
        super().__init__(f"process killed at t={at}")
        self.at = at


@dataclass(frozen=True)
class NodeCrash:
    """Power a simulation node off at ``at``; back on after ``duration``
    (None = it stays down)."""

    node: NodeId
    at: float
    duration: Optional[float] = None

    def describe(self) -> str:
        tail = "" if self.duration is None else f" for {self.duration}s"
        return f"crash {self.node} at t={self.at}{tail}"


@dataclass(frozen=True)
class InterfaceFlap:
    """Take one of a node's radio interfaces down for a window."""

    node: NodeId
    medium: Medium
    at: float
    duration: float

    def describe(self) -> str:
        return (
            f"flap {self.node}/{self.medium.value} at t={self.at} "
            f"for {self.duration}s"
        )


@dataclass(frozen=True)
class ModuleCrash:
    """Force a Kalis module to raise during ``[start, end)``.

    ``every=1`` crashes every handled capture in the window (drives the
    supervisor to quarantine); ``every=N`` crashes each N-th one.
    """

    kalis: NodeId
    module: str
    start: float
    end: float = math.inf
    every: int = 1

    def describe(self) -> str:
        cadence = "every capture" if self.every == 1 else f"every {self.every}th capture"
        return (
            f"crash module {self.module}@{self.kalis} on {cadence} "
            f"in t=[{self.start}, {self.end})"
        )


@dataclass(frozen=True)
class ProcessKill:
    """Kill the whole Kalis process at ``at`` (checkpoint/restore drill).

    The scheduled callable raises :class:`ProcessKilled` from inside the
    event loop — by then the kill event itself has been popped from the
    queue, so a snapshot taken at the kill point resumes *after* it and
    the kill never re-fires on restore.
    """

    at: float

    def describe(self) -> str:
        return f"kill the Kalis process at t={self.at}"


@dataclass(frozen=True)
class LinkOutage:
    """Partition every peer link of the collective network for a window."""

    start: float
    end: float

    def describe(self) -> str:
        return f"partition peer links in t=[{self.start}, {self.end})"


class _NodeAction:
    """A scheduled fault action on one node (picklable queue entry).

    ``action`` names the :class:`~repro.sim.node.SimNode` fault hook to
    invoke (``crash`` / ``reboot`` / ``disable_medium`` /
    ``enable_medium``); a node that has left the world by firing time is
    skipped, matching the original closure semantics.
    """

    __slots__ = ("sim", "node", "action", "medium")

    def __init__(self, sim, node: NodeId, action: str, medium=None) -> None:
        self.sim = sim
        self.node = node
        self.action = action
        self.medium = medium

    def __call__(self) -> None:
        node = self.sim.get_node(self.node)
        if node is None:
            return
        if self.medium is None:
            getattr(node, self.action)()
        else:
            getattr(node, self.action)(self.medium)


class _KillPoint:
    """The scheduled :class:`ProcessKill` trigger (picklable)."""

    __slots__ = ("at",)

    def __init__(self, at: float) -> None:
        self.at = at

    def __call__(self) -> None:
        raise ProcessKilled(self.at)


class _ModuleCrashInjector:
    """Wraps a module's ``handle`` to raise on the planned schedule."""

    def __init__(self, module, event: ModuleCrash) -> None:
        self.module = module
        self.event = event
        self.calls_in_window = 0
        self.injected = 0
        self._original = module.handle
        module.handle = self._handle

    def _handle(self, capture) -> None:
        if self.event.start <= capture.timestamp < self.event.end:
            self.calls_in_window += 1
            if self.calls_in_window % self.event.every == 0:
                self.injected += 1
                raise InjectedModuleCrash(
                    f"{self.event.module}: planned crash #{self.injected} "
                    f"at t={capture.timestamp}"
                )
        self._original(capture)


class FaultPlan:
    """An ordered, seeded collection of fault events.

    :param seed: seeds the plan's jitter substream.
    :param events: initial events (more can be added with :meth:`add`).
    :param jitter: each event's time is shifted by a uniform offset in
        ``[0, jitter)`` drawn from the seeded substream — the same seed
        always produces the same shifted schedule.
    """

    def __init__(
        self, seed: int = 0, events: Iterable = (), jitter: float = 0.0
    ) -> None:
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        self.seed = seed
        self.jitter = jitter
        self._rng = SeededRng(seed, "faultplan")
        self.events: List = list(events)
        self.injectors: Dict[str, _ModuleCrashInjector] = {}
        self._applied = False

    def add(self, event) -> "FaultPlan":
        """Append one event; chainable."""
        self.events.append(event)
        return self

    def _shift(self, timestamp: float) -> float:
        if self.jitter == 0.0 or not math.isfinite(timestamp):
            return timestamp
        return timestamp + self._rng.uniform(0.0, self.jitter)

    def apply(self, sim, kalis_nodes: Iterable = (), network=None) -> None:
        """Schedule every event onto ``sim``.

        :param kalis_nodes: the :class:`~repro.core.kalis.KalisNode`
            instances whose modules :class:`ModuleCrash` events may
            target (matched by ``node_id``).
        :param network: the
            :class:`~repro.core.collective.CollectiveKnowledgeNetwork`
            that :class:`LinkOutage` events partition.
        """
        if self._applied:
            raise RuntimeError("fault plan already applied")
        self._applied = True
        kalis_by_id = {node.node_id: node for node in kalis_nodes}
        for event in self.events:
            if isinstance(event, NodeCrash):
                self._apply_node_crash(sim, event)
            elif isinstance(event, InterfaceFlap):
                self._apply_interface_flap(sim, event)
            elif isinstance(event, ModuleCrash):
                self._apply_module_crash(kalis_by_id, event)
            elif isinstance(event, ProcessKill):
                sim.schedule_at(self._shift(event.at), _KillPoint(event.at))
            elif isinstance(event, LinkOutage):
                if network is None:
                    raise ValueError(
                        f"{event.describe()}: plan applied without a network"
                    )
                network.add_outage(event.start, event.end)
            else:
                raise TypeError(f"unknown fault event {event!r}")

    def _apply_node_crash(self, sim, event: NodeCrash) -> None:
        at = self._shift(event.at)
        sim.schedule_at(at, _NodeAction(sim, event.node, "crash"))
        if event.duration is not None:
            sim.schedule_at(
                at + event.duration, _NodeAction(sim, event.node, "reboot")
            )

    def _apply_interface_flap(self, sim, event: InterfaceFlap) -> None:
        at = self._shift(event.at)
        sim.schedule_at(
            at, _NodeAction(sim, event.node, "disable_medium", event.medium)
        )
        sim.schedule_at(
            at + event.duration,
            _NodeAction(sim, event.node, "enable_medium", event.medium),
        )

    def _apply_module_crash(self, kalis_by_id, event: ModuleCrash) -> None:
        if event.kalis not in kalis_by_id:
            raise ValueError(
                f"{event.describe()}: no Kalis node {event.kalis} in plan targets"
            )
        module = kalis_by_id[event.kalis].manager.module(event.module)
        key = f"{event.kalis.value}/{event.module}"
        self.injectors[key] = _ModuleCrashInjector(module, event)

    def describe(self) -> str:
        """One line per event, in declaration order."""
        lines = [f"FaultPlan(seed={self.seed}, jitter={self.jitter})"]
        lines.extend(f"  - {event.describe()}" for event in self.events)
        return "\n".join(lines)
