"""Fault injection: declarative, seeded chaos for the simulation."""

from repro.faults.plan import (
    FaultPlan,
    InjectedModuleCrash,
    InterfaceFlap,
    LinkOutage,
    ModuleCrash,
    NodeCrash,
    ProcessKill,
    ProcessKilled,
)

__all__ = [
    "FaultPlan",
    "InjectedModuleCrash",
    "InterfaceFlap",
    "LinkOutage",
    "ModuleCrash",
    "NodeCrash",
    "ProcessKill",
    "ProcessKilled",
]
