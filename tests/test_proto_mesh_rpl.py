"""Tests for ZigBee mesh forwarding and RPL DODAG formation."""


from repro.proto.mesh import ZigbeeMeshNode, compute_mesh_routes
from repro.proto.rpl import RplNode
from repro.net.packets.rpl import INFINITE_RANK, RANK_INCREASE, ROOT_RANK
from repro.sim.engine import Simulator
from repro.sim.topology import line_positions
from repro.util.ids import NodeId, make_node_id


def build_mesh_chain(sim, count=4, spacing=25.0):
    placements = {
        make_node_id("z", i): p for i, p in enumerate(line_positions(count, spacing))
    }
    tables = compute_mesh_routes(placements, radio_range=30.0)
    nodes = []
    for node_id, position in sorted(placements.items()):
        node = ZigbeeMeshNode(node_id, position)
        node.set_routes(tables[node_id])
        sim.add_node(node)
        nodes.append(node)
    return nodes


class TestMeshRoutes:
    def test_next_hops_follow_shortest_paths(self):
        placements = {
            make_node_id("z", i): p for i, p in enumerate(line_positions(4, 25.0))
        }
        tables = compute_mesh_routes(placements, radio_range=30.0)
        z0, z1, z3 = make_node_id("z", 0), make_node_id("z", 1), make_node_id("z", 3)
        assert tables[z0][z3] == z1
        assert tables[z0][z1] == z1

    def test_disconnected_destinations_missing(self):
        placements = {
            NodeId("a"): (0.0, 0.0),
            NodeId("b"): (500.0, 0.0),
        }
        tables = compute_mesh_routes(placements, radio_range=30.0)
        assert NodeId("b") not in tables[NodeId("a")]


class TestMeshForwarding:
    def test_end_to_end_delivery_over_multiple_hops(self):
        sim = Simulator(seed=8)
        nodes = build_mesh_chain(sim)
        sim.run_until(0.01)
        assert nodes[0].send_app(nodes[-1].node_id, data_length=10)
        sim.run(2.0)
        assert len(nodes[-1].delivered) == 1
        origin, _seq, _t = nodes[-1].delivered[0]
        assert origin == nodes[0].node_id

    def test_intermediate_nodes_forward(self):
        sim = Simulator(seed=8)
        nodes = build_mesh_chain(sim)
        sim.run_until(0.01)
        nodes[0].send_app(nodes[-1].node_id)
        sim.run(2.0)
        assert nodes[1].forwarded_count == 1
        assert nodes[2].forwarded_count == 1

    def test_unroutable_destination_returns_false(self):
        sim = Simulator(seed=8)
        node = ZigbeeMeshNode(NodeId("solo"), (0.0, 0.0))
        sim.add_node(node)
        sim.run_until(0.01)
        assert not node.send_app(NodeId("nowhere"))

    def test_link_status_chatter_emitted(self):
        sim = Simulator(seed=8)
        node_a = ZigbeeMeshNode(NodeId("a"), (0.0, 0.0), link_status_interval=5.0)
        node_b = ZigbeeMeshNode(NodeId("b"), (10.0, 0.0))
        sim.add_node(node_a)
        sim.add_node(node_b)
        sim.run(20.0)
        assert node_a.sent_count >= 3


class TestRpl:
    @staticmethod
    def _dodag(sim, count=4, spacing=25.0):
        positions = line_positions(count, spacing)
        nodes = [
            RplNode(
                make_node_id("r", i), positions[i],
                is_root=(i == 0), dio_interval=5.0,
                data_interval=None if i == 0 else 4.0,
            )
            for i in range(count)
        ]
        for node in nodes:
            sim.add_node(node)
        return nodes

    def test_ranks_form_gradient(self):
        sim = Simulator(seed=9)
        nodes = self._dodag(sim)
        sim.run(60.0)
        ranks = [n.rank for n in nodes]
        assert ranks[0] == ROOT_RANK
        for nearer, farther in zip(ranks, ranks[1:]):
            assert farther == nearer + RANK_INCREASE

    def test_parents_point_toward_root(self):
        sim = Simulator(seed=9)
        nodes = self._dodag(sim)
        sim.run(60.0)
        assert nodes[1].parent == nodes[0].node_id
        assert nodes[2].parent == nodes[1].node_id

    def test_data_collected_at_root(self):
        sim = Simulator(seed=9)
        nodes = self._dodag(sim)
        sim.run(60.0)
        origins = {origin for origin, _ in nodes[0].collected}
        assert nodes[1].node_id in origins
        assert nodes[-1].node_id in origins  # multi-hop delivery

    def test_unjoined_node_stays_infinite(self):
        sim = Simulator(seed=9)
        lonely = RplNode(NodeId("lonely"), (0.0, 0.0))
        sim.add_node(lonely)
        sim.run(30.0)
        assert lonely.rank == INFINITE_RANK
        assert lonely.parent is None
