"""Tests for repro.obs: metrics, spans, flight recorder, export,
report — plus the end-to-end determinism contract on a real pipeline.

The layer's two load-bearing promises (DESIGN.md §8):

- enabling telemetry never changes detection behaviour (alert logs are
  byte-identical with and without it);
- two same-seed runs produce byte-identical exports once every
  ``"wall"`` key is stripped (``canonical_lines`` is the oracle).
"""

import json

import pytest

from repro.core.kalis import KalisNode
from repro.eventbus.bus import DEADLETTER_TOPIC
from repro.experiments import icmp_flood_scenario
from repro.obs import (
    ExportFormatError,
    FlightRecorder,
    MetricsRegistry,
    Telemetry,
    canonical_lines,
    export_jsonl,
    load_export,
    load_export_with_stats,
    read_jsonl,
    render_report,
    report_data,
    strip_wall,
)
from repro.util.clock import ManualClock
from repro.util.ids import NodeId


class TestMetrics:
    def test_counter_inc_and_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("packets_total")
        counter.inc(medium="wifi")
        counter.inc(3, medium="wifi")
        counter.inc(medium="zigbee")
        assert counter.value(medium="wifi") == 4
        assert counter.value(medium="zigbee") == 1
        assert counter.total() == 5

    def test_registry_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")

    def test_gauge_overwrites(self):
        gauge = MetricsRegistry().gauge("window_size")
        gauge.set(10, node="a")
        gauge.set(25, node="a")
        assert gauge.value(node="a") == 25
        assert gauge.value(node="missing") is None

    def test_histogram_buckets_and_sum(self):
        histogram = MetricsRegistry().histogram("latency_us")
        for value in (5, 60, 60, 9000):
            histogram.observe(value, module="m")
        assert histogram.count(module="m") == 4
        assert histogram.sum_of(module="m") == pytest.approx(9125)

    def test_snapshot_sorted_and_json_clean(self):
        registry = MetricsRegistry()
        registry.counter("zzz").inc()
        registry.counter("aaa").inc(node="b")
        registry.counter("aaa").inc(node="a")
        snapshot = registry.snapshot()
        names = [record["name"] for record in snapshot]
        assert names == sorted(names)
        labels = [r["labels"] for r in snapshot if r["name"] == "aaa"]
        assert labels == [{"node": "a"}, {"node": "b"}]
        json.dumps(snapshot)  # must be directly serializable

    def test_wall_histogram_hides_timings_under_wall_key(self):
        registry = MetricsRegistry()
        registry.histogram("handle_wall_us", wall=True).observe(123.4, module="m")
        [record] = registry.snapshot()
        assert record["count"] == 1  # deterministic part stays visible
        assert "sum" in record["wall"] and "buckets" in record["wall"]
        stripped = strip_wall(record)
        assert "wall" not in stripped and stripped["count"] == 1

    def test_prometheus_text_renders(self):
        registry = MetricsRegistry()
        registry.counter("bus_published_total").inc(topic="alert")
        text = registry.prometheus_text()
        assert 'bus_published_total{topic="alert"} 1' in text


class TestSpans:
    def test_nesting_gives_parentage_and_shared_trace(self):
        telemetry = Telemetry()
        with telemetry.span("outer", node="n1") as outer:
            with telemetry.span("inner") as inner:
                assert telemetry.current_span() is inner
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id
        assert inner.node == "n1"  # inherited from the enclosing span
        assert telemetry.current_span() is None

    def test_explicit_trace_id_crosses_scheduling_gaps(self):
        telemetry = Telemetry()
        trace = telemetry.new_trace()
        with telemetry.span("deliver", trace_id=trace) as span:
            pass
        assert span.trace_id == trace

    def test_sim_time_from_bound_clock(self):
        telemetry = Telemetry()
        clock = ManualClock()
        telemetry.bind_clock(clock)
        clock.advance_to(42.0)
        with telemetry.span("work") as span:
            pass
        assert span.t == 42.0
        # First bind wins: a second clock must not change time sourcing.
        telemetry.bind_clock(ManualClock())
        assert telemetry.now == 42.0

    def test_wall_duration_measured_but_quarantined(self):
        telemetry = Telemetry()
        with telemetry.span("work") as span:
            pass
        assert span.wall_us is not None and span.wall_us >= 0
        data = span.to_dict()
        assert data["wall"]["us"] == round(span.wall_us, 3)
        assert "wall" not in strip_wall(data)

    def test_finished_spans_land_in_the_node_ring(self):
        telemetry = Telemetry()
        with telemetry.span("work", node="n1"):
            pass
        [entry] = telemetry.recorder.ring("n1")
        assert entry["name"] == "work"
        assert telemetry.spans_finished == 1

    def test_event_tags_enclosing_span(self):
        telemetry = Telemetry()
        with telemetry.span("outer", node="n1") as outer:
            entry = telemetry.event("alert.raised", attack="flood")
        assert entry["trace"] == outer.trace_id
        assert entry["span"] == outer.span_id
        assert entry["node"] == "n1"
        assert entry["attrs"] == {"attack": "flood"}


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(10):
            recorder.record("n1", {"i": i})
        assert [e["i"] for e in recorder.ring("n1")] == [7, 8, 9]
        assert recorder.entries_recorded == 10

    def test_dump_budget_suppresses_storms(self):
        recorder = FlightRecorder(capacity=4, max_dumps=2)
        recorder.record("n1", {"i": 0})
        assert recorder.dump("r1", sim_time=1.0) is not None
        assert recorder.dump("r2", sim_time=2.0) is not None
        assert recorder.dump("r3", sim_time=3.0) is None
        assert len(recorder.dumps) == 2
        assert recorder.dumps_suppressed == 1

    def test_dump_scoped_to_one_node(self):
        recorder = FlightRecorder()
        recorder.record("n1", {"i": 1})
        recorder.record("n2", {"i": 2})
        dump = recorder.dump("reason", sim_time=0.0, node="n1")
        assert list(dump["rings"]) == ["n1"]


class TestExport:
    def _small_telemetry(self):
        telemetry = Telemetry()
        telemetry.metrics.counter("captures_total").inc(5, medium="wifi")
        with telemetry.span("work", node="n1"):
            telemetry.event("thing", detail="x")
        telemetry.flight_dump("bus.deadletter", node="n1", topic="alert")
        return telemetry

    def test_jsonl_roundtrip_meta_first(self, tmp_path):
        path = export_jsonl(self._small_telemetry(), tmp_path / "t.jsonl")
        records = load_export(path)
        assert records[0]["type"] == "meta"
        assert records[0]["spans_finished"] == 1
        types = {record["type"] for record in records}
        assert types == {"meta", "metric", "flight-dump", "ring"}

    def test_gzip_roundtrip(self, tmp_path):
        telemetry = self._small_telemetry()
        plain = export_jsonl(telemetry, tmp_path / "t.jsonl")
        gzipped = export_jsonl(telemetry, tmp_path / "t.jsonl.gz")
        assert gzipped.read_bytes()[:2] == b"\x1f\x8b"  # actually gzipped
        assert load_export(gzipped) == load_export(plain)
        assert canonical_lines(gzipped) == canonical_lines(plain)

    def test_canonical_lines_drop_every_wall_key(self, tmp_path):
        path = export_jsonl(self._small_telemetry(), tmp_path / "t.jsonl")
        assert not any('"wall"' in line for line in canonical_lines(path))

    def test_load_rejects_non_exports(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"metric"}\n')
        with pytest.raises(ValueError, match="missing meta line"):
            load_export(path)
        # A lone malformed line is a tolerated in-flight tail, so the
        # failure is the absent meta line, not a parse error.
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="missing meta line"):
            load_export(path)

    def test_malformed_interior_line_raises_with_context(self, tmp_path):
        path = export_jsonl(self._small_telemetry(), tmp_path / "bad.jsonl")
        lines = path.read_text().splitlines()
        lines[1] = "{broken"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ExportFormatError, match=r"bad\.jsonl:2"):
            load_export(path)

    def test_trailing_partial_line_tolerated_and_counted(self, tmp_path):
        path = export_jsonl(self._small_telemetry(), tmp_path / "t.jsonl")
        whole = load_export(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type":"metric","v":2,"na')  # mid-write tail
        records, skipped = load_export_with_stats(path)
        assert skipped == 1
        assert records == whole

    def test_record_missing_version_field_raises(self, tmp_path):
        path = export_jsonl(self._small_telemetry(), tmp_path / "t.jsonl")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type":"metric","name":"x"}\n')
        with pytest.raises(ExportFormatError) as excinfo:
            load_export(path)
        assert 'missing the "v" version field' in str(excinfo.value)
        assert excinfo.value.line > 1

    def test_v1_exports_still_load(self, tmp_path):
        path = tmp_path / "v1.jsonl"
        path.write_text(
            '{"type":"meta","version":1,"sim_end":0.0,"spans_finished":0,'
            '"events_recorded":0,"dumps":0,"dumps_suppressed":0}\n'
            '{"type":"metric","name":"x","kind":"counter","series":[]}\n'
        )
        records = load_export(path)
        assert len(records) == 2  # v1 records carry no "v"; accepted

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "v99.jsonl"
        path.write_text('{"type":"meta","v":99}\n')
        with pytest.raises(ExportFormatError, match="unsupported export version"):
            load_export(path)


@pytest.fixture(scope="module")
def flood_built():
    return icmp_flood_scenario.build(seed=7, symptom_instances=3)


def _replay(built, telemetry=None):
    node = KalisNode(NodeId("kalis-1"), telemetry=telemetry)
    node.replay_trace(built.trace)
    return node


class TestPipelineTelemetry:
    def test_counters_track_the_replay(self, flood_built):
        telemetry = Telemetry()
        node = _replay(flood_built, telemetry)
        metrics = telemetry.metrics
        assert metrics.counter("captures_total").total() == len(flood_built.trace)
        assert metrics.counter("module_invocations_total").total() > 0
        assert metrics.counter("datastore_added_total").total() > 0
        assert metrics.counter("alerts_total").total() == len(node.alerts.alerts) > 0

    def test_alert_log_invariant_under_telemetry(self, flood_built):
        with_telemetry = _replay(flood_built, Telemetry())
        without = _replay(flood_built)
        as_tuples = lambda node: [  # noqa: E731 - local shorthand
            (a.timestamp, a.attack, a.detected_by) for a in node.alerts.alerts
        ]
        assert as_tuples(with_telemetry) == as_tuples(without)

    def test_same_input_exports_are_canonically_identical(
        self, flood_built, tmp_path
    ):
        paths = []
        for i in range(2):
            telemetry = Telemetry()
            _replay(flood_built, telemetry)
            paths.append(export_jsonl(telemetry, tmp_path / f"run{i}.jsonl"))
        assert canonical_lines(paths[0]) == canonical_lines(paths[1])

    def test_deadletter_triggers_flight_dump(self):
        telemetry = Telemetry()
        node = KalisNode(NodeId("kalis-1"), telemetry=telemetry)

        def failing_handler(event):
            raise RuntimeError("boom")

        node.bus.subscribe("some.topic", failing_handler)
        node.bus.publish("some.topic", payload=None)
        [dump] = telemetry.recorder.dumps
        assert dump["reason"] == "bus.deadletter"
        assert dump["attrs"]["topic"] == "some.topic"
        assert dump["attrs"]["error"] == "RuntimeError"
        assert telemetry.metrics.counter("bus_deadletters_total").total() == 1

    def test_quarantine_triggers_flight_dump(self):
        telemetry = Telemetry()
        node = KalisNode(NodeId("kalis-1"), telemetry=telemetry)
        supervisor = node.manager.supervisor
        for _ in range(supervisor.failure_threshold):
            supervisor.record_failure(
                "TrafficStatsModule", "handle", RuntimeError("crash")
            )
        assert any(
            dump["reason"] == "module.quarantine"
            and dump["attrs"]["module"] == "TrafficStatsModule"
            for dump in telemetry.recorder.dumps
        )
        transitions = telemetry.metrics.counter("supervisor_transitions_total")
        assert transitions.total() >= 1


class TestReport:
    def test_report_names_the_failures(self, flood_built, tmp_path):
        telemetry = Telemetry()
        node = _replay(flood_built, telemetry)

        def failing_handler(event):
            raise RuntimeError("boom")

        node.bus.subscribe("dashboard.feed", failing_handler)
        node.bus.publish("dashboard.feed", payload=None)

        path = export_jsonl(telemetry, tmp_path / "t.jsonl")
        report = render_report(path)
        assert "IcmpFloodModule" in report  # hottest-modules table
        assert "dashboard.feed" in report  # noisiest-topics table
        assert "bus.deadletter" in report  # flight-dump section

    def test_report_rejects_missing_file(self, tmp_path):
        with pytest.raises((OSError, ValueError)):
            render_report(tmp_path / "absent.jsonl")

    def test_report_data_is_json_safe_and_matches_text(
        self, flood_built, tmp_path
    ):
        telemetry = Telemetry()
        _replay(flood_built, telemetry)
        path = export_jsonl(telemetry, tmp_path / "t.jsonl")
        data = report_data(path, top=5)
        json.dumps(data)  # machine-readable: must serialize as-is
        assert data["meta"]["version"] == 2
        assert data["partial_lines_skipped"] == 0
        assert data["modules"], "hot-module table should not be empty"
        text = render_report(path, top=5)
        for row in data["modules"]:
            assert row["module"] in text

    def test_read_jsonl_strict_mode_raises_on_tail(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"a":1}\n{"b"')
        records, skipped = read_jsonl(path, tolerate_partial=True)
        assert [record for _, record in records] == [{"a": 1}]
        assert skipped == 1
        with pytest.raises(ExportFormatError, match=r"t\.jsonl:2"):
            read_jsonl(path, tolerate_partial=False)


class TestExportStrictMode:
    """Format-contract violations must fail loudly, with file:line."""

    def _export(self, tmp_path, name="t.jsonl"):
        telemetry = Telemetry()
        telemetry.metrics.counter("packets_total").inc()
        return export_jsonl(telemetry, tmp_path / name)

    def test_truncated_gzip_raises_with_context(self, tmp_path):
        path = self._export(tmp_path, "export.jsonl.gz")
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 7])
        with pytest.raises(ExportFormatError) as excinfo:
            load_export_with_stats(path)
        assert "truncated or corrupt stream" in str(excinfo.value)
        assert excinfo.value.path == str(path)
        assert excinfo.value.line == 0

    def test_missing_file_is_not_a_format_error(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_export_with_stats(tmp_path / "absent.jsonl")

    def test_v1_export_loads_without_per_record_version(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        lines = [
            {"type": "meta", "version": 1, "sim_end": 0.0},
            {"type": "counter", "name": "packets_total", "value": 3},
        ]
        path.write_text(
            "".join(json.dumps(line) + "\n" for line in lines),
            encoding="utf-8",
        )
        records, skipped = load_export_with_stats(path)
        assert skipped == 0
        assert records[1]["name"] == "packets_total"

    def test_mixed_version_record_raises_at_its_line(self, tmp_path):
        path = self._export(tmp_path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"type":"counter","name":"rogue","value":1}\n')
        line_count = len(path.read_text(encoding="utf-8").splitlines())
        with pytest.raises(ExportFormatError) as excinfo:
            load_export_with_stats(path)
        assert excinfo.value.line == line_count
        assert 'missing the "v" version field' in excinfo.value.reason

    def test_future_version_is_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"type":"meta","v":99}\n', encoding="utf-8")
        with pytest.raises(ExportFormatError, match="unsupported export version"):
            load_export_with_stats(path)
