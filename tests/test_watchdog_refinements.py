"""Tests for the watchdog's second-order defences: late root claims,
jamming-aware evidence handling, and origin-range gating."""

import pytest

from repro.core.datastore import DataStore
from repro.core.knowledge import KnowledgeBase
from repro.core.modules.base import ModuleContext
from repro.core.modules.detection.data_alteration import DataAlterationModule
from repro.core.modules.detection.forwarding import (
    ForwardingMisbehaviorModule,
    _binomial_tail,
)
from repro.eventbus.bus import EventBus
from repro.util.ids import NodeId
from tests.conftest import ctp_beacon_capture, ctp_data_capture

SRC, FWD, ROOT, LIAR = (
    NodeId("src"), NodeId("fwd"), NodeId("root"), NodeId("liar"),
)


def bind(module):
    bus = EventBus()
    kb = KnowledgeBase(NodeId("kalis-1"), bus)
    alerts = []
    bus.subscribe("alert", lambda e: alerts.append(e.payload))
    module.bind(ModuleContext(kb=kb, datastore=DataStore(), bus=bus,
                              node_id=NodeId("kalis-1")))
    module.active = True
    return kb, alerts


class TestLateRootClaim:
    def test_late_etx0_claimant_gets_no_exemption(self):
        """A node that starts claiming ETX 0 into an established tree
        is a sinkhole; the watchdog must keep judging its forwarding."""
        module = ForwardingMisbehaviorModule(
            params={"detectionThresh": 3, "rootWindow": 15.0}
        )
        _, alerts = bind(module)
        # The honest root is learned inside the window.
        module.handle(ctp_beacon_capture(ROOT, parent=ROOT, etx=0, timestamp=0.5))
        module.handle(ctp_beacon_capture(FWD, parent=ROOT, etx=1, timestamp=1.0))
        module.handle(ctp_beacon_capture(FWD, parent=ROOT, etx=1, timestamp=2.0))
        # Past the window, the liar begins its root claim...
        for i in range(3):
            module.handle(ctp_beacon_capture(LIAR, parent=LIAR, etx=0,
                                             timestamp=20.0 + i))
        # ...and then swallows traffic addressed to it.
        for i in range(5):
            timestamp = 25.0 + i * 2.0
            module.handle(ctp_data_capture(SRC, LIAR, origin=SRC, seqno=i,
                                           timestamp=timestamp))
            module.handle(ctp_beacon_capture(ROOT, parent=ROOT, etx=0,
                                             timestamp=timestamp + 1.5))
        assert any(
            alert.attack == "blackhole" and alert.suspects == (LIAR,)
            for alert in alerts
        )

    def test_early_root_claimant_stays_exempt(self):
        module = ForwardingMisbehaviorModule(params={"detectionThresh": 2})
        _, alerts = bind(module)
        module.handle(ctp_beacon_capture(ROOT, parent=ROOT, etx=0, timestamp=0.5))
        module.handle(ctp_beacon_capture(FWD, parent=ROOT, etx=1, timestamp=1.0))
        for i in range(6):
            timestamp = 20.0 + i * 2.0
            module.handle(ctp_data_capture(FWD, ROOT, origin=SRC, seqno=i,
                                           timestamp=timestamp, thl=1))
            module.handle(ctp_beacon_capture(ROOT, parent=ROOT, etx=0,
                                             timestamp=timestamp + 1.5))
        assert alerts == []


class TestChannelDegradedGating:
    def test_watchdog_suspends_while_degraded(self):
        module = ForwardingMisbehaviorModule(params={"detectionThresh": 2})
        kb, alerts = bind(module)
        module.handle(ctp_beacon_capture(ROOT, parent=ROOT, etx=0, timestamp=0.5))
        module.handle(ctp_beacon_capture(FWD, parent=ROOT, etx=1, timestamp=1.0))
        module.handle(ctp_beacon_capture(FWD, parent=ROOT, etx=1, timestamp=1.5))
        kb.put("ChannelDegraded", True)
        # Under jamming, ingress is heard but retransmissions vanish.
        for i in range(6):
            timestamp = 5.0 + i * 2.0
            module.handle(ctp_data_capture(SRC, FWD, origin=SRC, seqno=i,
                                           timestamp=timestamp))
            module.handle(ctp_beacon_capture(ROOT, parent=ROOT, etx=0,
                                             timestamp=timestamp + 1.5))
        assert alerts == []

    def test_watchdog_resumes_after_recovery(self):
        module = ForwardingMisbehaviorModule(params={"detectionThresh": 3})
        kb, alerts = bind(module)
        module.handle(ctp_beacon_capture(ROOT, parent=ROOT, etx=0, timestamp=0.5))
        module.handle(ctp_beacon_capture(FWD, parent=ROOT, etx=1, timestamp=1.0))
        module.handle(ctp_beacon_capture(FWD, parent=ROOT, etx=1, timestamp=1.5))
        kb.put("ChannelDegraded", True)
        module.handle(ctp_data_capture(SRC, FWD, origin=SRC, seqno=0,
                                       timestamp=5.0))
        kb.put("ChannelDegraded", False)
        for i in range(1, 7):
            timestamp = 30.0 + i * 2.0
            module.handle(ctp_data_capture(SRC, FWD, origin=SRC, seqno=i,
                                           timestamp=timestamp))
            module.handle(ctp_beacon_capture(ROOT, parent=ROOT, etx=0,
                                             timestamp=timestamp + 1.5))
        assert any(alert.suspects == (FWD,) for alert in alerts)

    def test_alteration_module_suspends_while_degraded(self):
        module = DataAlterationModule(params={"detectionThresh": 2})
        kb, alerts = bind(module)
        kb.put("ChannelDegraded", True)
        for i in range(6):
            timestamp = i * 2.0
            module.handle(ctp_data_capture(FWD, ROOT, origin=SRC,
                                           seqno=i + 7777,
                                           timestamp=timestamp, thl=1))
        assert alerts == []


class TestOriginRangeGating:
    def test_unheard_origin_means_no_judgement(self):
        """Relays of a flow whose origin the sniffer never hears cannot
        be called fabrications — the ingress leg may be out of range."""
        module = DataAlterationModule(params={"detectionThresh": 2})
        _, alerts = bind(module)
        for i in range(6):
            # FWD relays frames from an origin we never once heard.
            module.handle(ctp_data_capture(FWD, ROOT, origin=SRC, seqno=i,
                                           timestamp=i * 2.0, thl=1))
        assert alerts == []

    def test_weakly_heard_origin_means_no_judgement(self):
        module = DataAlterationModule(
            params={"detectionThresh": 2, "monitorRssi": -82.0}
        )
        _, alerts = bind(module)
        for i in range(6):
            timestamp = i * 2.0
            # The origin transmits, but at the edge of sensitivity.
            module.handle(ctp_data_capture(SRC, FWD, origin=SRC, seqno=i,
                                           timestamp=timestamp, rssi=-89.0))
            module.handle(ctp_data_capture(FWD, ROOT, origin=SRC,
                                           seqno=i + 7777,
                                           timestamp=timestamp + 0.2,
                                           thl=1, rssi=-60.0))
        assert alerts == []


class TestBinomialTail:
    def test_degenerate_cases(self):
        assert _binomial_tail(10, 0, 0.5) == 1.0
        assert _binomial_tail(10, 11, 0.5) == 0.0
        assert _binomial_tail(0, 0, 0.5) == 1.0

    def test_known_value(self):
        # P[X >= 2 | n=2, p=0.5] = 0.25
        assert _binomial_tail(2, 2, 0.5) == pytest.approx(0.25)

    def test_monotone_in_k(self):
        tails = [_binomial_tail(20, k, 0.3) for k in range(21)]
        assert tails == sorted(tails, reverse=True)
