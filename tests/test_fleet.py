"""Tests for repro.fleet: sharding, workers, and merge determinism.

The tentpole invariants (DESIGN.md §10):

- the merged canonical log is **byte-identical** across worker counts
  (1 vs 2 vs 4) for the same fleet seed — scheduling never leaks in;
- a worker killed mid-site and resumed from its shard checkpoint
  converges to the identical merged log (exactly-once output from
  at-least-once delivery);
- site specs are a pure function of the fleet seed, order-independent
  under sharding.

Fleet runs here are deliberately tiny (a few sites, 2 attack bursts);
the scale claims live in benchmarks/test_bench_fleet.py.
"""

import json

import pytest

from repro.fleet import (
    FleetConfig,
    ShardProgress,
    ShardRunner,
    SiteSpec,
    WorkerOptions,
    build_site,
    completion_events,
    run_fleet,
    shard_specs,
    site_specs,
    stream_path,
)
from repro.fleet.sites import alert_events
from repro.siem import SiemAggregator

SITES = 5
INSTANCES = 2
SEED = 16


def tiny_config(out_dir, workers=1, **overrides):
    return FleetConfig(
        sites=SITES,
        workers=workers,
        fleet_seed=SEED,
        out_dir=str(out_dir),
        symptom_instances=INSTANCES,
        k_sites=2,
        **overrides,
    )


class TestSites:
    def test_specs_are_pure_function_of_seed(self):
        first = site_specs(SEED, 30)
        again = site_specs(SEED, 30)
        other = site_specs(SEED + 1, 30)
        assert first == again
        assert first != other

    def test_specs_are_prefix_stable(self):
        # Growing the fleet must not re-profile existing sites.
        assert site_specs(SEED, 10) == site_specs(SEED, 30)[:10]

    def test_profiles_cover_all_three(self):
        profiles = {spec.profile for spec in site_specs(SEED, 40)}
        assert profiles == {"quiet", "attacked", "noisy"}

    def test_quiet_site_emits_no_alerts(self):
        spec = next(
            spec for spec in site_specs(SEED, 40) if spec.profile == "quiet"
        )
        deployment = build_site(spec)
        deployment.run_to(deployment.end_time)
        assert alert_events(spec, deployment) == []
        done = completion_events(spec, deployment)[-1]
        assert done["kind"] == "site-done"
        assert done["body"]["packets"] > 0  # background chatter still flows

    def test_attacked_site_emits_alerts_with_stable_seqs(self):
        spec = next(
            spec for spec in site_specs(SEED, 10) if spec.profile == "attacked"
        )
        deployment = build_site(spec)
        deployment.run_to(deployment.end_time)
        events = alert_events(spec, deployment)
        assert events
        assert [event["seq"] for event in events] == list(range(len(events)))
        assert all(event["site"] == spec.site_id for event in events)

    def test_shard_deal_is_round_robin_and_complete(self):
        specs = site_specs(SEED, 7)
        shards = shard_specs(specs, 3)
        assert [len(shard) for shard in shards] == [3, 2, 2]
        dealt = [spec for shard in shards for spec in shard]
        assert sorted(dealt, key=lambda s: s.site_id) == specs


class TestShardRunner:
    def test_manifest_makes_rerun_a_noop(self, tmp_path):
        specs = site_specs(SEED, 2, symptom_instances=INSTANCES)
        agg = SiemAggregator(k_sites=2)
        emit = lambda rec: agg.ingest_batch(rec, record_latency=False)  # noqa: E731
        shard_dir = tmp_path / "w0"
        assert ShardRunner(0, specs, shard_dir, emit).run() == 2
        # second run: manifest says everything is done
        assert ShardRunner(0, specs, shard_dir, emit).run() == 0
        assert agg.sites_done == 2

    def test_manifest_roundtrip_is_atomic_shaped(self, tmp_path):
        progress = ShardProgress(done={"site-0000": {"packets": 5}})
        progress.save(tmp_path)
        assert ShardProgress.load(tmp_path).done == progress.done
        assert not list(tmp_path.glob("*.tmp"))

    def test_stream_file_carries_every_batch(self, tmp_path):
        specs = site_specs(SEED, 2, symptom_instances=INSTANCES)

        def run_with_stream(shard_dir):
            from repro.siem.events import batch_line

            shard_dir.mkdir(parents=True)
            with open(stream_path(shard_dir), "a", encoding="utf-8") as stream:
                def emit(record):
                    stream.write(batch_line(record) + "\n")
                ShardRunner(0, specs, shard_dir, emit).run()

        run_with_stream(tmp_path / "w0")
        agg = SiemAggregator(k_sites=2)
        assert agg.ingest_stream(stream_path(tmp_path / "w0"), worker=0) > 0
        assert agg.sites_done == 2


class TestMergeDeterminism:
    @pytest.fixture(scope="class")
    def baseline(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("fleet-w1")
        return run_fleet(tiny_config(out, workers=1))

    def test_worker_count_invariance(self, baseline, tmp_path):
        for workers in (2, 4):
            result = run_fleet(tiny_config(tmp_path / f"w{workers}", workers=workers))
            assert result.canonical_bytes == baseline.canonical_bytes, (
                f"{workers}-worker merge diverged from 1-worker baseline"
            )

    def test_kill_resume_converges(self, baseline, tmp_path):
        result = run_fleet(
            tiny_config(
                tmp_path / "killed",
                workers=2,
                kill={"worker": 0, "site_index": 1, "at": 20.0},
            )
        )
        assert result.respawns >= 1, "the drill should have killed worker 0"
        assert 3 in result.worker_exits  # KILL_EXIT_CODE observed
        assert result.canonical_bytes == baseline.canonical_bytes

    def test_report_claims_match_the_merge(self, baseline):
        summary = baseline.report["summary"]
        assert summary["sites_done"] == SITES
        assert summary["total_packets"] > 0
        assert baseline.report["noisy_sites"]
        assert baseline.canonical_path.is_file()
        assert baseline.merged_path.is_file()
        assert baseline.metrics_path.read_text().startswith("# ")

    def test_report_json_rerenders(self, baseline):
        from repro.siem import render_fleet_report

        persisted = json.loads(baseline.report_path.read_text())
        assert render_fleet_report(persisted) == render_fleet_report(
            baseline.report
        )


class TestFleetCli:
    def test_fleet_run_and_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fleet"
        assert main(
            [
                "fleet", "run", "--out", str(out),
                "--sites", "4", "--workers", "2",
                "--instances", "2", "--k-sites", "2",
            ]
        ) == 0
        text = capsys.readouterr().out
        assert "fleet report" in text
        assert "canonical log:" in text
        assert main(["fleet", "report", str(out / "report.json")]) == 0
        assert "fleet report" in capsys.readouterr().out
        assert main(
            ["fleet", "report", str(out / "report.json"), "--format", "json"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["v"] == 1

    def test_kill_flag_parsing(self):
        from repro.cli import _parse_kill

        assert _parse_kill("0:1:20.5") == {
            "worker": 0, "site_index": 1, "at": 20.5,
        }
        assert _parse_kill(None) is None
        with pytest.raises(SystemExit):
            _parse_kill("nope")


class TestObsJsonCli:
    def test_obs_report_format_json(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs import Telemetry, export_jsonl

        telemetry = Telemetry()
        telemetry.metrics.counter("captures_total").inc(3, medium="wifi")
        path = export_jsonl(telemetry, tmp_path / "t.jsonl")
        assert main(["obs", "report", str(path), "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["meta"]["version"] == 2
        assert data["partial_lines_skipped"] == 0
