"""Tests for commodity device traffic models and the WSN builder."""

import pytest

from repro.devices import (
    ArloCamera,
    AugustSmartLock,
    CloudService,
    DashButton,
    LifxBulb,
    NestThermostat,
    Smartphone,
    SmartLightingHub,
    ZigbeeLightBulb,
    build_wsn,
)
from repro.devices.mesh_wifi import MeshRelayStation
from repro.net.packets.base import Medium
from repro.proto.iphost import IpRouter, LanDirectory
from repro.sim.engine import Simulator
from repro.sim.node import SnifferNode
from repro.sim.topology import line_positions
from repro.util.ids import NodeId
from repro.util.rng import SeededRng


@pytest.fixture
def home():
    sim = Simulator(seed=51)
    lan, wan = LanDirectory(), LanDirectory()
    router = sim.add_node(IpRouter(NodeId("router"), (0.0, 0.0), lan, wan))
    cloud = sim.add_node(
        CloudService(NodeId("cloud"), (400.0, 0.0), wan, gateway=router.node_id)
    )
    return sim, lan, router, cloud


class TestCloudDevices:
    def test_thermostat_keepalives_complete(self, home):
        sim, lan, router, cloud = home
        nest = sim.add_node(
            NestThermostat(NodeId("nest"), (5.0, 0.0), lan, cloud.ip,
                           router.node_id, rng=SeededRng(1))
        )
        sim.run(120.0)
        assert nest.checkins_sent >= 3
        assert cloud.tcp.established_count == nest.checkins_sent
        assert nest.tcp.connection_count() == 0  # all closed cleanly

    def test_presence_event(self, home):
        sim, lan, router, cloud = home
        nest = sim.add_node(
            NestThermostat(NodeId("nest"), (5.0, 0.0), lan, cloud.ip,
                           router.node_id, rng=SeededRng(1))
        )
        sim.run(5.0)
        before = cloud.tcp.established_count
        nest.report_presence()
        sim.run(2.0)
        assert cloud.tcp.established_count == before + 1

    def test_camera_motion_uploads(self, home):
        sim, lan, router, cloud = home
        arlo = sim.add_node(
            ArloCamera(NodeId("arlo"), (5.0, 0.0), lan, cloud.ip,
                       router.node_id, rng=SeededRng(2))
        )
        sim.run(5.0)
        before = cloud.tcp.established_count
        arlo.motion_event()
        sim.run(2.0)
        # At least the three clip uploads (a keepalive may interleave).
        assert cloud.tcp.established_count >= before + 3
        assert arlo.motion_events == 1

    def test_bulb_lan_broadcasts(self, home):
        sim, lan, router, cloud = home
        bulb = sim.add_node(
            LifxBulb(NodeId("lifx"), (5.0, 0.0), lan, cloud.ip,
                     router.node_id, rng=SeededRng(3))
        )
        captures = []
        sniffer = sim.add_node(SnifferNode(NodeId("obs"), (4.0, 1.0)))
        sniffer.add_listener(captures.append)
        sim.run(20.0)
        from repro.net.packets.udp import UdpDatagram

        broadcasts = [
            c for c in captures
            if (udp := c.packet.find_layer(UdpDatagram)) is not None
            and udp.dport == 56700
        ]
        assert len(broadcasts) >= 3

    def test_dash_button_silent_until_pressed(self, home):
        sim, lan, router, cloud = home
        dash = sim.add_node(
            DashButton(NodeId("dash"), (5.0, 0.0), lan, cloud.ip,
                       router.node_id, rng=SeededRng(4))
        )
        sim.run(30.0)
        assert dash.sent_count == 0
        dash.press()
        sim.run(2.0)
        assert dash.presses == 1
        assert cloud.tcp.established_count == 1


class TestBleDevices:
    def test_lock_advertises(self):
        sim = Simulator(seed=52)
        lan = LanDirectory()
        lock = sim.add_node(
            AugustSmartLock(NodeId("lock"), (0.0, 0.0), lan, rng=SeededRng(5))
        )
        captures = []
        sniffer = sim.add_node(
            SnifferNode(NodeId("obs"), (2.0, 0.0), mediums=(Medium.BLUETOOTH,))
        )
        sniffer.add_listener(captures.append)
        sim.run(10.0)
        assert len(captures) >= 4
        assert all(c.medium is Medium.BLUETOOTH for c in captures)

    def test_phone_operates_lock(self):
        sim = Simulator(seed=52)
        lan = LanDirectory()
        lock = sim.add_node(
            AugustSmartLock(NodeId("lock"), (0.0, 0.0), lan, rng=SeededRng(5))
        )
        phone = sim.add_node(
            Smartphone(NodeId("phone"), (1.0, 0.0), lan, NodeId("router"),
                       rng=SeededRng(6))
        )
        sim.run(1.0)
        phone.ble_request(lock)
        sim.run(1.0)
        assert lock.operations == 1


class TestLightingSystem:
    def test_hub_commands_reach_bulbs(self, home):
        sim, lan, router, cloud = home
        hub = sim.add_node(
            SmartLightingHub(NodeId("hub"), (5.0, 5.0), lan, cloud.ip,
                             router.node_id, rng=SeededRng(7))
        )
        bulbs = []
        for index in range(2):
            bulb = sim.add_node(
                ZigbeeLightBulb(NodeId(f"bulb-{index}"), (6.0 + index, 5.0),
                                hub.node_id)
            )
            hub.register_bulb(bulb.node_id)
            bulbs.append(bulb)
        sim.run(1.0)
        hub.command_all()
        sim.run(1.0)
        for bulb in bulbs:
            assert bulb.commands_received == 1
            assert bulb.is_on

    def test_bulbs_report_status(self, home):
        sim, lan, router, cloud = home
        hub = sim.add_node(
            SmartLightingHub(NodeId("hub"), (5.0, 5.0), lan, cloud.ip,
                             router.node_id, rng=SeededRng(7))
        )
        bulb = sim.add_node(
            ZigbeeLightBulb(NodeId("bulb-0"), (6.0, 5.0), hub.node_id,
                            status_interval=10.0)
        )
        hub.register_bulb(bulb.node_id)
        sim.run(35.0)
        assert hub.status_reports.get(bulb.node_id, 0) >= 2

    def test_unknown_bulb_rejected(self, home):
        sim, lan, router, cloud = home
        hub = sim.add_node(
            SmartLightingHub(NodeId("hub"), (5.0, 5.0), lan, cloud.ip,
                             router.node_id, rng=SeededRng(7))
        )
        sim.run(0.1)
        with pytest.raises(ValueError):
            hub.command_bulb(NodeId("ghost"))


class TestWsnBuilder:
    def test_build_wsn_shapes(self):
        sim = Simulator(seed=53)
        base, motes = build_wsn(sim, line_positions(6, 25.0))
        assert base.is_root
        assert len(motes) == 5
        assert base.node_id == NodeId("mote-base")

    def test_base_station_index(self):
        sim = Simulator(seed=53)
        base, motes = build_wsn(sim, line_positions(3, 25.0), base_station_index=2)
        assert base.position == (50.0, 0.0)

    def test_validation(self):
        sim = Simulator(seed=53)
        with pytest.raises(ValueError):
            build_wsn(sim, [])
        with pytest.raises(ValueError):
            build_wsn(sim, line_positions(3, 25.0), base_station_index=5)


class TestMeshRelay:
    def test_relay_frames_are_four_address(self):
        sim = Simulator(seed=54)
        station = sim.add_node(
            MeshRelayStation(
                NodeId("ext"), (0.0, 0.0),
                relay_for=(NodeId("up"), NodeId("down")),
                relay_interval=2.0, rng=SeededRng(8),
            )
        )
        captures = []
        sniffer = sim.add_node(
            SnifferNode(NodeId("obs"), (3.0, 0.0), mediums=(Medium.WIFI,))
        )
        sniffer.add_listener(captures.append)
        sim.run(10.0)
        assert captures
        from repro.net.packets.wifi import WifiFrame

        for capture in captures:
            frame = capture.packet.find_layer(WifiFrame)
            assert frame.is_mesh_relayed
            assert frame.mesh_src == NodeId("up")
