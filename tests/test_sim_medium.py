"""Tests for the radio propagation model."""

import math

import numpy as np
import pytest

from repro.net.packets.base import Medium
from repro.sim.medium import DEFAULT_PARAMS, PathLossParams, RadioMedium
from repro.util.rng import SeededRng


class TestPathLossParams:
    def test_mean_rssi_decreases_with_distance(self):
        params = DEFAULT_PARAMS[Medium.IEEE_802_15_4]
        assert params.mean_rssi(10.0) > params.mean_rssi(20.0) > params.mean_rssi(40.0)

    def test_mean_rssi_formula(self):
        params = PathLossParams(
            tx_power_dbm=0.0, pl_d0_db=40.0, exponent=3.0, d0_m=1.0
        )
        expected = -40.0 - 30.0 * math.log10(10.0)
        assert params.mean_rssi(10.0) == pytest.approx(expected)

    def test_max_range_crosses_sensitivity(self):
        params = DEFAULT_PARAMS[Medium.IEEE_802_15_4]
        edge = params.max_range_m()
        assert params.mean_rssi(edge) == pytest.approx(params.sensitivity_dbm, abs=0.01)
        assert params.mean_rssi(edge * 1.1) < params.sensitivity_dbm

    def test_tiny_distances_clamped(self):
        params = DEFAULT_PARAMS[Medium.WIFI]
        assert params.mean_rssi(0.0) == params.mean_rssi(0.05)

    def test_sub_d0_clamps_to_d0_not_hardcoded_floor(self):
        """Regression: the clamp used to be a hardcoded 0.1 m, so with
        the default d0_m=1.0 a sub-metre receiver saw *negative* path
        loss — RSSI above transmit power."""
        params = PathLossParams(
            tx_power_dbm=0.0, pl_d0_db=40.0, exponent=3.0, d0_m=1.0
        )
        # At distance 0 the model clamps to d0: exactly the d0 path loss.
        assert params.mean_rssi(0.0) == params.mean_rssi(params.d0_m)
        assert params.mean_rssi(0.0) == pytest.approx(-40.0)
        # Everything at or inside d0 is flat; never above tx - pl_d0.
        for distance in (0.0, 0.05, 0.1, 0.5, 1.0):
            assert params.mean_rssi(distance) == pytest.approx(-40.0)
            assert params.mean_rssi(distance) <= params.tx_power_dbm

    def test_mean_rssi_block_matches_scalar_bitwise(self):
        params = DEFAULT_PARAMS[Medium.IEEE_802_15_4]
        distances = np.array([0.0, 0.3, 1.0, 2.5, 17.0, 63.2, 1e4])
        batch = params.mean_rssi_block(distances)
        for index, distance in enumerate(distances):
            assert batch[index] == params.mean_rssi(float(distance))

    def test_wifi_outranges_802154(self):
        wifi = DEFAULT_PARAMS[Medium.WIFI].max_range_m()
        wpan = DEFAULT_PARAMS[Medium.IEEE_802_15_4].max_range_m()
        assert wifi > wpan


class TestPairSampling:
    """Order-independent per-(sender, receiver, sequence) draws."""

    def test_same_key_same_rssi(self):
        medium = RadioMedium(Medium.IEEE_802_15_4, rng=SeededRng(4))
        first = medium.pair_rssi(20.0, medium.pair_sample("a", "b", 7))
        again = medium.pair_rssi(20.0, medium.pair_sample("a", "b", 7))
        assert first == again

    def test_distinct_keys_distinct_draws(self):
        medium = RadioMedium(Medium.IEEE_802_15_4, rng=SeededRng(4))
        values = {
            medium.pair_rssi(20.0, medium.pair_sample(s, r, q))
            for s, r, q in [("a", "b", 1), ("a", "b", 2), ("a", "c", 1), ("b", "a", 1)]
        }
        assert len(values) == 4

    def test_pair_rssi_clamped_to_cull_margin(self):
        from repro.sim.medium import SHADOWING_CULL_SIGMAS

        medium = RadioMedium(Medium.IEEE_802_15_4, rng=SeededRng(4))
        params = medium.params
        bound = SHADOWING_CULL_SIGMAS * params.shadowing_sigma_db
        for sequence in range(2000):
            rssi = medium.pair_rssi(20.0, medium.pair_sample("a", "b", sequence))
            assert abs(rssi - params.mean_rssi(20.0)) <= bound + 1e-9

    def test_pair_frame_lost_matches_probability(self):
        medium = RadioMedium(
            Medium.WIFI, rng=SeededRng(4), base_loss_probability=0.5
        )
        losses = sum(
            medium.pair_frame_lost(medium.pair_sample("a", "b", sequence))
            for sequence in range(500)
        )
        assert 150 < losses < 350

    def test_pair_certain_loss_and_zero_loss_skip_draws(self):
        medium = RadioMedium(Medium.WIFI, rng=SeededRng(4))
        draws = medium.pair_sample("a", "b", 1)
        assert not medium.pair_frame_lost(draws)  # loss == 0, no draw
        medium.set_interference(1.0)
        assert medium.pair_frame_lost(draws)  # loss >= 1, no draw
        # The full budget is still available afterwards.
        draws.normal()
        draws.uniform()
        draws.uniform()

    def test_cull_range_exceeds_mean_range(self):
        medium = RadioMedium(Medium.IEEE_802_15_4, rng=SeededRng(4))
        assert medium.cull_range_m() > medium.params.max_range_m()

    def test_pair_rssi_block_bit_identical_to_scalar(self):
        medium = RadioMedium(Medium.IEEE_802_15_4, rng=SeededRng(4))
        receivers = [f"r{index}" for index in range(64)]
        distances = np.linspace(0.0, 120.0, 64)
        block = medium.pair_sample_block("sender", 9, receivers)
        batch = medium.pair_rssi_block(distances, block)
        for index, receiver in enumerate(receivers):
            scalar = medium.pair_rssi(
                float(distances[index]), medium.pair_sample("sender", receiver, 9)
            )
            assert batch[index] == scalar

    def test_pair_frame_lost_block_bit_identical_to_scalar(self):
        medium = RadioMedium(
            Medium.WIFI, rng=SeededRng(4), base_loss_probability=0.4
        )
        receivers = [f"r{index}" for index in range(200)]
        block = medium.pair_sample_block("sender", 3, receivers)
        # Shadowing must be consumed first, as the engine does, so the
        # scalar draw offset lines up with the block's loss column.
        medium.pair_rssi_block(np.full(len(receivers), 25.0), block)
        lost = medium.pair_frame_lost_block(block)
        for index, receiver in enumerate(receivers):
            draws = medium.pair_sample("sender", receiver, 3)
            medium.pair_rssi(25.0, draws)
            assert bool(lost[index]) == medium.pair_frame_lost(draws)
        assert 0 < int(lost.sum()) < len(receivers)

    def test_pair_frame_lost_block_degenerate_branches(self):
        medium = RadioMedium(Medium.WIFI, rng=SeededRng(4))
        block = medium.pair_sample_block("s", 1, ["a", "b", "c"])
        assert not medium.pair_frame_lost_block(block).any()  # loss == 0
        medium.set_interference(1.0)
        assert medium.pair_frame_lost_block(block).all()  # certain drop

    def test_pair_frame_lost_block_zero_sigma_uses_first_word(self):
        """With sigma == 0 shadowing consumes nothing, so the loss
        uniform is draw word 0 — in both the scalar and block paths."""
        params = PathLossParams(shadowing_sigma_db=0.0)
        medium = RadioMedium(
            Medium.WIFI, params=params, rng=SeededRng(4),
            base_loss_probability=0.3,
        )
        receivers = [f"r{index}" for index in range(100)]
        block = medium.pair_sample_block("s", 5, receivers)
        rssi = medium.pair_rssi_block(np.full(len(receivers), 10.0), block)
        assert (rssi == params.mean_rssi(10.0)).all()
        lost = medium.pair_frame_lost_block(block)
        for index, receiver in enumerate(receivers):
            draws = medium.pair_sample("s", receiver, 5)
            assert medium.pair_rssi(10.0, draws) == params.mean_rssi(10.0)
            assert bool(lost[index]) == medium.pair_frame_lost(draws)


class TestRadioMedium:
    def test_shadowing_varies_samples(self):
        medium = RadioMedium(Medium.WIFI, rng=SeededRng(1))
        samples = {medium.rssi_at(20.0) for _ in range(10)}
        assert len(samples) > 1

    def test_zero_sigma_is_deterministic(self):
        params = PathLossParams(shadowing_sigma_db=0.0)
        medium = RadioMedium(Medium.WIFI, params=params, rng=SeededRng(1))
        assert medium.rssi_at(20.0) == medium.rssi_at(20.0)

    def test_receivable_threshold(self):
        medium = RadioMedium(Medium.IEEE_802_15_4, rng=SeededRng(1))
        assert medium.receivable(-89.9)
        assert not medium.receivable(-90.1)

    def test_no_loss_by_default(self):
        medium = RadioMedium(Medium.WIFI, rng=SeededRng(1))
        assert not any(medium.frame_lost() for _ in range(100))

    def test_base_loss_probability(self):
        medium = RadioMedium(
            Medium.WIFI, rng=SeededRng(1), base_loss_probability=0.5
        )
        losses = sum(medium.frame_lost() for _ in range(500))
        assert 150 < losses < 350

    def test_interference_injection(self):
        medium = RadioMedium(Medium.WIFI, rng=SeededRng(1))
        medium.set_interference(1.0)
        # A saturating jammer is a certain drop — no ~0.1% leak.
        assert all(medium.frame_lost() for _ in range(100))

    def test_certain_loss_consumes_no_draw(self):
        """loss >= 1.0 must not advance the RNG: draws made during a
        total blackout cannot perturb draws made after it."""
        def draws_after_blackout(blackout_frames):
            medium = RadioMedium(Medium.WIFI, rng=SeededRng(9),
                                 base_loss_probability=0.5)
            medium.set_interference(1.0)
            for _ in range(blackout_frames):
                assert medium.frame_lost()
            medium.set_interference(0.0)
            return [medium.frame_lost() for _ in range(50)]

        assert draws_after_blackout(0) == draws_after_blackout(137)

    def test_invalid_loss_rejected(self):
        with pytest.raises(ValueError):
            RadioMedium(Medium.WIFI, base_loss_probability=1.0)
        medium = RadioMedium(Medium.WIFI)
        with pytest.raises(ValueError):
            medium.set_interference(1.5)
