"""Tests for the Table I and Figure 3 taxonomies — including the
machine-check that Figure 3 matches the detection-module library."""

import pytest

from repro.core.modules.registry import module_class
from repro.taxonomy.by_feature import (
    ATTACKS,
    FEATURES,
    Applicability,
    applicability,
    attacks_impossible_given,
    feature_matrix,
    render_matrix,
)
from repro.taxonomy.by_target import (
    AttackPattern,
    EntityClass,
    attack_pattern,
    render_target_table,
    target_table,
)


class TestTableOne:
    def test_paper_cells(self):
        """Spot-check the exact cells printed in Table I."""
        assert (
            attack_pattern(EntityClass.INTERNET, EntityClass.INTERNET_SERVICE)
            is AttackPattern.DENIAL_OF_SERVICE
        )
        assert (
            attack_pattern(EntityClass.INTERNET, EntityClass.HUB)
            is AttackPattern.REMOTE_DENIAL_OF_THING
        )
        assert (
            attack_pattern(EntityClass.HUB, EntityClass.SUB)
            is AttackPattern.DENIAL_OF_THING
        )
        assert (
            attack_pattern(EntityClass.ROUTER, EntityClass.HUB)
            is AttackPattern.CONTROL_DENIAL_OF_THING
        )
        assert (
            attack_pattern(EntityClass.HUB, EntityClass.ROUTER)
            is AttackPattern.DENIAL_OF_ROUTING
        )

    def test_infeasible_pairs(self):
        """Subs lack the hardware to attack routers/Internet services."""
        assert attack_pattern(EntityClass.SUB, EntityClass.ROUTER) is None
        assert attack_pattern(EntityClass.SUB, EntityClass.INTERNET_SERVICE) is None
        assert attack_pattern(EntityClass.INTERNET, EntityClass.SUB) is None

    def test_unknown_pair_raises(self):
        with pytest.raises(KeyError):
            attack_pattern(EntityClass.INTERNET_SERVICE, EntityClass.SUB)

    def test_table_is_complete_4x4(self):
        assert len(target_table()) == 16

    def test_render(self):
        text = render_target_table()
        assert "Denial of Thing" in text
        assert "SOURCE" in text


class TestFigureThree:
    def test_matrix_is_complete(self):
        matrix = feature_matrix()
        assert len(matrix) == len(ATTACKS) * len(FEATURES)

    def test_paper_relationships(self):
        # "a selective forwarding attack cannot be carried out in a
        # single-hop network" (§III)
        assert applicability("selective_forwarding", "single_hop") is Applicability.IMPOSSIBLE
        # "the Smurf attack is not possible in single-hop networks" (§III-A1)
        assert applicability("smurf", "single_hop") is Applicability.IMPOSSIBLE
        # replication detection "is specific to a network with certain
        # characteristics, e.g. mobility" (§VI-B2): circles on both.
        assert applicability("replication", "static") is Applicability.TECHNIQUE_DEPENDS
        assert applicability("replication", "mobile") is Applicability.TECHNIQUE_DEPENDS
        # crypto "make[s] the latter immune to attacks such as data
        # alteration" (§III-B2)
        assert applicability("data_alteration", "integrity_protected") is Applicability.IMPOSSIBLE

    def test_attacks_impossible_given_single_hop(self):
        impossible = attacks_impossible_given("single_hop")
        assert "smurf" in impossible
        assert "selective_forwarding" in impossible
        assert "icmp_flood" not in impossible

    def test_unknown_cell_raises(self):
        with pytest.raises(KeyError):
            applicability("icmp_flood", "underwater")

    def test_render(self):
        text = render_matrix()
        assert "legend" in text
        for attack in ATTACKS:
            assert attack in text


from repro.taxonomy.modules_map import (
    MODULES_FOR_ATTACK,
    enabling_knowledge_base as _enabling_kb,
    feature_knowledge as _feature_knowledge,
)


class TestTaxonomyMatchesModuleLibrary:
    """Machine-check: the Figure 3 matrix and the module library agree."""

    @pytest.mark.parametrize("attack", sorted(MODULES_FOR_ATTACK))
    def test_every_attack_has_a_module(self, attack):
        for name in MODULES_FOR_ATTACK[attack]:
            assert attack in module_class(name).DETECTS

    @pytest.mark.parametrize(
        "attack,feature",
        [
            (attack, feature)
            for attack in ATTACKS
            for feature in FEATURES
            if applicability(attack, feature) is Applicability.IMPOSSIBLE
        ],
    )
    def test_impossible_cells_block_module_activation(self, attack, feature):
        """Setting the knowledge that makes the attack impossible must
        deactivate every module detecting it — the whole point of
        knowledge-driven activation."""
        kb = _enabling_kb(attack)
        label, value = _feature_knowledge(attack, feature)
        kb.put(label, value)
        for name in MODULES_FOR_ATTACK[attack]:
            module = module_class(name)()
            assert not module.required(kb), (
                f"{name} stayed required although {attack} is impossible "
                f"under {feature} ({label}={value})"
            )

    @pytest.mark.parametrize("attack", sorted(MODULES_FOR_ATTACK))
    def test_enabling_knowledge_activates_some_module(self, attack):
        kb = _enabling_kb(attack)
        assert any(
            module_class(name)().required(kb)
            for name in MODULES_FOR_ATTACK[attack]
        )

    def test_smurf_and_flood_are_mutually_exclusive(self):
        """The working-example pair: their requirements can never both
        hold, so Kalis never runs both (the traditional IDS always does)."""
        flood = module_class("IcmpFloodModule").REQUIREMENTS
        smurf = module_class("SmurfModule").REQUIREMENTS
        flood_req = {(r.label, r.equals) for r in flood}
        smurf_req = {(r.label, r.equals) for r in smurf}
        assert ("Multihop.wifi", False) in flood_req
        assert ("Multihop.wifi", True) in smurf_req

    def test_replication_modules_are_mutually_exclusive(self):
        static = module_class("ReplicationStaticModule").REQUIREMENTS
        mobile = module_class("ReplicationMobileModule").REQUIREMENTS
        assert ("Mobility", False) in {(r.label, r.equals) for r in static}
        assert ("Mobility", True) in {(r.label, r.equals) for r in mobile}

    def test_technique_depends_cells_have_multiple_modules(self):
        """A circle in Figure 3 means technique choice depends on the
        feature — which requires at least two modules or a feature-
        conditioned requirement."""
        assert len(MODULES_FOR_ATTACK["replication"]) == 2
