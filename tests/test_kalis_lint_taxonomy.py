"""Cross-check KL003's derived label flow against the Figure 3 taxonomy.

The static analyzer derives a producer/consumer map of knowgget labels
from the AST; the taxonomy package declares, at runtime, which modules
cover which attacks and which knowggets enable them.  These two views
were written independently — this module asserts they agree.
"""

from pathlib import Path

import pytest

from repro.analysis.project import Project
from repro.analysis.rules.labels import derive_label_flow
from repro.core.modules.registry import module_class
from repro.taxonomy.modules_map import (
    MODULES_FOR_ATTACK,
    feature_knowledge,
)

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def flow():
    """The statically-derived label flow over the real tree."""
    project = Project.load([ROOT / "src" / "repro"], root=ROOT)
    return derive_label_flow(project)


ALL_MODULES = sorted({m for ms in MODULES_FOR_ATTACK.values() for m in ms})

#: A-priori static knowggets: supplied by deployment config via
#: ``kb.put_static`` (paper §IV-B3), never written by a sensing module.
#: Mirrors the justified KL003 entries in ``kalis-lint.baseline``.
A_PRIORI_LABELS = frozenset({"IntegrityProtection"})


class TestRequirementLabelsMatchRuntime:
    @pytest.mark.parametrize("name", ALL_MODULES)
    def test_static_labels_equal_runtime_requirements(self, flow, name):
        """AST-derived Requirement labels == the class's live REQUIREMENTS."""
        runtime = {r.label for r in module_class(name).REQUIREMENTS}
        static = flow.requirement_labels.get(name, set())
        assert static == runtime

    @pytest.mark.parametrize("name", ALL_MODULES)
    def test_every_requirement_label_is_producible(self, flow, name):
        """No taxonomy-mapped module may depend on an unwritable knowgget."""
        for requirement in module_class(name).REQUIREMENTS:
            assert flow.consumed(requirement.label), requirement.label
            assert (
                flow.producible(requirement.label)
                or requirement.label in A_PRIORI_LABELS
            ), requirement.label


class TestFeatureKnowledgeLabels:
    @pytest.mark.parametrize("attack", sorted(MODULES_FOR_ATTACK))
    @pytest.mark.parametrize(
        "feature",
        ["single_hop", "multi_hop", "static", "mobile", "integrity_protected"],
    )
    def test_feature_labels_are_producible(self, flow, attack, feature):
        """Every Figure 3 feature maps to a label some producer can write."""
        label, _value = feature_knowledge(attack, feature)
        assert flow.producible(label) or label in A_PRIORI_LABELS, label

    def test_medium_prefix_is_a_real_producer_prefix(self, flow):
        """The Multihop.<medium> family comes from an f-string producer."""
        assert any(
            prefix.startswith("Multihop.") for prefix in flow.producers_prefix
        )


class TestFlowShape:
    def test_flow_has_both_sides(self, flow):
        assert flow.producers_exact
        assert flow.consumers
        assert flow.requirement_labels

    def test_requirement_classes_are_registered_modules(self, flow):
        """Every class the AST saw declaring Requirements resolves live."""
        for class_name in flow.requirement_labels:
            module_class(class_name)  # KeyError would fail the test
