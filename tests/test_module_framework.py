"""Tests for the module base classes, requirements, registry and manager."""

import pytest

from repro.core.datastore import DataStore
from repro.core.knowledge import KnowledgeBase
from repro.core.manager import ModuleManager
from repro.core.modules.base import (
    DetectionModule,
    KalisModule,
    ModuleContext,
    Requirement,
    SensingModule,
)
from repro.core.modules.registry import (
    available_modules,
    create_module,
    module_class,
    register_module,
)
from repro.eventbus.bus import EventBus
from repro.util.ids import NodeId
from tests.conftest import wifi_icmp_capture

K = NodeId("kalis-1")


def make_kb():
    return KnowledgeBase(K, EventBus())


class TestRequirement:
    def test_equals_satisfied(self):
        kb = make_kb()
        kb.put("Multihop", True)
        assert Requirement(label="Multihop", equals=True).satisfied(kb)
        assert not Requirement(label="Multihop", equals=False).satisfied(kb)

    def test_absent_knowgget_fails(self):
        assert not Requirement(label="Multihop", equals=True).satisfied(make_kb())
        assert not Requirement(label="Multihop").satisfied(make_kb())

    def test_exists_only(self):
        kb = make_kb()
        kb.put("Multihop", False)
        assert Requirement(label="Multihop").satisfied(kb)

    def test_negation_still_needs_presence(self):
        kb = make_kb()
        requirement = Requirement(label="Mobility", equals=True, negate=True)
        assert not requirement.satisfied(kb)  # absent -> fails even negated
        kb.put("Mobility", False)
        assert requirement.satisfied(kb)
        kb.put("Mobility", True)
        assert not requirement.satisfied(kb)

    def test_unparseable_value_fails(self):
        kb = make_kb()
        kb.put("Count", "not-a-number")
        assert not Requirement(label="Count", equals=3, expect=int).satisfied(kb)

    def test_describe(self):
        assert "Multihop == True" in Requirement(label="Multihop", equals=True).describe()
        assert "exists" in Requirement(label="Multihop").describe()


class _CountingModule(DetectionModule):
    NAME = "CountingModule"
    REQUIREMENTS = (Requirement(label="Enable", equals=True),)

    def __init__(self, params=None):
        super().__init__(params)
        self.seen = []
        self.activations = 0
        self.deactivations = 0

    def on_activate(self):
        self.activations += 1

    def on_deactivate(self):
        self.deactivations += 1

    def process(self, capture):
        self.seen.append(capture)


class _AlwaysOnSensor(SensingModule):
    NAME = "AlwaysOnSensor"


def build_manager(knowledge_driven=True):
    bus = EventBus()
    kb = KnowledgeBase(K, bus)
    manager = ModuleManager(
        kb=kb, datastore=DataStore(), bus=bus, node_id=K,
        knowledge_driven=knowledge_driven,
    )
    return manager, kb


class TestModuleManager:
    def test_detection_module_dormant_without_knowledge(self):
        manager, _ = build_manager()
        module = manager.register(_CountingModule())
        assert not module.active

    def test_activation_follows_knowledge(self):
        manager, kb = build_manager()
        module = manager.register(_CountingModule())
        kb.put("Enable", True)
        assert module.active
        kb.put("Enable", False)
        assert not module.active
        assert module.activations == 1
        assert module.deactivations == 1

    def test_sensing_modules_always_active(self):
        manager, _ = build_manager()
        sensor = manager.register(_AlwaysOnSensor())
        assert sensor.active

    def test_traditional_mode_activates_everything(self):
        manager, _ = build_manager(knowledge_driven=False)
        module = manager.register(_CountingModule())
        assert module.active

    def test_forced_active_overrides_requirements(self):
        manager, _ = build_manager()
        module = manager.register(_CountingModule(), force_active=True)
        assert module.active

    def test_captures_routed_only_to_active(self):
        manager, kb = build_manager()
        module = manager.register(_CountingModule())
        capture = wifi_icmp_capture(NodeId("a"), NodeId("b"), "10.23.0.1", 0.0)
        manager.on_capture(capture)
        assert module.seen == []
        kb.put("Enable", True)
        manager.on_capture(capture)
        assert len(module.seen) == 1

    def test_work_units_weighted(self):
        manager, kb = build_manager()

        class Heavy(_CountingModule):
            NAME = "HeavyModule"
            COST_WEIGHT = 2.5

        manager.register(Heavy())
        kb.put("Enable", True)
        manager.on_capture(wifi_icmp_capture(NodeId("a"), NodeId("b"), "x", 0.0))
        assert manager.work_units == 2.5

    def test_duplicate_registration_rejected(self):
        manager, _ = build_manager()
        manager.register(_CountingModule())
        with pytest.raises(ValueError):
            manager.register(_CountingModule())

    def test_activation_table(self):
        manager, kb = build_manager()
        manager.register(_CountingModule())
        manager.register(_AlwaysOnSensor())
        assert manager.activation_table() == {
            "CountingModule": False,
            "AlwaysOnSensor": True,
        }

    def test_state_bytes_counts_active_only(self):
        manager, kb = build_manager()
        module = manager.register(_CountingModule())
        assert manager.approximate_state_bytes() == 0
        kb.put("Enable", True)
        assert manager.approximate_state_bytes() > 0


class TestRegistry:
    def test_builtin_modules_available(self):
        names = available_modules()
        for expected in (
            "TopologyDiscoveryModule",
            "TrafficStatsModule",
            "MobilityAwarenessModule",
            "IcmpFloodModule",
            "SmurfModule",
            "ForwardingMisbehaviorModule",
            "ReplicationStaticModule",
            "ReplicationMobileModule",
            "WormholeModule",
            "SybilModule",
            "SinkholeModule",
            "SynFloodModule",
            "HelloFloodModule",
            "DataAlterationModule",
            "SpoofingModule",
        ):
            assert expected in names

    def test_create_by_name_with_params(self):
        module = create_module("IcmpFloodModule", params={"threshold": 5})
        assert module.threshold == 5

    def test_unknown_module(self):
        with pytest.raises(KeyError, match="known modules"):
            create_module("NoSuchModule")

    def test_module_class_lookup(self):
        assert module_class("IcmpFloodModule").NAME == "IcmpFloodModule"
        with pytest.raises(KeyError):
            module_class("Nope")

    def test_register_rejects_non_module(self):
        with pytest.raises(TypeError):
            register_module(dict)


class TestParamCoercion:
    def test_string_params_coerced_to_default_types(self):
        module = KalisModule(params={"a": "3", "b": "2.5", "c": "true"})
        assert module.param("a", 1) == 3
        assert module.param("b", 1.0) == 2.5
        assert module.param("c", False) is True
        assert module.param("missing", 7) == 7

    def test_context_alert_counter(self):
        bus = EventBus()
        ctx = ModuleContext(
            kb=KnowledgeBase(K, bus), datastore=DataStore(), bus=bus, node_id=K
        )
        alert = ctx.raise_alert("x", detected_by="m", timestamp=1.0)
        assert ctx.alerts_raised == 1
        assert alert.kalis_node == K
