"""Whole-program flow rules (KL101–KL105), the knowledge-flow graph,
its exports, and the ``--changed`` CLI mode."""

import json
import subprocess
import textwrap
from pathlib import Path

from repro.analysis.astutil import pattern_covers
from repro.analysis.cli import main
from repro.analysis.engine import run_rules
from repro.analysis.knowflow import derive_knowflow, export_dot, export_json
from repro.analysis.project import Project

ROOT = Path(__file__).resolve().parent.parent


def make_project(tmp_path, files):
    """Write a ``src/`` tree from {relpath: source} and parse it."""
    for relpath, content in files.items():
        path = tmp_path / "src" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    for directory in sorted((tmp_path / "src").rglob("*")):
        if directory.is_dir():
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
    return Project.load([tmp_path / "src" / "repro"], root=tmp_path)


def run(tmp_path, files, rule):
    return run_rules(make_project(tmp_path, files), select=[rule])


class TestKL101KnowggetLiveness:
    VIOLATION = {
        "repro/core/modules/detection/ghost.py": """
        from repro.core.modules.base import Requirement

        class GhostModule:
            REQUIREMENTS = (Requirement(label="NeverWritten"),)
        """,
    }
    CLEAN = {
        "repro/core/modules/detection/ghost.py": """
        from repro.core.modules.base import Requirement

        class GhostModule:
            REQUIREMENTS = (Requirement(label="Written"),)
        """,
        "repro/core/modules/sensing/feeder.py": """
        class Feeder:
            def go(self):
                self.ctx.kb.put("Written", 1)
        """,
    }

    def test_requirement_without_writer_flagged(self, tmp_path):
        findings = run(tmp_path, self.VIOLATION, "KL101")
        assert [f.key for f in findings] == ["NeverWritten"]
        assert "GhostModule" in findings[0].message

    def test_clean_twin_passes(self, tmp_path):
        assert run(tmp_path, self.CLEAN, "KL101") == []

    def test_wrapper_write_satisfies_requirement(self, tmp_path):
        """A label only written through a forwarding wrapper counts."""
        files = dict(self.VIOLATION)
        files["repro/core/modules/sensing/feeder.py"] = """
        class Feeder:
            def _emit(self, label, value):
                self.ctx.kb.put(label, value)

            def go(self):
                self._emit("NeverWritten", 1)
        """
        assert run(tmp_path, files, "KL101") == []

    def test_defaultless_read_without_writer_flagged(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/reader.py": """
                class Reader:
                    def go(self):
                        return self.kb.get("Missing", str)
                """,
            },
            "KL101",
        )
        assert [f.key for f in findings] == ["Missing"]

    def test_defaulted_read_is_tolerant(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/reader.py": """
                class Reader:
                    def go(self):
                        return self.kb.get("Missing", str, default=None)
                """,
            },
            "KL101",
        )
        assert findings == []

    def test_dynamic_put_silences_rule(self, tmp_path):
        """An unanalyzable ``put`` could write anything — stay quiet."""
        files = dict(self.VIOLATION)
        files["repro/core/loader.py"] = """
        class Loader:
            def go(self, labels):
                for label in labels:
                    self.kb.put(label, 1)
        """
        assert run(tmp_path, files, "KL101") == []


class TestKL102DeadKnowledge:
    VIOLATION = {
        "repro/core/modules/sensing/feeder.py": """
        class Feeder:
            def go(self):
                self.ctx.kb.put("Orphan", 1)
        """,
    }

    def test_write_without_reader_flagged(self, tmp_path):
        findings = run(tmp_path, self.VIOLATION, "KL102")
        assert [f.key for f in findings] == ["Orphan"]

    def test_clean_twin_passes(self, tmp_path):
        files = dict(self.VIOLATION)
        files["repro/core/reader.py"] = """
        class Reader:
            def go(self):
                return self.kb.get("Orphan", str, default=None)
        """
        assert run(tmp_path, files, "KL102") == []

    def test_requirement_counts_as_reader(self, tmp_path):
        files = dict(self.VIOLATION)
        files["repro/core/modules/detection/user.py"] = """
        from repro.core.modules.base import Requirement

        class UserModule:
            REQUIREMENTS = (Requirement(label="Orphan"),)
        """
        assert run(tmp_path, files, "KL102") == []

    def test_string_reference_elsewhere_softens(self, tmp_path):
        files = dict(self.VIOLATION)
        files["repro/core/compilelike.py"] = (
            'FREEZABLE = ("Orphan",)\n'
        )
        assert run(tmp_path, files, "KL102") == []

    def test_prefix_write_covered_by_exact_read(self, tmp_path):
        files = {
            "repro/core/modules/sensing/feeder.py": """
            class Feeder:
                def go(self, kind):
                    self.ctx.kb.put(f"Rate.{kind}", 1)
            """,
            "repro/core/reader.py": """
            class Reader:
                def go(self):
                    return self.kb.get("Rate.udp", str, default=None)
            """,
        }
        assert run(tmp_path, files, "KL102") == []


class TestKL103OrphanTopics:
    def test_subscribe_without_publisher_flagged(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/listener.py": """
                class Listener:
                    def go(self):
                        self.bus.subscribe("никто.не.шлёт", print)
                """,
            },
            "KL103",
        )
        assert len(findings) == 1
        assert findings[0].severity.value == "error"

    def test_publish_without_subscriber_flagged_as_warning(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/teller.py": """
                class Teller:
                    def go(self):
                        self.bus.publish("void.topic", 1)
                """,
            },
            "KL103",
        )
        assert [f.key for f in findings] == ["void.topic"]
        assert findings[0].severity.value == "warning"

    def test_clean_twin_passes(self, tmp_path):
        files = {
            "repro/core/teller.py": """
            class Teller:
                def go(self):
                    self.bus.publish("pair.topic", 1)
            """,
            "repro/core/listener.py": """
            class Listener:
                def go(self):
                    self.bus.subscribe("pair.topic", print)
            """,
        }
        assert run(tmp_path, files, "KL103") == []

    def test_wrapper_publish_counts(self, tmp_path):
        """KL005's blind spot: a publish through a topic-forwarding
        wrapper still pairs with its subscription here."""
        files = {
            "repro/core/super.py": """
            TOPIC = "module.event"

            class Supervisor:
                def _publish(self, topic, payload):
                    self.bus.publish(topic, payload)

                def go(self):
                    self._publish(TOPIC, None)
            """,
            "repro/core/listener.py": """
            from repro.core.super import TOPIC

            class Listener:
                def go(self):
                    self.bus.subscribe(TOPIC, print)
            """,
        }
        assert run(tmp_path, files, "KL103") == []

    def test_knowledge_prefix_allowlisted(self, tmp_path):
        files = {
            "repro/core/teller.py": """
            class Teller:
                def go(self, key):
                    self.bus.publish("knowledge." + key, 1)
            """,
        }
        assert run(tmp_path, files, "KL103") == []


class TestKL104ContractDrift:
    VIOLATION = {
        "repro/core/modules/detection/drifty.py": """
        from repro.core.modules.base import Requirement

        class DriftyModule:
            REQUIREMENTS = (Requirement(label="Declared"),)

            def handle(self):
                return self.ctx.kb.get("Undeclared", str)
        """,
        "repro/core/modules/sensing/feeder.py": """
        class Feeder:
            def go(self):
                self.ctx.kb.put("Declared", 1)
                self.ctx.kb.put("Undeclared", 1)
        """,
    }

    def test_undeclared_strict_read_flagged(self, tmp_path):
        findings = run(tmp_path, self.VIOLATION, "KL104")
        assert [f.key for f in findings] == ["DriftyModule:Undeclared"]

    def test_clean_twin_declares_requirement(self, tmp_path):
        files = dict(self.VIOLATION)
        files["repro/core/modules/detection/drifty.py"] = """
        from repro.core.modules.base import Requirement

        class DriftyModule:
            REQUIREMENTS = (
                Requirement(label="Declared"),
                Requirement(label="Undeclared"),
            )

            def handle(self):
                return self.ctx.kb.get("Undeclared", str)
        """
        assert run(tmp_path, files, "KL104") == []

    def test_defaulted_read_is_sanctioned(self, tmp_path):
        files = dict(self.VIOLATION)
        files["repro/core/modules/detection/drifty.py"] = """
        from repro.core.modules.base import Requirement

        class DriftyModule:
            REQUIREMENTS = (Requirement(label="Declared"),)

            def handle(self):
                return self.ctx.kb.get("Undeclared", str, default=None)
        """
        assert run(tmp_path, files, "KL104") == []

    def test_self_written_label_is_module_state(self, tmp_path):
        files = dict(self.VIOLATION)
        files["repro/core/modules/detection/drifty.py"] = """
        from repro.core.modules.base import Requirement

        class DriftyModule:
            REQUIREMENTS = (Requirement(label="Declared"),)

            def remember(self):
                self.ctx.kb.put("Undeclared", 1)

            def handle(self):
                return self.ctx.kb.get("Undeclared", str)
        """
        assert run(tmp_path, files, "KL104") == []


class TestKL105DeterminismTaint:
    def test_taint_into_branch_condition(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/decider.py": """
                import time

                def decide(threshold):
                    now = time.time()
                    jitter = now * 2
                    if jitter > threshold:
                        return True
                    return False
                """,
            },
            "KL105",
        )
        assert len(findings) == 1
        assert "time.time" in findings[0].message
        assert "branch condition" in findings[0].message

    def test_taint_into_bus_publish(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/teller.py": """
                import random

                class Teller:
                    def go(self):
                        nonce = random.random()
                        self.bus.publish("alert", nonce)
                """,
            },
            "KL105",
        )
        assert len(findings) == 1
        assert "random.random" in findings[0].message

    def test_taint_into_alert_payload_and_kb_write(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/alarmist.py": """
                import os

                class Alarmist:
                    def go(self):
                        token = os.urandom(8)
                        self.ctx.raise_alert("spoofing", token)
                        self.kb.put("Token", token)
                """,
            },
            "KL105",
        )
        assert {f.message.split(" flows into ")[1].split(" in ")[0] for f in findings} == {
            "an alert payload",
            "a knowledge write",
        }

    def test_id_into_condition_flagged(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/orderer.py": """
                def pick(a, b):
                    if id(a) < id(b):
                        return a
                    return b
                """,
            },
            "KL105",
        )
        assert len(findings) == 1
        assert "id()" in findings[0].message

    def test_clean_twin_passes(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/decider.py": """
                def decide(clock, threshold):
                    now = clock.now()
                    if now > threshold:
                        return True
                    return False
                """,
            },
            "KL105",
        )
        assert findings == []

    def test_obs_package_is_sanctioned_sink(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/obs/recorder.py": """
                import time

                def stamp(bus):
                    now = time.time()
                    bus.publish("obs.tick", now)
                """,
            },
            "KL105",
        )
        assert findings == []

    def test_unguarded_package_not_scanned(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/tools/bench.py": """
                import time

                def loop(bus):
                    t = time.time()
                    if t > 0:
                        bus.publish("x", t)
                """,
            },
            "KL105",
        )
        assert findings == []


class TestKnowFlowGraph:
    FILES = {
        "repro/core/modules/sensing/feeder.py": """
        class Feeder:
            def _emit(self, label, value):
                self.ctx.kb.put(label, value)

            def go(self, kind):
                self._emit(f"Rate.{kind}", 1)
                name = f"Shared{kind}"
                self.ctx.kb.put(name, 2)
        """,
        "repro/core/reader.py": """
        class Reader:
            def go(self):
                return self.kb.get("Rate.udp", str, default=None)
        """,
    }

    def test_wrapper_derived_write_site(self, tmp_path):
        flow = derive_knowflow(make_project(tmp_path, self.FILES))
        derived = [s for s in flow.writes if s.derived_from]
        assert [s.render() for s in derived] == ["Rate.*"]
        assert "Feeder._emit" in derived[0].derived_from

    def test_local_constant_propagation(self, tmp_path):
        """``name = f"Shared{kind}"; kb.put(name, …)`` is a prefix write."""
        flow = derive_knowflow(make_project(tmp_path, self.FILES))
        assert any(s.render() == "Shared*" for s in flow.writes)

    def test_json_export_is_deterministic(self, tmp_path):
        project = make_project(tmp_path, self.FILES)
        first = export_json(derive_knowflow(project))
        second = export_json(
            derive_knowflow(
                Project.load([tmp_path / "src" / "repro"], root=tmp_path)
            )
        )
        assert first == second
        payload = json.loads(first)
        assert set(payload) == {"knowledge", "topics"}
        patterns = [e["pattern"] for e in payload["knowledge"]["edges"]]
        assert patterns == sorted(patterns)

    def test_dot_export_shape(self, tmp_path):
        rendered = export_dot(
            derive_knowflow(make_project(tmp_path, self.FILES))
        )
        assert rendered.startswith("digraph kalis_flow {")
        assert '"label:Rate.*"' in rendered
        assert rendered.endswith("}\n")


class TestGraphCli:
    def test_graph_json_on_real_tree_deterministic(self, capsys):
        argv = ["graph", "--root", str(ROOT), str(ROOT / "src" / "repro")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        topics = {e["pattern"] for e in payload["topics"]["edges"]}
        assert "alert" in topics
        assert "module.restore" in topics  # wrapper-derived publish

    def test_graph_dot_output_file(self, tmp_path):
        out = tmp_path / "flow.dot"
        assert (
            main(
                [
                    "graph",
                    "--root",
                    str(ROOT),
                    "--format",
                    "dot",
                    "--output",
                    str(out),
                    str(ROOT / "src" / "repro"),
                ]
            )
            == 0
        )
        assert out.read_text(encoding="utf-8").startswith("digraph kalis_flow")


class TestRuntimeCrossCheck:
    def test_chaos_bus_topics_covered_by_static_graph(self):
        """ISSUE acceptance: every topic observed on the bus in the E14
        chaos scenario appears in the static topic graph."""
        from repro.experiments import chaos_scenario

        result = chaos_scenario.run(seed=23, symptom_instances=6)
        observed = result.extra["bus_topics"]
        assert observed, "chaos run produced no bus traffic"

        project = Project.load([ROOT / "src" / "repro"], root=ROOT)
        flow = derive_knowflow(project)
        static_patterns = [
            s.pattern for s in flow.publishes if s.pattern[0] != "dynamic"
        ]
        uncovered = [
            topic
            for topic in observed
            if not any(
                pattern_covers(pattern, topic) for pattern in static_patterns
            )
        ]
        assert uncovered == [], (
            f"topics on the live bus missing from the static graph:"
            f" {uncovered}"
        )


class TestChangedMode:
    def _git(self, cwd, *args):
        subprocess.run(
            ["git", *args],
            cwd=cwd,
            check=True,
            capture_output=True,
            env={
                "GIT_AUTHOR_NAME": "t",
                "GIT_AUTHOR_EMAIL": "t@example.invalid",
                "GIT_COMMITTER_NAME": "t",
                "GIT_COMMITTER_EMAIL": "t@example.invalid",
                "HOME": str(cwd),
                "PATH": "/usr/bin:/bin:/usr/local/bin",
            },
        )

    def _setup_repo(self, tmp_path):
        files = {
            "repro/sim/clean.py": """
            def ok():
                return 1
            """,
            "repro/sim/dirty.py": """
            def also_ok():
                return 2
            """,
        }
        make_project(tmp_path, files)
        (tmp_path / "pyproject.toml").write_text("", encoding="utf-8")
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "add", "-A")
        self._git(tmp_path, "commit", "-qm", "seed")
        return tmp_path

    def test_only_changed_file_findings_reported(self, tmp_path, capsys):
        root = self._setup_repo(tmp_path)
        # Plant violations in BOTH files, but only touch one.
        clean = root / "src" / "repro" / "sim" / "clean.py"
        dirty = root / "src" / "repro" / "sim" / "dirty.py"
        planted = "\nimport time\n\ndef stamp():\n    return time.time()\n"
        dirty.write_text(
            dirty.read_text(encoding="utf-8") + planted, encoding="utf-8"
        )
        # The un-touched violation must exist before HEAD to stay out of
        # the diff — rewrite it and commit, then re-dirty the other.
        clean.write_text(
            clean.read_text(encoding="utf-8") + planted, encoding="utf-8"
        )
        self._git(root, "add", str(clean))
        self._git(root, "commit", "-qm", "sneak in clean.py violation")

        code = main(
            [
                "--root",
                str(root),
                "--no-baseline",
                "--changed",
                "HEAD",
                str(root / "src" / "repro"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "dirty.py" in out
        assert "clean.py" not in out

    def test_importers_of_changed_file_in_scope(self, tmp_path, capsys):
        root = self._setup_repo(tmp_path)
        user = root / "src" / "repro" / "sim" / "user.py"
        user.write_text(
            textwrap.dedent(
                """
                from repro.sim.consts import LABEL

                class Reader:
                    def go(self):
                        return self.kb.get(LABEL, str)
                """
            ),
            encoding="utf-8",
        )
        consts = root / "src" / "repro" / "sim" / "consts.py"
        consts.write_text('LABEL = "NeverWritten"\n', encoding="utf-8")
        self._git(root, "add", str(user))
        self._git(root, "commit", "-qm", "add reader (importer)")
        # Only consts.py is changed vs. HEAD, but the KL101 finding
        # lands in user.py — reachable through the import graph.
        code = main(
            [
                "--root",
                str(root),
                "--no-baseline",
                "--changed",
                "HEAD",
                str(root / "src" / "repro"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "user.py" in out
        assert "KL101" in out

    def test_no_changes_is_clean(self, tmp_path, capsys):
        root = self._setup_repo(tmp_path)
        code = main(
            [
                "--root",
                str(root),
                "--no-baseline",
                "--changed",
                "HEAD",
                str(root / "src" / "repro"),
            ]
        )
        capsys.readouterr()
        assert code == 0
