"""Integration tests for the experiment harnesses (E1-E10).

These assert the paper's qualitative *shapes*, at reduced scale so the
suite stays fast; the full-protocol numbers live in the benchmarks.
"""

import pytest

from repro.experiments import (
    ablations,
    breadth,
    icmp_flood_scenario,
    reactivity_scenario,
    replication_scenario,
    table2,
    wormhole_scenario,
)


@pytest.fixture(scope="module")
def e1():
    return icmp_flood_scenario.run(seed=7, symptom_instances=10)


class TestE1IcmpFlood:
    def test_kalis_perfect_accuracy(self, e1):
        kalis = e1.runs["kalis"]
        assert kalis.score.classification_accuracy == 1.0
        assert kalis.score.detection_rate == 1.0

    def test_kalis_runs_only_relevant_flood_module(self, e1):
        active = e1.runs["kalis"].extra["active_modules"]
        assert "IcmpFloodModule" in active
        assert "SmurfModule" not in active

    def test_traditional_misclassifies_half(self, e1):
        trad = e1.runs["traditional"]
        assert trad.score.classification_accuracy == pytest.approx(0.5, abs=0.1)
        attacks = {alert.attack for alert in trad.alerts}
        assert attacks == {"icmp_flood", "smurf"}

    def test_snort_cannot_disambiguate(self, e1):
        snort = e1.runs["snort"]
        attacks = {alert.attack for alert in snort.alerts}
        assert "icmp_flood" in attacks and "smurf" in attacks
        assert snort.score.classification_accuracy < 1.0

    def test_countermeasures_match_paper(self, e1):
        """Kalis revokes only the attacker; the traditional IDS would
        also revoke the victim, disconnecting the network (§VI-B1)."""
        assert e1.runs["kalis"].countermeasure_effectiveness == 1.0
        assert e1.runs["traditional"].countermeasure_effectiveness == 0.0
        assert e1.extra["victim"] in e1.runs["traditional"].revoked
        assert e1.extra["victim"] not in e1.runs["kalis"].revoked

    def test_resource_ordering(self, e1):
        kalis = e1.runs["kalis"].resources
        trad = e1.runs["traditional"].resources
        snort = e1.runs["snort"].resources
        assert kalis.cpu_percent < trad.cpu_percent < snort.cpu_percent
        assert kalis.ram_kb < trad.ram_kb < snort.ram_kb

    def test_no_false_positives_anywhere(self, e1):
        for run in e1.runs.values():
            assert run.score.false_positive_alerts == 0


class TestE2Replication:
    @pytest.fixture(scope="class")
    def e2(self):
        return replication_scenario.run(seed=11, runs=4)

    def test_kalis_beats_traditional(self, e2):
        assert (
            e2.runs["kalis"].score.detection_rate
            > e2.runs["traditional"].score.detection_rate
        )

    def test_kalis_high_detection(self, e2):
        assert e2.runs["kalis"].score.detection_rate >= 0.9

    def test_snort_is_blind_to_zigbee(self, e2):
        snort = e2.runs["snort"]
        assert snort.score.detection_rate == 0.0
        assert len(snort.alerts) == 0

    def test_all_alerts_are_replication(self, e2):
        for run_name in ("kalis", "traditional"):
            for alert in e2.runs[run_name].alerts:
                assert alert.attack == "replication"


class TestE4Reactivity:
    def test_cold_start_catches_everything(self):
        result = reactivity_scenario.run(seed=13)
        assert result.detection_rate == 1.0
        assert result.total_instances > 0
        # Discovery happens from the very first CTP packets.
        assert result.discovery_latency < 5.0
        assert result.module_activated_at is not None
        assert result.first_alert_at is not None

    def test_summary_renders(self):
        result = reactivity_scenario.run(seed=13)
        assert "detection rate 100%" in result.summary()


class TestE5Wormhole:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return wormhole_scenario.run(seed=17)

    def test_isolated_nodes_see_blackhole_only(self, outcomes):
        isolated, _ = outcomes
        assert "wormhole" not in isolated.attacks_seen
        assert "blackhole" in isolated.attacks_seen
        assert isolated.alerts_by_node["kalis-B"] == []

    def test_collective_nodes_identify_wormhole(self, outcomes):
        _, collective = outcomes
        assert "wormhole" in collective.attacks_seen
        wormhole_alerts = [
            alert
            for alerts in collective.alerts_by_node.values()
            for alert in alerts
            if alert.attack == "wormhole"
        ]
        suspects = {s.value for a in wormhole_alerts for s in a.suspects}
        assert suspects == {"B1", "B2"}

    def test_collective_accuracy_improves(self, outcomes):
        isolated, collective = outcomes
        assert (
            collective.score.classification_accuracy
            > isolated.score.classification_accuracy
        )


class TestE3Table2:
    @pytest.fixture(scope="class")
    def table(self):
        return table2.run(seed=7, replication_runs=3)

    def test_paper_shape(self, table):
        rows = table.rows
        # Accuracy: Kalis perfect, others not.
        assert rows["kalis"].accuracy == 1.0
        assert rows["traditional"].accuracy < 1.0
        assert rows["snort"].accuracy < 1.0
        # Detection: Kalis beats traditional.
        assert rows["kalis"].detection_rate > rows["traditional"].detection_rate
        # Resources: Kalis cheapest, Snort most expensive.
        assert rows["kalis"].cpu_percent < rows["traditional"].cpu_percent
        assert rows["snort"].cpu_percent > rows["traditional"].cpu_percent
        assert rows["kalis"].ram_kb < rows["traditional"].ram_kb < rows["snort"].ram_kb

    def test_render(self, table):
        text = table.render()
        assert "Detection Rate" in text
        assert "paper (Table II)" in text


class TestE6Breadth:
    @pytest.fixture(scope="class")
    def fig8(self):
        return breadth.run(seed=23, instances_per_scenario=6)

    def test_all_eight_scenarios_present(self, fig8):
        assert set(fig8.per_scenario) == set(breadth.SCENARIOS)

    def test_kalis_never_worse_on_average(self, fig8):
        assert fig8.average("kalis", "detection_rate") >= fig8.average(
            "traditional", "detection_rate"
        )
        assert fig8.average("kalis", "classification_accuracy") > fig8.average(
            "traditional", "classification_accuracy"
        )

    def test_kalis_detects_in_every_scenario(self, fig8):
        for scenario, runs in fig8.per_scenario.items():
            assert runs["kalis"].score.detection_rate > 0, scenario

    def test_render(self, fig8):
        text = fig8.render()
        assert "AVERAGE" in text


class TestAblations:
    def test_module_scaling_shape(self):
        points = ablations.module_scaling(seed=31, symptom_instances=4)
        # Traditional cost grows with the library; Kalis stays flat at
        # the knowledge-selected set.
        assert points[-1].traditional_cpu > points[0].traditional_cpu * 1.5
        assert points[-1].kalis_cpu <= points[0].kalis_cpu * 1.8
        assert points[-1].traditional_active > points[-1].kalis_active
        assert ablations.render_module_scaling(points)

    def test_window_sweep_shape(self):
        points = ablations.window_sweep(seed=37, symptom_instances=15)
        by_window = {p.window_s: p.detection_rate for p in points}
        # Too-short windows can never accumulate the threshold.
        assert by_window[1.0] == 0.0
        assert by_window[10.0] > 0.5
        assert ablations.render_window_sweep(points)
