"""Error-path coverage for the module registry (satellite of PR 1)."""

import pytest

from repro.core.modules import registry
from repro.core.modules.base import DetectionModule
from repro.core.modules.registry import (
    available_modules,
    create_module,
    module_class,
    register_module,
)


class TestDuplicateRegistration:
    def test_duplicate_name_raises_value_error(self):
        @register_module
        class _FirstTestOnlyModule(DetectionModule):
            """Registers fine the first time."""

            NAME = "_RegistryDupProbe"
            DETECTS = ("icmp_flood",)

        try:
            with pytest.raises(ValueError, match="already registered"):

                @register_module
                class _SecondTestOnlyModule(DetectionModule):
                    """Collides on NAME with the first class."""

                    NAME = "_RegistryDupProbe"
                    DETECTS = ("icmp_flood",)

        finally:
            registry._REGISTRY.pop("_RegistryDupProbe", None)
            registry._REGISTRY.pop("_FirstTestOnlyModule", None)
            registry._REGISTRY.pop("_SecondTestOnlyModule", None)

    def test_reregistering_same_class_is_idempotent(self):
        @register_module
        class _IdempotentTestOnlyModule(DetectionModule):
            """Registering the same class twice is allowed."""

            NAME = "_RegistryIdemProbe"
            DETECTS = ("icmp_flood",)

        try:
            assert (
                register_module(_IdempotentTestOnlyModule)
                is _IdempotentTestOnlyModule
            )
        finally:
            registry._REGISTRY.pop("_RegistryIdemProbe", None)
            registry._REGISTRY.pop("_IdempotentTestOnlyModule", None)

    def test_non_module_class_raises_type_error(self):
        with pytest.raises(TypeError, match="not a KalisModule"):
            register_module(object)


class TestUnknownModule:
    def test_create_unknown_lists_known_modules(self):
        with pytest.raises(KeyError) as excinfo:
            create_module("NoSuchModule")
        message = str(excinfo.value)
        assert "unknown module 'NoSuchModule'" in message
        # The error must enumerate what IS available, to aid config authors.
        for known in available_modules():
            assert known in message

    def test_module_class_unknown_raises_key_error(self):
        with pytest.raises(KeyError, match="unknown module"):
            module_class("NoSuchModule")


class TestParamPassthrough:
    def test_create_module_forwards_params(self):
        module = create_module("IcmpFloodModule", params={"threshold": 42})
        assert module.threshold == 42
        # Unspecified params keep their documented defaults.
        assert module.window == 10.0

    def test_create_by_class_name_and_by_name_agree(self):
        by_name = create_module("IcmpFloodModule")
        by_class = create_module(module_class("IcmpFloodModule").__name__)
        assert type(by_name) is type(by_class)
