"""Supervisor lifecycle tests: crash isolation, the circuit breaker's
quarantine → cooldown → half-open probe → restore cycle, permanent
quarantine, and the module.* bus events."""

import pytest

from repro.core.datastore import DataStore
from repro.core.knowledge import KnowledgeBase
from repro.core.manager import (
    TOPIC_MODULE_FAILURE,
    TOPIC_MODULE_QUARANTINE,
    TOPIC_MODULE_RESTORE,
    ModuleManager,
    ModuleState,
    ModuleSupervisor,
)
from repro.core.modules.base import DetectionModule, SensingModule
from repro.eventbus.bus import EventBus
from repro.util.ids import NodeId
from tests.conftest import wifi_icmp_capture

K = NodeId("kalis-1")


class FlakyModule(DetectionModule):
    """Raises on command; the supervisor's crash-test dummy."""

    NAME = "FlakyModule"
    DETECTS = ("flaky",)

    def __init__(self, params=None):
        super().__init__(params)
        self.failing = False
        self.calls = 0

    def process(self, capture):
        self.calls += 1
        if self.failing:
            raise RuntimeError(f"injected crash #{self.calls}")


class SteadyModule(DetectionModule):
    NAME = "SteadyModule"
    DETECTS = ("steady",)

    def __init__(self, params=None):
        super().__init__(params)
        self.seen = []

    def process(self, capture):
        self.seen.append(capture.timestamp)


def make_manager(**supervisor_kwargs):
    bus = EventBus()
    kb = KnowledgeBase(K, bus)
    supervisor = ModuleSupervisor(bus, **supervisor_kwargs)
    manager = ModuleManager(
        kb=kb,
        datastore=DataStore(window_size=100),
        bus=bus,
        node_id=K,
        knowledge_driven=False,  # all modules always active
        supervisor=supervisor,
    )
    return manager, bus


def capture_at(timestamp):
    return wifi_icmp_capture(
        NodeId("a"), NodeId("b"), "10.0.0.2", timestamp=timestamp
    )


class TestCrashIsolation:
    def test_raising_module_does_not_abort_the_run(self):
        manager, _ = make_manager()
        flaky = manager.register(FlakyModule())
        steady = manager.register(SteadyModule())
        flaky.failing = True
        for step in range(5):
            manager.on_capture(capture_at(float(step)))
        # The run survived and the later module saw every capture.
        assert steady.seen == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_failures_published_on_bus(self):
        manager, bus = make_manager()
        failures = []
        bus.subscribe(TOPIC_MODULE_FAILURE, lambda e: failures.append(e.payload))
        flaky = manager.register(FlakyModule())
        flaky.failing = True
        manager.on_capture(capture_at(1.0))
        assert len(failures) == 1
        assert failures[0].module == "FlakyModule"
        assert failures[0].operation == "handle"
        assert failures[0].timestamp == 1.0
        assert "injected crash" in failures[0].describe()

    def test_required_crash_fails_safe_to_inactive(self):
        bus = EventBus()
        kb = KnowledgeBase(K, bus)
        manager = ModuleManager(
            kb=kb, datastore=DataStore(window_size=10), bus=bus, node_id=K
        )

        class BadPredicate(DetectionModule):
            NAME = "BadPredicate"
            DETECTS = ("x",)

            def required(self, kb):
                raise ValueError("broken predicate")

        manager.register(BadPredicate())
        assert manager.activation_table()["BadPredicate"] is False
        assert manager.supervisor.health("BadPredicate").total_failures >= 1

    def test_on_activate_crash_is_isolated(self):
        manager, _ = make_manager()

        class BadActivate(DetectionModule):
            NAME = "BadActivate"
            DETECTS = ("x",)

            def on_activate(self):
                raise RuntimeError("activation crash")

        module = manager.register(BadActivate())
        assert module.active  # activation proceeded despite the hook crash
        health = manager.supervisor.health("BadActivate")
        assert health.total_failures == 1


class TestCircuitBreaker:
    def test_quarantine_after_threshold_consecutive_failures(self):
        manager, bus = make_manager(failure_threshold=3, cooldown=10.0)
        quarantines = []
        bus.subscribe(TOPIC_MODULE_QUARANTINE, lambda e: quarantines.append(e.payload))
        flaky = manager.register(FlakyModule())
        flaky.failing = True
        for step in range(3):
            manager.on_capture(capture_at(float(step)))
        assert manager.health_table()["FlakyModule"] == "quarantined"
        assert len(quarantines) == 1
        assert quarantines[0].quarantined_until == 2.0 + 10.0

    def test_quarantined_module_is_skipped_and_not_charged(self):
        manager, _ = make_manager(failure_threshold=2, cooldown=100.0)
        flaky = manager.register(FlakyModule())
        flaky.failing = True
        manager.on_capture(capture_at(0.0))
        manager.on_capture(capture_at(1.0))
        work_before = manager.work_units
        calls_before = flaky.calls
        manager.on_capture(capture_at(2.0))  # still cooling down
        assert flaky.calls == calls_before
        assert manager.work_units == work_before

    def test_successes_reset_the_consecutive_counter(self):
        manager, _ = make_manager(failure_threshold=3)
        flaky = manager.register(FlakyModule())
        flaky.failing = True
        manager.on_capture(capture_at(0.0))
        manager.on_capture(capture_at(1.0))
        flaky.failing = False
        manager.on_capture(capture_at(2.0))  # success: counter resets
        flaky.failing = True
        manager.on_capture(capture_at(3.0))
        manager.on_capture(capture_at(4.0))
        assert manager.health_table()["FlakyModule"] == "healthy"

    def test_probe_and_restore_after_cooldown(self):
        manager, bus = make_manager(failure_threshold=2, cooldown=10.0)
        restores = []
        bus.subscribe(TOPIC_MODULE_RESTORE, lambda e: restores.append(e.payload))
        flaky = manager.register(FlakyModule())
        flaky.failing = True
        manager.on_capture(capture_at(0.0))
        manager.on_capture(capture_at(1.0))  # quarantined until 11.0
        flaky.failing = False
        manager.on_capture(capture_at(5.0))  # still quarantined
        assert flaky.calls == 2
        manager.on_capture(capture_at(12.0))  # probe: routed, succeeds
        assert flaky.calls == 3
        assert manager.health_table()["FlakyModule"] == "healthy"
        assert len(restores) == 1
        assert restores[0].module == "FlakyModule"

    def test_failed_probe_requarantines_with_escalated_cooldown(self):
        manager, _ = make_manager(
            failure_threshold=2, cooldown=10.0, cooldown_factor=2.0,
            max_probe_failures=5,
        )
        flaky = manager.register(FlakyModule())
        flaky.failing = True
        manager.on_capture(capture_at(0.0))
        manager.on_capture(capture_at(1.0))  # quarantined until 11.0
        manager.on_capture(capture_at(12.0))  # probe fails
        health = manager.supervisor.health("FlakyModule")
        assert health.state is ModuleState.QUARANTINED
        # Second quarantine: cooldown escalates 10 -> 20.
        assert health.quarantined_until == pytest.approx(12.0 + 20.0)

    def test_permanent_quarantine_after_repeated_probe_failures(self):
        manager, _ = make_manager(
            failure_threshold=1, cooldown=5.0, cooldown_factor=1.0,
            max_probe_failures=2,
        )
        flaky = manager.register(FlakyModule())
        steady = manager.register(SteadyModule())
        flaky.failing = True
        timestamp = 0.0
        # Initial quarantine, then probes at each cooldown expiry.
        for _ in range(6):
            manager.on_capture(capture_at(timestamp))
            timestamp += 6.0
        assert manager.health_table()["FlakyModule"] == "disabled"
        calls = flaky.calls
        manager.on_capture(capture_at(1000.0))  # disabled: never probed again
        assert flaky.calls == calls
        # The healthy module is unaffected throughout.
        assert len(steady.seen) == 7

    def test_sensing_module_crash_is_supervised_too(self):
        manager, _ = make_manager(failure_threshold=1, cooldown=50.0)

        class BadSensor(SensingModule):
            NAME = "BadSensor"

            def process(self, capture):
                raise RuntimeError("sensor crash")

        manager.register(BadSensor())
        manager.on_capture(capture_at(0.0))
        assert manager.health_table()["BadSensor"] == "quarantined"


class TestHealthTable:
    def test_health_table_next_to_activation_table(self):
        manager, _ = make_manager()
        manager.register(FlakyModule())
        manager.register(SteadyModule())
        assert manager.health_table() == {
            "FlakyModule": "healthy",
            "SteadyModule": "healthy",
        }
        assert list(manager.health_table()) == list(manager.activation_table())

    def test_supervisor_parameter_validation(self):
        with pytest.raises(ValueError):
            ModuleSupervisor(failure_threshold=0)
        with pytest.raises(ValueError):
            ModuleSupervisor(cooldown=0.0)
        with pytest.raises(ValueError):
            ModuleSupervisor(cooldown_factor=0.5)
        with pytest.raises(ValueError):
            ModuleSupervisor(max_probe_failures=0)
