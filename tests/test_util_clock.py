"""Tests for the clock abstractions."""

import pytest

from repro.util.clock import Clock, ManualClock


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(start=5.0).now == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            Clock(start=-1.0)


class TestManualClock:
    def test_advance_to(self):
        clock = ManualClock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_advance_by(self):
        clock = ManualClock(start=1.0)
        clock.advance_by(2.0)
        assert clock.now == 3.0

    def test_never_goes_backwards(self):
        clock = ManualClock()
        clock.advance_to(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.0)

    def test_advance_to_same_time_is_fine(self):
        clock = ManualClock()
        clock.advance_to(1.0)
        clock.advance_to(1.0)
        assert clock.now == 1.0

    def test_advance_by_rejects_negative(self):
        with pytest.raises(ValueError):
            ManualClock().advance_by(-0.1)
