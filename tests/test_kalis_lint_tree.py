"""Tier-1 gate: the real tree is lint-clean, and planted bugs are caught."""

import shutil
import textwrap
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.cli import main
from repro.analysis.engine import run_rules
from repro.analysis.project import Project

ROOT = Path(__file__).resolve().parent.parent


class TestTreeIsClean:
    def test_no_unbaselined_findings(self):
        """`kalis-lint src/repro` must stay clean (modulo the baseline)."""
        project = Project.load([ROOT / "src" / "repro"], root=ROOT)
        baseline = Baseline.load(ROOT / "kalis-lint.baseline")
        leftover = [
            finding
            for finding in run_rules(project)
            if not baseline.suppresses(finding)
        ]
        assert leftover == [], "\n" + "\n".join(f.render() for f in leftover)

    def test_no_stale_baseline_entries(self):
        """Every baseline entry still matches a live finding."""
        project = Project.load([ROOT / "src" / "repro"], root=ROOT)
        baseline = Baseline.load(ROOT / "kalis-lint.baseline")
        for finding in run_rules(project):
            baseline.suppresses(finding)
        scanned = {source.relpath for source in project.files}
        stale = baseline.stale_entries(scanned)
        assert stale == [], [e.render() for e in stale]

    def test_cli_exits_clean_on_real_tree(self, capsys):
        code = main(
            [
                "--root",
                str(ROOT),
                "--baseline",
                str(ROOT / "kalis-lint.baseline"),
                str(ROOT / "src" / "repro"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "kalis-lint: clean" in out


def _copy_tree(tmp_path):
    target = tmp_path / "src" / "repro"
    shutil.copytree(ROOT / "src" / "repro", target)
    return target


class TestPlantedViolations:
    def test_planted_wallclock_call_in_sim_engine(self, tmp_path, capsys):
        """ISSUE acceptance: time.time() in sim/engine.py fails the lint."""
        tree = _copy_tree(tmp_path)
        engine = tree / "sim" / "engine.py"
        engine.write_text(
            engine.read_text(encoding="utf-8")
            + textwrap.dedent(
                """

                import time


                def _wallclock_stamp():
                    \"\"\"Planted nondeterminism.\"\"\"
                    return time.time()
                """
            ),
            encoding="utf-8",
        )
        code = main(["--root", str(tmp_path), "--no-baseline", str(tree)])
        out = capsys.readouterr().out
        assert code == 1
        assert "src/repro/sim/engine.py:" in out
        assert "KL001" in out
        # the finding is file:line addressed
        line = next(l for l in out.splitlines() if "KL001" in l)
        path_part = line.split(" ", 1)[0]
        assert path_part.startswith("src/repro/sim/engine.py:")
        assert path_part.rstrip(":").rsplit(":", 1)[-1].isdigit()

    def test_planted_unregistered_detection_module(self, tmp_path, capsys):
        """ISSUE acceptance: an unregistered detection module fails the lint."""
        tree = _copy_tree(tmp_path)
        rogue = tree / "core" / "modules" / "detection" / "rogue.py"
        rogue.write_text(
            textwrap.dedent(
                '''
                """A planted, non-conformant detection module."""

                from repro.core.modules.base import DetectionModule


                class RogueModule(DetectionModule):
                    """Missing NAME, registration, and DETECTS."""
                '''
            ),
            encoding="utf-8",
        )
        code = main(["--root", str(tmp_path), "--no-baseline", str(tree)])
        out = capsys.readouterr().out
        assert code == 1
        assert "src/repro/core/modules/detection/rogue.py:" in out
        assert "KL002" in out

    def test_unmodified_copy_is_clean(self, tmp_path, capsys):
        """Control: the copied tree passes with the real baseline."""
        tree = _copy_tree(tmp_path)
        code = main(
            [
                "--root",
                str(tmp_path),
                "--baseline",
                str(ROOT / "kalis-lint.baseline"),
                str(tree),
            ]
        )
        assert code == 0
        capsys.readouterr()
