"""Delivery accounting and convergence of the collective-knowledge
network at its loss extremes.

``delivery_stats()`` and ``convergence_time()`` feed both the E14
chaos report and the telemetry retry-tail table, so their edge cases
are pinned here: a perfect link must show zero retry noise, and a
permanently partitioned link must exhaust its budget and report no
convergence instead of hanging or lying.
"""

from repro.core.collective import CollectiveKnowledgeNetwork
from repro.core.knowledge import KnowledgeBase
from repro.sim.engine import Simulator
from repro.util.ids import NodeId


def _joined_pair(network):
    kb_a = KnowledgeBase(NodeId("a"))
    kb_b = KnowledgeBase(NodeId("b"))
    network.join(kb_a)
    network.join(kb_b)
    return kb_a, kb_b


class TestZeroLoss:
    def test_every_send_delivers_without_retries(self):
        sim = Simulator(seed=5)
        network = CollectiveKnowledgeNetwork(sim=sim, loss_probability=0.0)
        kb_a, kb_b = _joined_pair(network)
        for i in range(4):
            kb_a.put(f"Feature.{i}", i, collective=True)
        sim.run(5.0)

        stats = network.delivery_stats()
        assert stats["sent"] == 4
        assert stats["delivered"] == 4
        assert stats["attempts"] == 4  # one attempt each, no second tries
        assert stats["retries"] == 0
        assert stats["lost"] == 0
        assert stats["gave_up"] == 0

    def test_convergence_is_last_delivery_time(self):
        sim = Simulator(seed=5)
        network = CollectiveKnowledgeNetwork(
            sim=sim, loss_probability=0.0, latency=0.05
        )
        kb_a, _ = _joined_pair(network)
        kb_a.put("Feature.first", 1, collective=True)
        sim.run(1.0)
        first = network.convergence_time()
        kb_a.put("Feature.second", 2, collective=True)
        sim.run(2.0)

        assert first > 0.0
        assert network.convergence_time() > first
        assert network.convergence_time() <= sim.clock.now

    def test_synchronous_network_delivers_at_time_zero(self):
        network = CollectiveKnowledgeNetwork(sim=None, loss_probability=0.0)
        kb_a, kb_b = _joined_pair(network)
        kb_a.put("Feature.sync", 1, collective=True)

        stats = network.delivery_stats()
        assert stats["delivered"] == stats["sent"] == 1
        assert kb_b.get("Feature.sync", creator=NodeId("a")) is not None
        # No sim clock: delivery happens "now", which is time zero.
        assert network.convergence_time() == 0.0

    def test_stats_aggregate_both_directions(self):
        sim = Simulator(seed=5)
        network = CollectiveKnowledgeNetwork(sim=sim, loss_probability=0.0)
        kb_a, kb_b = _joined_pair(network)
        kb_a.put("Feature.east", 1, collective=True)
        kb_b.put("Feature.west", 2, collective=True)
        sim.run(5.0)

        stats = network.delivery_stats()
        assert stats["sent"] == 2
        assert stats["delivered"] == 2
        assert {link.sent for link in network.links()} == {1}


class TestMaxLoss:
    def test_permanent_partition_exhausts_budget_and_gives_up(self):
        sim = Simulator(seed=5)
        network = CollectiveKnowledgeNetwork(
            sim=sim, loss_probability=0.0, max_retries=6
        )
        kb_a, kb_b = _joined_pair(network)
        network.add_outage(0.0, 10_000.0)
        for i in range(3):
            kb_a.put(f"Feature.{i}", i, collective=True)
        # Backoff schedule tops out well under a minute; run past it.
        sim.run(60.0)

        stats = network.delivery_stats()
        assert stats["sent"] == 3
        assert stats["delivered"] == 0
        assert stats["gave_up"] == 3
        assert stats["retries"] == 3 * 6
        assert stats["attempts"] == 3 * 7  # initial try + six retries
        assert stats["lost"] == stats["attempts"]
        assert kb_b.get("Feature.0", creator=NodeId("a")) is None

    def test_no_delivery_means_zero_convergence(self):
        sim = Simulator(seed=5)
        network = CollectiveKnowledgeNetwork(sim=sim)
        _joined_pair(network)
        network.add_outage(0.0, 10_000.0)
        sim.run(30.0)
        assert network.convergence_time() == 0.0

    def test_fire_and_forget_gives_up_immediately(self):
        sim = Simulator(seed=5)
        network = CollectiveKnowledgeNetwork(sim=sim, max_retries=0)
        kb_a, _ = _joined_pair(network)
        network.add_outage(0.0, 10_000.0)
        kb_a.put("Feature.x", 1, collective=True)
        sim.run(10.0)

        stats = network.delivery_stats()
        assert stats["attempts"] == stats["sent"] == 1
        assert stats["retries"] == 0
        assert stats["gave_up"] == 1
