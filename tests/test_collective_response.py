"""Tests for collective knowledge sync and the revocation engine."""

import pytest

from repro.core.alerts import ALERT_TOPIC, Alert
from repro.core.collective import CollectiveKnowledgeNetwork, PeerLink
from repro.core.knowledge import KnowledgeBase
from repro.core.response import RevocationEngine
from repro.eventbus.bus import EventBus
from repro.sim.engine import Simulator
from repro.sim.node import SimNode
from repro.util.ids import NodeId
from repro.util.rng import SeededRng

K1, K2, K3 = NodeId("kalis-1"), NodeId("kalis-2"), NodeId("kalis-3")


def kb_for(owner):
    return KnowledgeBase(owner, EventBus())


class TestPeerLink:
    def test_synchronous_transfer(self):
        target = kb_for(K2)
        link = PeerLink(sim=None, target_kb=target, sender=K1)
        from repro.core.knowledge import Knowgget

        link.transfer(Knowgget(label="Mobility", value="true", creator=K1))
        assert target.get("Mobility", bool, creator=K1) is True
        assert link.delivered == 1

    def test_latency_via_simulator(self):
        sim = Simulator()
        target = kb_for(K2)
        link = PeerLink(sim=sim, target_kb=target, sender=K1, latency=0.5)
        from repro.core.knowledge import Knowgget

        link.transfer(Knowgget(label="Mobility", value="true", creator=K1))
        assert target.get("Mobility", bool, creator=K1) is None  # in flight
        sim.run_until(1.0)
        assert target.get("Mobility", bool, creator=K1) is True

    def test_lossy_link_drops(self):
        """Fire-and-forget mode (max_retries=0): losses are final."""
        target = kb_for(K2)
        link = PeerLink(
            sim=None, target_kb=target, sender=K1,
            loss_probability=0.9, rng=SeededRng(1), max_retries=0,
        )
        from repro.core.knowledge import Knowgget

        for i in range(30):
            link.transfer(Knowgget(label=f"L{i}", value="1", creator=K1))
        assert link.lost > 0
        assert link.gave_up == link.lost
        assert link.delivered + link.lost == link.sent


class TestCollectiveNetwork:
    def test_collective_knowggets_propagate_to_all_peers(self):
        network = CollectiveKnowledgeNetwork(sim=None)
        kbs = [kb_for(owner) for owner in (K1, K2, K3)]
        for kb in kbs:
            network.join(kb)
        kbs[0].put("ForwardingAnomaly", True, entity=NodeId("B1"), collective=True)
        for other in kbs[1:]:
            assert other.get(
                "ForwardingAnomaly", bool, creator=K1, entity=NodeId("B1")
            ) is True

    def test_non_collective_knowggets_stay_local(self):
        network = CollectiveKnowledgeNetwork(sim=None)
        kb1, kb2 = kb_for(K1), kb_for(K2)
        network.join(kb1)
        network.join(kb2)
        kb1.put("Private", 1)
        assert kb2.get("Private", int, creator=K1) is None

    def test_update_flows_back_under_original_creator(self):
        network = CollectiveKnowledgeNetwork(sim=None)
        kb1, kb2 = kb_for(K1), kb_for(K2)
        network.join(kb1)
        network.join(kb2)
        kb1.put("Shared", 1, collective=True)
        kb1.put("Shared", 2, collective=True)  # an update, same creator
        assert kb2.get("Shared", int, creator=K1) == 2

    def test_peers_listing(self):
        network = CollectiveKnowledgeNetwork(sim=None)
        for owner in (K1, K2, K3):
            network.join(kb_for(owner))
        assert network.peers_of(K1) == [K2, K3]
        assert network.member_count() == 3

    def test_double_join_rejected(self):
        network = CollectiveKnowledgeNetwork(sim=None)
        network.join(kb_for(K1))
        with pytest.raises(ValueError):
            network.join(kb_for(K1))


class TestRevocationEngine:
    @staticmethod
    def _alert(suspects, attack="blackhole"):
        return Alert(
            attack=attack, timestamp=1.0, detected_by="m",
            kalis_node=K1, suspects=tuple(suspects),
        )

    def test_suspects_removed_from_simulation(self):
        sim = Simulator()
        bus = EventBus()
        target = sim.add_node(SimNode(NodeId("evil")))
        engine = RevocationEngine(sim, bus)
        bus.publish(ALERT_TOPIC, self._alert([NodeId("evil")]))
        assert not sim.has_node(NodeId("evil"))
        assert engine.revoked_nodes == [NodeId("evil")]

    def test_each_node_revoked_once(self):
        sim = Simulator()
        bus = EventBus()
        sim.add_node(SimNode(NodeId("evil")))
        engine = RevocationEngine(sim, bus)
        bus.publish(ALERT_TOPIC, self._alert([NodeId("evil")]))
        bus.publish(ALERT_TOPIC, self._alert([NodeId("evil")]))
        assert len(engine.revocations) == 1

    def test_max_revocations_cap(self):
        sim = Simulator()
        bus = EventBus()
        for name in ("a", "b", "c"):
            sim.add_node(SimNode(NodeId(name)))
        engine = RevocationEngine(sim, bus, max_revocations=2)
        bus.publish(
            ALERT_TOPIC, self._alert([NodeId("a"), NodeId("b"), NodeId("c")])
        )
        assert len(engine.revocations) == 2
        assert sim.has_node(NodeId("c"))

    def test_phantom_suspect_recorded_but_nothing_removed(self):
        sim = Simulator()
        bus = EventBus()
        engine = RevocationEngine(sim, bus)
        bus.publish(ALERT_TOPIC, self._alert([NodeId("ghost")]))
        assert len(engine.revocations) == 1
        assert engine.revocations[0].node == NodeId("ghost")
