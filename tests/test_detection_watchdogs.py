"""Tests for the watchdog-family modules: forwarding misbehaviour,
data alteration, sinkhole, wormhole."""


from repro.core.datastore import DataStore
from repro.core.knowledge import KnowledgeBase
from repro.core.modules.base import ModuleContext
from repro.core.modules.detection.data_alteration import DataAlterationModule
from repro.core.modules.detection.forwarding import ForwardingMisbehaviorModule
from repro.core.modules.detection.sinkhole import SinkholeModule
from repro.core.modules.detection.wormhole import WormholeModule
from repro.eventbus.bus import EventBus
from repro.net.packets.base import Medium
from repro.net.packets.ieee802154 import Ieee802154Frame
from repro.net.packets.zigbee import ZigbeePacket
from repro.sim.capture import Capture
from repro.util.ids import NodeId
from tests.conftest import ctp_beacon_capture, ctp_data_capture

SRC, FWD, ROOT = NodeId("src"), NodeId("fwd"), NodeId("root")
KALIS = NodeId("kalis-1")


def bind(module, kb=None):
    bus = kb.bus if kb is not None else EventBus()
    if kb is None:
        kb = KnowledgeBase(KALIS, bus)
    alerts = []
    bus.subscribe("alert", lambda e: alerts.append(e.payload))
    module.bind(ModuleContext(kb=kb, datastore=DataStore(), bus=bus, node_id=KALIS))
    module.active = True
    return kb, alerts


def mesh_capture(transmitter, receiver, zsrc, zdst, seq, timestamp, rssi=-55.0):
    frame = Ieee802154Frame(
        pan_id=0x22, seq=seq, src=transmitter, dst=receiver,
        payload=ZigbeePacket(src=zsrc, dst=zdst, seq=seq),
    )
    return Capture(packet=frame, timestamp=timestamp,
                   medium=Medium.IEEE_802_15_4, rssi=rssi)


class TestForwardingMisbehavior:
    @staticmethod
    def _warm_up(module, start=0.0):
        """Make FWD and ROOT known, reliably-heard transmitters."""
        module.handle(ctp_beacon_capture(ROOT, parent=ROOT, etx=0,
                                         timestamp=start))
        module.handle(ctp_beacon_capture(FWD, parent=ROOT, etx=1,
                                         timestamp=start + 0.1))
        module.handle(ctp_beacon_capture(FWD, parent=ROOT, etx=1,
                                         timestamp=start + 0.2))
        module.handle(ctp_beacon_capture(ROOT, parent=ROOT, etx=0,
                                         timestamp=start + 0.3))

    def test_requires_multihop_802154(self):
        module = ForwardingMisbehaviorModule()
        kb, _ = bind(module)
        assert not module.required(kb)
        kb.put("Multihop.802154", True)
        assert module.required(kb)

    def test_silent_forwarder_accused(self):
        module = ForwardingMisbehaviorModule(params={"detectionThresh": 3})
        kb, alerts = bind(module)
        self._warm_up(module)
        for i in range(5):
            timestamp = 1.0 + i * 2.0
            module.handle(ctp_data_capture(SRC, FWD, origin=SRC, seqno=i,
                                           timestamp=timestamp))
            # FWD never retransmits; push time past the watchdog timeout.
            module.handle(ctp_beacon_capture(ROOT, parent=ROOT, etx=0,
                                             timestamp=timestamp + 1.5))
        assert alerts
        assert alerts[0].attack == "blackhole"  # 100% drop ratio
        assert alerts[0].suspects == (FWD,)
        assert kb.get("ForwardingAnomaly", bool, entity=FWD) is True

    def test_partial_dropping_classified_selective(self):
        module = ForwardingMisbehaviorModule(
            params={"detectionThresh": 3, "blackholeRatio": 0.9}
        )
        kb, alerts = bind(module)
        self._warm_up(module)
        for i in range(10):
            timestamp = 1.0 + i * 2.0
            module.handle(ctp_data_capture(SRC, FWD, origin=SRC, seqno=i,
                                           timestamp=timestamp))
            if i % 2 == 0:  # forwards half of the traffic
                module.handle(ctp_data_capture(FWD, ROOT, origin=SRC, seqno=i,
                                               timestamp=timestamp + 0.3, thl=1))
            module.handle(ctp_beacon_capture(ROOT, parent=ROOT, etx=0,
                                             timestamp=timestamp + 1.5))
        assert alerts
        assert alerts[0].attack == "selective_forwarding"

    def test_honest_forwarder_not_accused(self):
        module = ForwardingMisbehaviorModule(params={"detectionThresh": 3})
        _, alerts = bind(module)
        self._warm_up(module)
        for i in range(10):
            timestamp = 1.0 + i * 2.0
            module.handle(ctp_data_capture(SRC, FWD, origin=SRC, seqno=i,
                                           timestamp=timestamp))
            module.handle(ctp_data_capture(FWD, ROOT, origin=SRC, seqno=i,
                                           timestamp=timestamp + 0.3, thl=1))
        assert alerts == []

    def test_root_is_exempt(self):
        """Frames delivered to the collection root need no retransmission."""
        module = ForwardingMisbehaviorModule(params={"detectionThresh": 2})
        _, alerts = bind(module)
        self._warm_up(module)
        for i in range(6):
            timestamp = 1.0 + i * 2.0
            module.handle(ctp_data_capture(FWD, ROOT, origin=SRC, seqno=i,
                                           timestamp=timestamp, thl=1))
            module.handle(ctp_beacon_capture(FWD, parent=ROOT, etx=1,
                                             timestamp=timestamp + 1.5))
        assert alerts == []

    def test_out_of_range_forwarder_not_monitored(self):
        """A forwarder the sniffer can barely hear must not be judged."""
        module = ForwardingMisbehaviorModule(
            params={"detectionThresh": 2, "monitorRssi": -82.0}
        )
        _, alerts = bind(module)
        # FWD's transmissions arrive at the edge of sensitivity.
        module.handle(ctp_beacon_capture(FWD, parent=ROOT, etx=1,
                                         timestamp=0.0, rssi=-89.0))
        module.handle(ctp_beacon_capture(FWD, parent=ROOT, etx=1,
                                         timestamp=0.1, rssi=-89.0))
        for i in range(6):
            timestamp = 1.0 + i * 2.0
            module.handle(ctp_data_capture(SRC, FWD, origin=SRC, seqno=i,
                                           timestamp=timestamp))
            module.handle(ctp_beacon_capture(SRC, parent=FWD, etx=2,
                                             timestamp=timestamp + 1.5))
        assert alerts == []

    def test_wormhole_knowledge_suppresses_blackhole(self):
        module = ForwardingMisbehaviorModule(params={"detectionThresh": 3})
        kb, alerts = bind(module)
        kb.put("WormholeInvolving", True, entity=FWD)
        self._warm_up(module)
        for i in range(6):
            timestamp = 1.0 + i * 2.0
            module.handle(ctp_data_capture(SRC, FWD, origin=SRC, seqno=i,
                                           timestamp=timestamp))
            module.handle(ctp_beacon_capture(ROOT, parent=ROOT, etx=0,
                                             timestamp=timestamp + 1.5))
        assert alerts == []


class TestDataAlteration:
    def test_tampered_relay_detected(self):
        module = DataAlterationModule(params={"detectionThresh": 2})
        _, alerts = bind(module)
        for i in range(4):
            timestamp = i * 2.0
            module.handle(ctp_data_capture(SRC, FWD, origin=SRC, seqno=i,
                                           timestamp=timestamp))
            # FWD emits a *different* flow than it received: tampering.
            module.handle(ctp_data_capture(FWD, ROOT, origin=SRC,
                                           seqno=i + 7777,
                                           timestamp=timestamp + 0.2, thl=1))
        assert alerts
        assert alerts[0].attack == "data_alteration"
        assert alerts[0].suspects == (FWD,)

    def test_faithful_relay_not_flagged(self):
        module = DataAlterationModule(params={"detectionThresh": 2})
        _, alerts = bind(module)
        for i in range(6):
            timestamp = i * 2.0
            module.handle(ctp_data_capture(SRC, FWD, origin=SRC, seqno=i,
                                           timestamp=timestamp))
            module.handle(ctp_data_capture(FWD, ROOT, origin=SRC, seqno=i,
                                           timestamp=timestamp + 0.2, thl=1))
        assert alerts == []

    def test_mostly_explained_relays_tolerated(self):
        """Missed ingress on a busy honest relay must not accuse it."""
        module = DataAlterationModule(
            params={"detectionThresh": 2, "minFabricationRatio": 0.3}
        )
        _, alerts = bind(module)
        for i in range(20):
            timestamp = i * 1.0
            if i % 10 != 0:  # sniffer hears 90% of the ingress
                module.handle(ctp_data_capture(SRC, FWD, origin=SRC, seqno=i,
                                               timestamp=timestamp))
            module.handle(ctp_data_capture(FWD, ROOT, origin=SRC, seqno=i,
                                           timestamp=timestamp + 0.2, thl=1))
        assert alerts == []

    def test_integrity_protection_knowgget_disables_module(self):
        module = DataAlterationModule()
        kb, _ = bind(module)
        kb.put("Multihop.802154", True)
        assert module.required(kb)
        kb.put("IntegrityProtection", True)
        assert not module.required(kb)


class TestSinkhole:
    def test_second_root_claimant_flagged(self):
        module = SinkholeModule(params={"minAdverts": 2})
        _, alerts = bind(module)
        module.handle(ctp_beacon_capture(ROOT, parent=ROOT, etx=0, timestamp=0.0))
        evil = NodeId("evil")
        module.handle(ctp_beacon_capture(evil, parent=evil, etx=0, timestamp=20.0))
        module.handle(ctp_beacon_capture(evil, parent=evil, etx=0, timestamp=22.0))
        assert alerts
        assert alerts[0].attack == "sinkhole"
        assert alerts[0].suspects == (evil,)
        assert alerts[0].details["established_root"] == "root"

    def test_legitimate_root_rebeaconing_is_fine(self):
        module = SinkholeModule()
        _, alerts = bind(module)
        for i in range(20):
            module.handle(ctp_beacon_capture(ROOT, parent=ROOT, etx=0,
                                             timestamp=i * 5.0))
        assert alerts == []

    def test_single_advert_below_threshold(self):
        module = SinkholeModule(params={"minAdverts": 2})
        _, alerts = bind(module)
        module.handle(ctp_beacon_capture(ROOT, parent=ROOT, etx=0, timestamp=0.0))
        module.handle(ctp_beacon_capture(NodeId("evil"), parent=NodeId("evil"),
                                         etx=0, timestamp=20.0))
        assert alerts == []


class TestWormhole:
    def test_source_anomaly_plus_forwarding_anomaly_correlate(self):
        module = WormholeModule(params={"sourceThresh": 3})
        kb, alerts = bind(module)
        entry, exit_node = NodeId("B1"), NodeId("B2")
        # A peer Kalis shared its forwarding anomaly about B1.
        from repro.core.knowledge import Knowgget

        kb.apply_remote(
            Knowgget(label="ForwardingAnomaly", value="true",
                     creator=NodeId("kalis-2"), entity=entry, collective=True),
            sender=NodeId("kalis-2"),
        )
        # Locally, B2 relays flows that never entered it.
        for i in range(4):
            module.handle(
                mesh_capture(exit_node, NodeId("next"), zsrc=SRC,
                             zdst=NodeId("dst"), seq=i, timestamp=i * 1.0)
            )
        assert any(a.attack == "wormhole" for a in alerts)
        wormhole = [a for a in alerts if a.attack == "wormhole"][0]
        assert set(wormhole.suspects) == {entry, exit_node}
        assert kb.get("TrafficSourceAnomaly", bool, entity=exit_node) is True
        assert kb.get("WormholeInvolving", bool, entity=entry) is True

    def test_no_correlation_without_peer_knowledge(self):
        module = WormholeModule(params={"sourceThresh": 3})
        kb, alerts = bind(module)
        for i in range(6):
            module.handle(
                mesh_capture(NodeId("B2"), NodeId("next"), zsrc=SRC,
                             zdst=NodeId("dst"), seq=i, timestamp=i * 1.0)
            )
        assert not any(a.attack == "wormhole" for a in alerts)

    def test_explained_relays_no_source_anomaly(self):
        module = WormholeModule(params={"sourceThresh": 3})
        kb, _ = bind(module)
        relay = NodeId("honest")
        for i in range(8):
            timestamp = i * 1.0
            module.handle(
                mesh_capture(SRC, relay, zsrc=SRC, zdst=NodeId("dst"),
                             seq=i, timestamp=timestamp)
            )
            module.handle(
                mesh_capture(relay, NodeId("dst"), zsrc=SRC, zdst=NodeId("dst"),
                             seq=i, timestamp=timestamp + 0.2)
            )
        assert kb.get("TrafficSourceAnomaly", bool, entity=relay) is None
