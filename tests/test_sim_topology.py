"""Tests for topology generators, with hypothesis properties."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.topology import (
    connectivity_graph,
    grid_positions,
    hop_distance,
    is_connected,
    is_single_hop,
    line_positions,
    random_positions,
    star_positions,
)
from repro.util.ids import NodeId, make_node_id
from repro.util.rng import SeededRng


def as_placement(positions):
    return {make_node_id("n", i): p for i, p in enumerate(positions)}


class TestGenerators:
    def test_star_is_single_hop_within_range(self):
        placement = as_placement(star_positions(6, radius=10.0))
        assert is_single_hop(placement, radio_range=25.0)

    def test_line_is_multi_hop(self):
        placement = as_placement(line_positions(5, spacing=30.0))
        assert not is_single_hop(placement, radio_range=40.0)
        assert is_connected(placement, radio_range=40.0)

    def test_line_hop_distance(self):
        placement = as_placement(line_positions(5, spacing=30.0))
        assert hop_distance(
            placement, 40.0, make_node_id("n", 0), make_node_id("n", 4)
        ) == 4

    def test_disconnected_hop_distance_is_none(self):
        placement = as_placement(line_positions(3, spacing=100.0))
        assert hop_distance(
            placement, 40.0, make_node_id("n", 0), make_node_id("n", 2)
        ) is None

    def test_grid_shape(self):
        positions = grid_positions(2, 3, spacing=5.0)
        assert len(positions) == 6
        assert positions[0] == (0.0, 0.0)
        assert positions[-1] == (10.0, 5.0)

    def test_generators_validate_counts(self):
        with pytest.raises(ValueError):
            star_positions(0, 1.0)
        with pytest.raises(ValueError):
            line_positions(0, 1.0)
        with pytest.raises(ValueError):
            grid_positions(0, 3, 1.0)

    def test_random_positions_respect_area_and_separation(self):
        positions = random_positions(
            10, (0, 0, 50, 50), rng=SeededRng(1), min_separation=3.0
        )
        assert len(positions) == 10
        for x, y in positions:
            assert 0 <= x <= 50 and 0 <= y <= 50
        for i, a in enumerate(positions):
            for b in positions[i + 1 :]:
                assert math.hypot(a[0] - b[0], a[1] - b[1]) >= 3.0

    def test_random_positions_impossible_separation_raises(self):
        with pytest.raises(RuntimeError):
            random_positions(50, (0, 0, 1, 1), rng=SeededRng(1), min_separation=5.0)

    def test_empty_placement_is_connected(self):
        assert is_connected({}, 10.0)


class TestConnectivityGraph:
    def test_edges_match_distances(self):
        placement = {
            NodeId("a"): (0.0, 0.0),
            NodeId("b"): (5.0, 0.0),
            NodeId("c"): (100.0, 0.0),
        }
        graph = connectivity_graph(placement, radio_range=10.0)
        assert graph.has_edge(NodeId("a"), NodeId("b"))
        assert not graph.has_edge(NodeId("a"), NodeId("c"))


@settings(max_examples=40)
@given(
    count=st.integers(2, 10),
    radius=st.floats(1.0, 50.0, allow_nan=False),
)
def test_star_nodes_equidistant_from_origin(count, radius):
    for x, y in star_positions(count, radius):
        assert math.hypot(x, y) == pytest.approx(radius, rel=1e-6)


@settings(max_examples=40)
@given(
    count=st.integers(2, 8),
    spacing=st.floats(1.0, 50.0, allow_nan=False),
)
def test_line_single_hop_iff_range_covers_full_span(count, spacing):
    placement = as_placement(line_positions(count, spacing))
    full_span = spacing * (count - 1)
    assert is_single_hop(placement, radio_range=full_span + 0.01)
    if count > 2:
        assert not is_single_hop(placement, radio_range=full_span - 0.01)


@settings(max_examples=40)
@given(count=st.integers(2, 8), spacing=st.floats(1.0, 30.0, allow_nan=False))
def test_line_connected_iff_range_covers_spacing(count, spacing):
    placement = as_placement(line_positions(count, spacing))
    assert is_connected(placement, radio_range=spacing + 0.01)
    assert not is_connected(placement, radio_range=spacing - 0.01)
