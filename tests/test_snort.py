"""Tests for the Snort baseline: rule model, parser, engine, ruleset."""

import pytest

from repro.baselines.snort.engine import SnortEngine, _flags_match, _port_matches
from repro.baselines.snort.parser import RuleParseError, parse_rule, parse_rules
from repro.baselines.snort.rule import Threshold
from repro.baselines.snort.ruleset import community_ruleset, custom_iot_rules
from repro.net.packets.tcp import TcpFlags
from repro.util.ids import NodeId
from tests.conftest import ctp_data_capture, wifi_icmp_capture, wifi_tcp_capture

A, V = NodeId("attacker"), NodeId("victim")

FLOOD_RULE = (
    'alert icmp any any -> $HOME_NET any (msg:"ICMP flood"; itype:0; '
    "threshold:type both, track by_dst, count 5, seconds 10; "
    "metadata:attack icmp_flood; classtype:attempted-dos; sid:1; rev:2;)"
)


class TestParser:
    def test_parse_header_and_options(self):
        rule = parse_rule(FLOOD_RULE)
        assert rule.action == "alert"
        assert rule.proto == "icmp"
        assert rule.dst == "$HOME_NET"
        assert rule.itype == 0
        assert rule.sid == 1
        assert rule.rev == 2
        assert rule.classtype == "attempted-dos"
        assert rule.metadata == {"attack": "icmp_flood"}
        assert rule.threshold == Threshold(
            kind="both", track="by_dst", count=5, seconds=10.0
        )

    def test_attack_label_prefers_metadata(self):
        rule = parse_rule(FLOOD_RULE)
        assert rule.attack_label == "icmp_flood"

    def test_attack_label_falls_back_to_classtype(self):
        rule = parse_rule(
            'alert tcp any any -> any 80 (msg:"x"; classtype:web-attack; sid:2; rev:1;)'
        )
        assert rule.attack_label == "web-attack"

    def test_content_with_semicolons_inside_quotes(self):
        rule = parse_rule(
            'alert tcp any any -> any 80 (msg:"a;b"; content:"x;y"; sid:3; rev:1;)'
        )
        assert rule.msg == "a;b"
        assert rule.contents == ("x;y",)

    def test_flags_option(self):
        rule = parse_rule('alert tcp any any -> any any (flags:S; sid:4; rev:1;)')
        assert rule.flags == "S"

    def test_ruleset_with_comments_and_blanks(self):
        text = f"# comment\n\n{FLOOD_RULE}\n"
        assert len(parse_rules(text)) == 1

    def test_line_continuation(self):
        text = 'alert tcp any any -> any 80 \\\n(msg:"x"; sid:5; rev:1;)'
        assert parse_rules(text)[0].sid == 5

    def test_errors(self):
        with pytest.raises(RuleParseError, match="header"):
            parse_rule("alert tcp any any (sid:1;)")
        with pytest.raises(RuleParseError, match="unknown rule option"):
            parse_rule("alert tcp any any -> any any (bogus:1; sid:1;)")
        with pytest.raises(RuleParseError, match="threshold"):
            parse_rule(
                "alert tcp any any -> any any (threshold:type both; sid:1;)"
            )
        with pytest.raises(RuleParseError, match="line 2"):
            parse_rules("# fine\nalert broken\n")

    def test_inert_options_accepted(self):
        rule = parse_rule(
            'alert tcp any any -> any 80 (msg:"x"; flow:to_server; nocase; '
            "reference:cve,2021-1; sid:6; rev:1;)"
        )
        assert rule.sid == 6

    def test_render_roundtrip(self):
        rule = parse_rule(FLOOD_RULE)
        assert parse_rule(rule.render()) == rule


class TestMatchers:
    def test_port_specs(self):
        assert _port_matches("any", None)
        assert _port_matches("80", 80)
        assert not _port_matches("80", 81)
        assert _port_matches("100:200", 150)
        assert not _port_matches("100:200", 250)
        assert _port_matches(":100", 50)
        assert _port_matches("100:", 50000)
        assert _port_matches("!80", 81)
        assert not _port_matches("80", None)

    def test_flags_matching(self):
        assert _flags_match("S", TcpFlags.SYN)
        assert not _flags_match("S", TcpFlags.SYN | TcpFlags.ACK)
        assert _flags_match("SA", TcpFlags.SYN | TcpFlags.ACK)
        assert _flags_match("S+", TcpFlags.SYN | TcpFlags.ACK)
        assert not _flags_match("S+", TcpFlags.ACK)


class TestEngine:
    def test_threshold_fires_once_per_window(self):
        engine = SnortEngine(parse_rules(FLOOD_RULE))
        for i in range(20):
            engine.on_capture(
                wifi_icmp_capture(A, V, "10.23.5.5", i * 0.1,
                                  src_ip=f"172.16.0.{i + 1}")
            )
        assert len(engine.alerts) == 1
        assert engine.alerts.alerts[0].attack == "icmp_flood"
        assert engine.alerts.alerts[0].suspects == (A,)

    def test_below_threshold_silent(self):
        engine = SnortEngine(parse_rules(FLOOD_RULE))
        for i in range(4):
            engine.on_capture(wifi_icmp_capture(A, V, "10.23.5.5", i * 0.1))
        assert len(engine.alerts) == 0

    def test_zigbee_is_invisible(self):
        """Snort has no 802.15.4 radio — the §VI-B2 structural blindness."""
        engine = SnortEngine(community_ruleset(target_size=50))
        for i in range(50):
            engine.on_capture(ctp_data_capture(A, V, origin=A, seqno=i,
                                               timestamp=i * 0.1))
        assert engine.packets_processed == 0
        assert engine.packets_invisible == 50
        assert engine.work_units == 0.0

    def test_external_net_variable(self):
        rule = parse_rule(
            'alert icmp $EXTERNAL_NET any -> $HOME_NET any '
            '(msg:"x"; itype:0; metadata:attack t; sid:9; rev:1;)'
        )
        engine = SnortEngine([rule], home_net_prefix="10.23.")
        # Internal source: $EXTERNAL_NET does not match.
        engine.on_capture(
            wifi_icmp_capture(A, V, "10.23.5.5", 0.0, src_ip="10.23.1.1")
        )
        assert len(engine.alerts) == 0
        engine.on_capture(
            wifi_icmp_capture(A, V, "10.23.5.5", 1.0, src_ip="8.8.8.8")
        )
        assert len(engine.alerts) == 1

    def test_content_rules_never_match_encrypted_payloads(self):
        rule = parse_rule(
            'alert tcp any any -> any 443 (msg:"x"; content:"evil"; '
            "metadata:attack t; sid:10; rev:1;)"
        )
        engine = SnortEngine([rule])
        engine.on_capture(wifi_tcp_capture(A, V, "10.23.5.5", 0.0, dport=443))
        assert len(engine.alerts) == 0
        assert engine.work_units > 0  # ...but the evaluation cost was paid

    def test_work_scales_with_ruleset_size(self):
        small = SnortEngine(community_ruleset(target_size=100))
        large = SnortEngine(community_ruleset(target_size=1000))
        capture = wifi_tcp_capture(A, V, "10.23.5.5", 0.0, dport=443)
        small.on_capture(capture)
        large.on_capture(capture)
        assert large.work_units > small.work_units * 5


class TestRuleset:
    def test_custom_rules_parse(self):
        rules = custom_iot_rules()
        assert len(rules) >= 6
        sids = [rule.sid for rule in rules]
        assert len(sids) == len(set(sids))

    def test_community_size_and_uniqueness(self):
        rules = community_ruleset(target_size=500)
        assert len(rules) == 500
        sids = [rule.sid for rule in rules]
        assert len(sids) == len(set(sids))

    def test_flood_and_smurf_rules_both_fire_on_reply_burst(self):
        """The classification ambiguity the paper measures (§VI-B1)."""
        engine = SnortEngine(custom_iot_rules())
        for i in range(20):
            engine.on_capture(
                wifi_icmp_capture(A, V, "10.23.5.5", i * 0.1,
                                  src_ip=f"172.16.0.{i + 1}")
            )
        attacks = engine.alerts.attacks_seen()
        assert "icmp_flood" in attacks
        assert "smurf" in attacks
