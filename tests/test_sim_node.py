"""Tests for node reception semantics and the sniffer."""

import pytest

from repro.net.addressing import BROADCAST
from repro.net.packets.base import Medium
from repro.net.packets.ieee802154 import Ieee802154Frame
from repro.sim.engine import Simulator
from repro.sim.node import SimNode, SnifferNode, frame_destination
from repro.util.ids import NodeId


def frame(src: NodeId, dst: NodeId) -> Ieee802154Frame:
    return Ieee802154Frame(pan_id=1, seq=0, src=src, dst=dst)


class Recorder(SimNode):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.receives = []
        self.overhears = []

    def on_receive(self, packet, medium, rssi, timestamp):
        self.receives.append(packet)

    def on_overhear(self, packet, medium, rssi, timestamp):
        self.overhears.append(packet)


@pytest.fixture
def world():
    sim = Simulator(seed=3)
    sender = sim.add_node(
        SimNode(NodeId("s"), (0, 0), mediums=(Medium.IEEE_802_15_4,))
    )
    addressed = sim.add_node(
        Recorder(NodeId("addr"), (10, 0), mediums=(Medium.IEEE_802_15_4,))
    )
    bystander = sim.add_node(
        Recorder(NodeId("stand"), (0, 10), mediums=(Medium.IEEE_802_15_4,))
    )
    promiscuous = sim.add_node(
        Recorder(
            NodeId("sniff"), (5, 5), mediums=(Medium.IEEE_802_15_4,),
            promiscuous=True,
        )
    )
    sim.run_until(0.01)
    return sim, sender, addressed, bystander, promiscuous


class TestAddressing:
    def test_unicast_reaches_only_addressee(self, world):
        sim, sender, addressed, bystander, _ = world
        sender.send(Medium.IEEE_802_15_4, frame(sender.node_id, addressed.node_id))
        sim.run(1.0)
        assert len(addressed.receives) == 1
        assert len(bystander.receives) == 0

    def test_broadcast_reaches_everyone(self, world):
        sim, sender, addressed, bystander, _ = world
        sender.send(Medium.IEEE_802_15_4, frame(sender.node_id, BROADCAST))
        sim.run(1.0)
        assert len(addressed.receives) == 1
        assert len(bystander.receives) == 1

    def test_promiscuous_overhears_unicast_to_others(self, world):
        sim, sender, addressed, _, promiscuous = world
        sender.send(Medium.IEEE_802_15_4, frame(sender.node_id, addressed.node_id))
        sim.run(1.0)
        assert len(promiscuous.overhears) == 1
        assert len(promiscuous.receives) == 0

    def test_detached_node_receives_nothing(self, world):
        sim, sender, addressed, _, _ = world
        sender.send(Medium.IEEE_802_15_4, frame(sender.node_id, addressed.node_id))
        sim.remove_node(addressed.node_id)
        sim.run(1.0)  # delivery was already scheduled but node detached
        assert len(addressed.receives) == 0

    def test_frame_destination_helper(self):
        assert frame_destination(frame(NodeId("a"), NodeId("b"))) == NodeId("b")

        from repro.net.packets.base import RawPayload

        assert frame_destination(RawPayload(length=1)) is None

    def test_node_requires_a_medium(self):
        with pytest.raises(ValueError):
            SimNode(NodeId("x"), mediums=())


class TestSniffer:
    def test_captures_include_rssi_and_observer(self):
        sim = Simulator(seed=4)
        sender = sim.add_node(
            SimNode(NodeId("s"), (0, 0), mediums=(Medium.IEEE_802_15_4,))
        )
        sniffer = sim.add_node(SnifferNode(NodeId("k"), (8, 0)))
        captures = []
        sniffer.add_listener(captures.append)
        sim.run_until(0.01)
        sender.send(Medium.IEEE_802_15_4, frame(sender.node_id, BROADCAST))
        sim.run(1.0)
        assert len(captures) == 1
        capture = captures[0]
        assert capture.observer == NodeId("k")
        assert capture.medium is Medium.IEEE_802_15_4
        assert capture.rssi < 0
        assert capture.timestamp > 0
        assert sniffer.captures == 1

    def test_multiple_listeners_all_called(self):
        sim = Simulator(seed=4)
        sender = sim.add_node(
            SimNode(NodeId("s"), (0, 0), mediums=(Medium.IEEE_802_15_4,))
        )
        sniffer = sim.add_node(SnifferNode(NodeId("k"), (8, 0)))
        first, second = [], []
        sniffer.add_listener(first.append)
        sniffer.add_listener(second.append)
        sim.run_until(0.01)
        sender.send(Medium.IEEE_802_15_4, frame(sender.node_id, BROADCAST))
        sim.run(1.0)
        assert len(first) == len(second) == 1

    def test_capture_summary_renders(self):
        sim = Simulator(seed=4)
        sender = sim.add_node(
            SimNode(NodeId("s"), (0, 0), mediums=(Medium.IEEE_802_15_4,))
        )
        sniffer = sim.add_node(SnifferNode(NodeId("k"), (8, 0)))
        captures = []
        sniffer.add_listener(captures.append)
        sim.run_until(0.01)
        sender.send(Medium.IEEE_802_15_4, frame(sender.node_id, BROADCAST))
        sim.run(1.0)
        text = captures[0].summary()
        assert "802.15.4" in text
        assert "dBm" in text
