"""Tests for mobility models."""

import math

import pytest

from repro.sim.engine import Simulator
from repro.sim.mobility import (
    RandomWaypointMobility,
    StaticMobility,
    TogglingMobility,
)
from repro.sim.node import SimNode
from repro.util.ids import NodeId
from repro.util.rng import SeededRng


def _world(count=3):
    sim = Simulator(seed=9)
    nodes = [
        sim.add_node(SimNode(NodeId(f"n-{i}"), (float(i * 5), 0.0)))
        for i in range(count)
    ]
    sim.run_until(0.01)
    return sim, nodes


class TestStatic:
    def test_nodes_never_move(self):
        sim, nodes = _world()
        before = [n.position for n in nodes]
        StaticMobility([n.node_id for n in nodes]).install(sim)
        sim.run(20.0)
        assert [n.position for n in nodes] == before

    def test_not_mobile(self):
        assert not StaticMobility([NodeId("x")]).is_mobile_now


class TestRandomWaypoint:
    def test_nodes_move(self):
        sim, nodes = _world()
        model = RandomWaypointMobility(
            [n.node_id for n in nodes], area=(0, 0, 50, 50), speed=2.0,
            rng=SeededRng(1),
        )
        model.install(sim)
        before = [n.position for n in nodes]
        sim.run(10.0)
        moved = sum(1 for n, b in zip(nodes, before) if n.position != b)
        assert moved == len(nodes)

    def test_speed_bounds_step_length(self):
        sim, nodes = _world(1)
        model = RandomWaypointMobility(
            [nodes[0].node_id], area=(0, 0, 100, 100), speed=3.0,
            update_interval=1.0, rng=SeededRng(2),
        )
        model.install(sim)
        previous = nodes[0].position
        for _ in range(10):
            sim.run(1.0)
            current = nodes[0].position
            step = math.hypot(current[0] - previous[0], current[1] - previous[1])
            assert step <= 3.0 + 1e-9
            previous = current

    def test_positions_stay_in_area(self):
        sim, nodes = _world(2)
        area = (0.0, 0.0, 30.0, 30.0)
        model = RandomWaypointMobility(
            [n.node_id for n in nodes], area=area, speed=5.0, rng=SeededRng(3)
        )
        model.install(sim)
        sim.run(60.0)
        for node in nodes:
            x, y = node.position
            # Starting positions may lie outside; eventually bounded.
            assert -0.1 <= x <= 30.1
            assert -0.1 <= y <= 30.1

    def test_removed_node_is_skipped(self):
        sim, nodes = _world(2)
        model = RandomWaypointMobility(
            [n.node_id for n in nodes], area=(0, 0, 10, 10), speed=1.0,
            rng=SeededRng(4),
        )
        model.install(sim)
        sim.remove_node(nodes[0].node_id)
        sim.run(5.0)  # must not raise

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWaypointMobility([NodeId("x")], area=(0, 0, 0, 10))
        with pytest.raises(ValueError):
            RandomWaypointMobility([NodeId("x")], area=(0, 0, 10, 10), speed=0.0)


class TestToggling:
    def test_alternates_phases(self):
        sim, nodes = _world(2)
        model = TogglingMobility(
            [n.node_id for n in nodes], area=(0, 0, 40, 40), speed=3.0,
            phase_range=(5.0, 8.0), rng=SeededRng(5),
        )
        model.install(sim)
        sim.run(60.0)
        states = [state for _, state in model.phase_history]
        assert True in states and False in states
        # Phases strictly alternate.
        for earlier, later in zip(states, states[1:]):
            assert earlier != later

    def test_mobile_at_reconstructs_history(self):
        sim, nodes = _world(2)
        model = TogglingMobility(
            [n.node_id for n in nodes], area=(0, 0, 40, 40),
            phase_range=(5.0, 8.0), rng=SeededRng(6), start_mobile=True,
        )
        model.install(sim)
        sim.run(40.0)
        for change_time, state in model.phase_history:
            assert model.mobile_at(change_time + 0.01) == state

    def test_static_phase_keeps_positions(self):
        sim, nodes = _world(2)
        model = TogglingMobility(
            [n.node_id for n in nodes], area=(0, 0, 40, 40),
            phase_range=(1000.0, 1001.0), rng=SeededRng(7), start_mobile=False,
        )
        model.install(sim)
        before = [n.position for n in nodes]
        sim.run(30.0)
        assert [n.position for n in nodes] == before

    def test_invalid_phase_range(self):
        with pytest.raises(ValueError):
            TogglingMobility([NodeId("x")], area=(0, 0, 1, 1), phase_range=(5, 2))
