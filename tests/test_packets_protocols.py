"""Per-protocol packet model tests: validation and forwarding semantics."""

import pytest

from repro.net.packets.base import PacketKind
from repro.net.packets.bluetooth import BlePacket, BleRole
from repro.net.packets.ctp import CtpDataFrame, CtpRoutingFrame
from repro.net.packets.icmp import IcmpMessage, IcmpType
from repro.net.packets.ieee802154 import FrameType, Ieee802154Frame
from repro.net.packets.ip import IpPacket
from repro.net.packets.rpl import INFINITE_RANK, ROOT_RANK, RplDao, RplDio, RplDis
from repro.net.packets.sixlowpan import SixLowpanPacket
from repro.net.packets.tcp import TcpFlags, TcpSegment
from repro.net.packets.udp import UdpDatagram
from repro.net.packets.wifi import WifiFrame, WifiFrameKind
from repro.net.packets.zigbee import ZigbeeKind, ZigbeePacket
from repro.util.ids import NodeId

A, B = NodeId("a"), NodeId("b")


class TestIeee802154:
    def test_pan_id_bounds(self):
        with pytest.raises(ValueError):
            Ieee802154Frame(pan_id=0x10000, seq=0, src=A, dst=B)
        with pytest.raises(ValueError):
            Ieee802154Frame(pan_id=-1, seq=0, src=A, dst=B)

    def test_negative_seq_rejected(self):
        with pytest.raises(ValueError):
            Ieee802154Frame(pan_id=1, seq=-1, src=A, dst=B)

    def test_default_frame_type(self):
        frame = Ieee802154Frame(pan_id=1, seq=0, src=A, dst=B)
        assert frame.frame_type is FrameType.DATA


class TestZigbee:
    def test_forwarded_decrements_radius(self):
        packet = ZigbeePacket(src=A, dst=B, seq=1, radius=5)
        assert packet.forwarded().radius == 4
        assert packet.forwarded().src == A  # originator unchanged

    def test_forwarding_exhausted_radius_fails(self):
        packet = ZigbeePacket(src=A, dst=B, seq=1, radius=0)
        with pytest.raises(ValueError):
            packet.forwarded()

    def test_kind_classification(self):
        data = ZigbeePacket(src=A, dst=B, seq=1)
        routing = ZigbeePacket(
            src=A, dst=B, seq=1, zigbee_kind=ZigbeeKind.ROUTE_REQUEST
        )
        assert data.kind() is PacketKind.ZIGBEE_DATA
        assert routing.kind() is PacketKind.ZIGBEE_ROUTING

    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            ZigbeePacket(src=A, dst=B, seq=-1)
        with pytest.raises(ValueError):
            ZigbeePacket(src=A, dst=B, seq=0, radius=-1)


class TestCtp:
    def test_forwarded_increments_thl(self):
        data = CtpDataFrame(origin=A, seqno=7, thl=2, etx=3)
        forwarded = data.forwarded(new_etx=2)
        assert forwarded.thl == 3
        assert forwarded.seqno == 7
        assert forwarded.origin == A
        assert forwarded.etx == 2

    def test_kinds(self):
        assert CtpDataFrame(origin=A, seqno=0).kind() is PacketKind.CTP_DATA
        assert CtpRoutingFrame(parent=A, etx=1).kind() is PacketKind.CTP_ROUTING

    def test_validation(self):
        with pytest.raises(ValueError):
            CtpDataFrame(origin=A, seqno=-1)
        with pytest.raises(ValueError):
            CtpRoutingFrame(parent=A, etx=-1)


class TestSixLowpan:
    def test_forwarded_decrements_hop_limit(self):
        packet = SixLowpanPacket(src=A, dst=B, hop_limit=10)
        assert packet.forwarded().hop_limit == 9

    def test_exhausted_hop_limit(self):
        with pytest.raises(ValueError):
            SixLowpanPacket(src=A, dst=B, hop_limit=0).forwarded()

    def test_hop_limit_bounds(self):
        with pytest.raises(ValueError):
            SixLowpanPacket(src=A, dst=B, hop_limit=256)


class TestRpl:
    def test_rank_constants(self):
        assert ROOT_RANK < INFINITE_RANK

    def test_dio_validation(self):
        with pytest.raises(ValueError):
            RplDio(dodag_id="d", rank=-1)

    def test_all_control_kinds(self):
        assert RplDio(dodag_id="d", rank=256).kind() is PacketKind.RPL_CONTROL
        assert RplDao(target=A, parent=B).kind() is PacketKind.RPL_CONTROL
        assert RplDis().kind() is PacketKind.RPL_CONTROL


class TestIp:
    def test_forwarded_decrements_ttl(self):
        packet = IpPacket(src_ip="1.1.1.1", dst_ip="2.2.2.2", ttl=10)
        assert packet.forwarded().ttl == 9

    def test_exhausted_ttl(self):
        with pytest.raises(ValueError):
            IpPacket(src_ip="a", dst_ip="b", ttl=0).forwarded()

    def test_version_validation(self):
        with pytest.raises(ValueError):
            IpPacket(src_ip="a", dst_ip="b", version=5)

    def test_empty_addresses_rejected(self):
        with pytest.raises(ValueError):
            IpPacket(src_ip="", dst_ip="b")


class TestTcp:
    def test_flag_predicates(self):
        syn = TcpSegment(sport=1, dport=2, flags=TcpFlags.SYN)
        syn_ack = TcpSegment(sport=1, dport=2, flags=TcpFlags.SYN | TcpFlags.ACK)
        ack = TcpSegment(sport=1, dport=2, flags=TcpFlags.ACK)
        assert syn.is_syn and not syn.is_syn_ack and not syn.is_pure_ack
        assert syn_ack.is_syn_ack and not syn_ack.is_syn
        assert ack.is_pure_ack and not ack.is_syn

    def test_kinds(self):
        assert (
            TcpSegment(sport=1, dport=2, flags=TcpFlags.SYN).kind()
            is PacketKind.TCP_SYN
        )
        assert (
            TcpSegment(sport=1, dport=2, flags=TcpFlags.ACK).kind()
            is PacketKind.TCP_ACK
        )
        assert (
            TcpSegment(sport=1, dport=2, flags=TcpFlags.FIN | TcpFlags.ACK).kind()
            is PacketKind.TCP_OTHER
        )

    def test_port_validation(self):
        with pytest.raises(ValueError):
            TcpSegment(sport=-1, dport=2)
        with pytest.raises(ValueError):
            TcpSegment(sport=1, dport=70000)


class TestUdpAndBle:
    def test_udp_kind(self):
        assert UdpDatagram(sport=1, dport=2).kind() is PacketKind.UDP

    def test_udp_port_validation(self):
        with pytest.raises(ValueError):
            UdpDatagram(sport=65536, dport=2)

    def test_ble_channel_validation(self):
        with pytest.raises(ValueError):
            BlePacket(src=A, dst=B, channel=40)

    def test_ble_kind(self):
        assert BlePacket(src=A, dst=B).kind() is PacketKind.BLE

    def test_ble_roles(self):
        packet = BlePacket(src=A, dst=B, role=BleRole.DATA, data_length=12)
        assert packet.size_bytes == BlePacket.HEADER_BYTES + 12


class TestWifi:
    def test_management_kind(self):
        beacon = WifiFrame(src=A, dst=B, wifi_kind=WifiFrameKind.BEACON)
        assert beacon.kind() is PacketKind.WIFI_MGMT

    def test_mesh_relay_flag(self):
        plain = WifiFrame(src=A, dst=B)
        relayed = WifiFrame(src=A, dst=B, mesh_src=NodeId("m"), mesh_dst=B)
        assert not plain.is_mesh_relayed
        assert relayed.is_mesh_relayed

    def test_icmp_validation(self):
        with pytest.raises(ValueError):
            IcmpMessage(icmp_type=IcmpType.ECHO_REPLY, identifier=-1)
