"""Tests for knowggets and the Knowledge Base (paper §IV-B3 / §V)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.knowledge import (
    KNOWLEDGE_TOPIC_PREFIX,
    Knowgget,
    KnowledgeBase,
    decode_key,
    encode_key,
    encode_value,
    parse_bool,
)
from repro.util.ids import NodeId

T1, T2 = NodeId("T1"), NodeId("T2")
SENSOR = NodeId("SensorA")


class TestKeyEncoding:
    def test_paper_figure5_examples(self):
        """The exact keys from the paper's Figure 5b."""
        assert encode_key(NodeId("K1"), "Multihop") == "K1$Multihop"
        assert (
            encode_key(NodeId("K1"), "SignalStrength", SENSOR)
            == "K1$SignalStrength@SensorA"
        )
        assert (
            encode_key(NodeId("K1"), "TrafficFrequency.TCPSYN")
            == "K1$TrafficFrequency.TCPSYN"
        )

    def test_decode_inverts_encode(self):
        creator, label, entity = decode_key("T1$TrafficFrequency.TCPSYN@SensorA")
        assert creator == T1
        assert label == "TrafficFrequency.TCPSYN"
        assert entity == SENSOR

    def test_decode_without_entity(self):
        assert decode_key("T1$Multihop") == (T1, "Multihop", None)

    def test_malformed_keys_rejected(self):
        for bad in ("nolabel", "$label", "T1$", "T1$label@"):
            with pytest.raises(ValueError):
                decode_key(bad)

    def test_label_may_not_contain_separators(self):
        with pytest.raises(ValueError):
            encode_key(T1, "a$b")
        with pytest.raises(ValueError):
            encode_key(T1, "a@b")
        with pytest.raises(ValueError):
            encode_key(T1, "")


class TestValueParsing:
    def test_bool_encoding(self):
        assert encode_value(True) == "true"
        assert encode_value(False) == "false"
        assert parse_bool("true") is True
        assert parse_bool(" FALSE ") is False

    def test_bad_bool(self):
        with pytest.raises(ValueError):
            parse_bool("maybe")

    def test_knowgget_typed_parsing(self):
        knowgget = Knowgget(label="MonitoredNodes", value="8", creator=T1)
        assert knowgget.parsed(int) == 8
        assert knowgget.parsed(str) == "8"
        assert knowgget.parsed(float) == 8.0

    def test_unsupported_type(self):
        knowgget = Knowgget(label="x", value="1", creator=T1)
        with pytest.raises(TypeError):
            knowgget.parsed(list)

    def test_root_label(self):
        knowgget = Knowgget(label="TrafficFrequency.TCPSYN", value="1", creator=T1)
        assert knowgget.root_label == "TrafficFrequency"


class TestKnowledgeBase:
    def test_put_and_get(self):
        kb = KnowledgeBase(T1)
        kb.put("Multihop", True)
        assert kb.get("Multihop", bool) is True

    def test_get_default_when_absent(self):
        kb = KnowledgeBase(T1)
        assert kb.get("Missing", bool, default=False) is False
        assert kb.get("Missing") is None

    def test_entity_scoping(self):
        kb = KnowledgeBase(T1)
        kb.put("SignalStrength", -67, entity=SENSOR)
        assert kb.get("SignalStrength", int, entity=SENSOR) == -67
        assert kb.get("SignalStrength", int) is None

    def test_snapshot_matches_paper_representation(self):
        kb = KnowledgeBase(NodeId("K1"))
        kb.put("Multihop", True)
        kb.put("SignalStrength", -67, entity=SENSOR)
        kb.put("TrafficFrequency.TCPSYN", 0.037)
        snapshot = kb.snapshot()
        assert snapshot["K1$Multihop"] == "true"
        assert snapshot["K1$SignalStrength@SensorA"] == "-67"
        assert snapshot["K1$TrafficFrequency.TCPSYN"] == "0.037"

    def test_change_events_published(self):
        kb = KnowledgeBase(T1)
        events = []
        kb.subscribe_all(lambda e: events.append(e.topic))
        kb.put("Multihop", True)
        assert events == [KNOWLEDGE_TOPIC_PREFIX + "T1$Multihop"]

    def test_identical_value_is_no_op(self):
        kb = KnowledgeBase(T1)
        events = []
        kb.subscribe_all(lambda e: events.append(e))
        kb.put("Multihop", True)
        kb.put("Multihop", True)
        assert len(events) == 1
        assert kb.change_count == 1

    def test_exact_subscription(self):
        kb = KnowledgeBase(T1)
        hits = []
        kb.subscribe("Mobility", lambda e: hits.append(e.payload.value))
        kb.put("Mobility", False)
        kb.put("Multihop", True)
        assert hits == ["false"]

    def test_remove(self):
        kb = KnowledgeBase(T1)
        kb.put("Multihop", True)
        assert kb.remove("Multihop")
        assert kb.get("Multihop", bool) is None
        assert not kb.remove("Multihop")

    def test_sublabels_of_multilevel_knowgget(self):
        kb = KnowledgeBase(T1)
        kb.put("TrafficFrequency.TCPSYN", 0.1)
        kb.put("TrafficFrequency.TCPACK", 0.2)
        kb.put("Other", 1)
        children = kb.sublabels("TrafficFrequency")
        assert set(children) == {"TCPSYN", "TCPACK"}

    def test_about_entity(self):
        kb = KnowledgeBase(T1)
        kb.put("SignalStrength", -67, entity=SENSOR)
        kb.put("TrafficOut.UDP", 0.5, entity=SENSOR)
        kb.put("Multihop", True)
        assert len(kb.about_entity(SENSOR)) == 2

    def test_with_label_across_creators(self):
        kb = KnowledgeBase(T1)
        kb.put("ForwardingAnomaly", True, entity=NodeId("B1"))
        remote = Knowgget(
            label="ForwardingAnomaly", value="true", creator=T2,
            entity=NodeId("B2"), collective=True,
        )
        kb.apply_remote(remote, sender=T2)
        assert len(kb.with_label("ForwardingAnomaly")) == 2

    def test_approximate_bytes_grows(self):
        kb = KnowledgeBase(T1)
        empty = kb.approximate_bytes()
        kb.put("Multihop", True)
        assert kb.approximate_bytes() > empty


class TestCollectiveRules:
    def test_remote_update_requires_creator_match(self):
        """T1 can only update knowggets that T1 itself created (paper)."""
        kb = KnowledgeBase(T1)
        forged = Knowgget(label="Mobility", value="true", creator=NodeId("T3"))
        assert not kb.apply_remote(forged, sender=T2)

    def test_remote_cannot_overwrite_local(self):
        kb = KnowledgeBase(T1)
        kb.put("Mobility", False)
        hostile = Knowgget(label="Mobility", value="true", creator=T1)
        assert not kb.apply_remote(hostile, sender=T1)
        assert kb.get("Mobility", bool) is False

    def test_accepted_remote_stored_under_remote_creator(self):
        kb = KnowledgeBase(T1)
        remote = Knowgget(label="Mobility", value="true", creator=T2)
        assert kb.apply_remote(remote, sender=T2)
        assert kb.get("Mobility", bool, creator=T2) is True
        assert kb.get("Mobility", bool) is None  # local view unchanged

    def test_local_and_remote_partition(self):
        kb = KnowledgeBase(T1)
        kb.put("Multihop", True)
        kb.apply_remote(
            Knowgget(label="Multihop", value="false", creator=T2), sender=T2
        )
        assert len(kb.local_knowggets()) == 1
        assert len(kb.remote_knowggets()) == 1

    def test_collective_listener_fires_for_local_collective_only(self):
        kb = KnowledgeBase(T1)
        shared = []
        kb.add_collective_listener(shared.append)
        kb.put("Private", 1)
        kb.put("Shared", 2, collective=True)
        kb.apply_remote(
            Knowgget(label="Shared", value="3", creator=T2, collective=True),
            sender=T2,
        )
        assert [k.label for k in shared] == ["Shared"]


labels = st.from_regex(r"[A-Za-z][A-Za-z0-9_.]{0,15}", fullmatch=True).filter(
    lambda l: "$" not in l and "@" not in l and not l.startswith(".")
)
creators = st.from_regex(r"[A-Za-z0-9][A-Za-z0-9\-]{0,8}", fullmatch=True).map(NodeId)
entities = st.one_of(st.none(), creators)


@given(creator=creators, label=labels, entity=entities)
def test_key_encoding_roundtrip_property(creator, label, entity):
    key = encode_key(creator, label, entity)
    assert decode_key(key) == (creator, label, entity)
