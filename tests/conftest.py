"""Shared fixtures and capture factories for the test suite."""

from __future__ import annotations

import pytest

from repro.net.packets.base import Medium
from repro.net.packets.ctp import CtpDataFrame, CtpRoutingFrame
from repro.net.packets.icmp import IcmpMessage, IcmpType
from repro.net.packets.ieee802154 import Ieee802154Frame
from repro.net.packets.ip import IpPacket
from repro.net.packets.tcp import TcpFlags, TcpSegment
from repro.net.packets.wifi import WifiFrame
from repro.sim.capture import Capture
from repro.util.ids import NodeId


@pytest.fixture
def nodes():
    """A handful of commonly-used node identities."""
    return {
        "a": NodeId("node-a"),
        "b": NodeId("node-b"),
        "c": NodeId("node-c"),
        "victim": NodeId("victim"),
        "attacker": NodeId("attacker"),
        "kalis": NodeId("kalis-1"),
    }


def wifi_icmp_capture(
    src: NodeId,
    dst: NodeId,
    dst_ip: str,
    timestamp: float,
    icmp_type: IcmpType = IcmpType.ECHO_REPLY,
    src_ip: str = "10.23.1.1",
    rssi: float = -55.0,
) -> Capture:
    """A WiFi frame carrying an ICMP message, as a capture."""
    packet = WifiFrame(
        src=src,
        dst=dst,
        payload=IpPacket(
            src_ip=src_ip,
            dst_ip=dst_ip,
            payload=IcmpMessage(icmp_type=icmp_type, identifier=1, sequence=0),
        ),
    )
    return Capture(packet=packet, timestamp=timestamp, medium=Medium.WIFI, rssi=rssi)


def wifi_tcp_capture(
    src: NodeId,
    dst: NodeId,
    dst_ip: str,
    timestamp: float,
    flags: TcpFlags = TcpFlags.SYN,
    src_ip: str = "10.23.1.1",
    sport: int = 50000,
    dport: int = 443,
    rssi: float = -55.0,
) -> Capture:
    packet = WifiFrame(
        src=src,
        dst=dst,
        payload=IpPacket(
            src_ip=src_ip,
            dst_ip=dst_ip,
            payload=TcpSegment(sport=sport, dport=dport, flags=flags),
        ),
    )
    return Capture(packet=packet, timestamp=timestamp, medium=Medium.WIFI, rssi=rssi)


def ctp_data_capture(
    transmitter: NodeId,
    receiver: NodeId,
    origin: NodeId,
    seqno: int,
    timestamp: float,
    thl: int = 0,
    rssi: float = -60.0,
    seq: int = 1,
) -> Capture:
    """An 802.15.4 frame carrying a CTP data frame, as a capture."""
    packet = Ieee802154Frame(
        pan_id=0x22,
        seq=seq,
        src=transmitter,
        dst=receiver,
        payload=CtpDataFrame(origin=origin, seqno=seqno, thl=thl, etx=2),
    )
    return Capture(
        packet=packet, timestamp=timestamp, medium=Medium.IEEE_802_15_4, rssi=rssi
    )


def ctp_beacon_capture(
    transmitter: NodeId,
    parent: NodeId,
    etx: int,
    timestamp: float,
    rssi: float = -60.0,
) -> Capture:
    from repro.net.addressing import BROADCAST

    packet = Ieee802154Frame(
        pan_id=0x22,
        seq=1,
        src=transmitter,
        dst=BROADCAST,
        payload=CtpRoutingFrame(parent=parent, etx=etx),
    )
    return Capture(
        packet=packet, timestamp=timestamp, medium=Medium.IEEE_802_15_4, rssi=rssi
    )
