"""Tests for identity-abuse detectors: replication (static + mobile),
sybil, spoofing — including the pure analysis functions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.datastore import DataStore
from repro.core.knowledge import KnowledgeBase
from repro.core.modules.base import ModuleContext
from repro.core.modules.detection.replication_mobile import (
    ReplicationMobileModule,
    _dual_stream,
)
from repro.core.modules.detection.replication_static import (
    ReplicationStaticModule,
    _bimodal_interleaved,
    _mostly_monotone,
)
from repro.core.modules.detection.spoofing import SpoofingModule
from repro.core.modules.detection.sybil import SybilModule
from repro.eventbus.bus import EventBus
from repro.util.ids import NodeId
from tests.conftest import ctp_data_capture

IDENTITY = NodeId("mote-7")
KALIS = NodeId("kalis-1")


def bind(module):
    bus = EventBus()
    kb = KnowledgeBase(KALIS, bus)
    alerts = []
    bus.subscribe("alert", lambda e: alerts.append(e.payload))
    module.bind(ModuleContext(kb=kb, datastore=DataStore(), bus=bus, node_id=KALIS))
    module.active = True
    return kb, alerts


def feed_identity(module, samples):
    """samples: iterable of (timestamp, rssi, seqno)."""
    for timestamp, rssi, seqno in samples:
        module.handle(
            ctp_data_capture(
                IDENTITY, NodeId("parent"), origin=IDENTITY, seqno=seqno,
                timestamp=timestamp, rssi=rssi,
            )
        )


def interleaved_replica_samples(count=16):
    """Legit at -55 (seq 1,2,..) alternating with replica at -75 (5001,...)."""
    samples = []
    legit_seq, clone_seq = 0, 5000
    for index in range(count):
        if index % 2 == 0:
            legit_seq += 1
            samples.append((index * 1.0, -55.0 + (index % 3) * 0.4, legit_seq))
        else:
            clone_seq += 1
            samples.append((index * 1.0, -75.0 + (index % 3) * 0.4, clone_seq))
    return samples


class TestReplicationStatic:
    def test_requires_static_network(self):
        module = ReplicationStaticModule()
        kb, _ = bind(module)
        assert not module.required(kb)
        kb.put("Mobility", False)
        assert module.required(kb)
        kb.put("Mobility", True)
        assert not module.required(kb)

    def test_interleaved_clusters_detected(self):
        module = ReplicationStaticModule()
        _, alerts = bind(module)
        feed_identity(module, interleaved_replica_samples())
        assert alerts
        assert alerts[0].attack == "replication"
        assert alerts[0].suspects == (IDENTITY,)

    def test_stable_identity_not_flagged(self):
        module = ReplicationStaticModule()
        _, alerts = bind(module)
        samples = [(i * 1.0, -60.0 + (i % 4) * 0.5, i + 1) for i in range(20)]
        feed_identity(module, samples)
        assert alerts == []

    def test_level_shift_is_not_replication(self):
        """A device moved once: two clusters but no interleaving."""
        module = ReplicationStaticModule()
        _, alerts = bind(module)
        samples = [(i * 1.0, -55.0, i + 1) for i in range(8)]
        samples += [(8.0 + i * 1.0, -75.0, 9 + i) for i in range(8)]
        feed_identity(module, samples)
        assert alerts == []

    def test_random_seqno_injections_not_replication(self):
        """Incoherent streams are spoofing territory, not a live clone."""
        module = ReplicationStaticModule()
        _, alerts = bind(module)
        samples = []
        randoms = [91234, 4, 70000, 812, 55555, 13, 99999, 123]
        for index in range(16):
            if index % 2 == 0:
                samples.append((index * 1.0, -55.0, index // 2 + 1))
            else:
                samples.append((index * 1.0, -75.0, randoms[index // 2]))
        feed_identity(module, samples)
        assert alerts == []


class TestBimodalFunction:
    def test_detects_textbook_case(self):
        samples = [
            (float(i), -55.0 if i % 2 == 0 else -72.0, i + 1) for i in range(12)
        ]
        verdict = _bimodal_interleaved(samples, gap=6.0, min_each=4, min_flips=3)
        assert verdict is not None
        low_mean, high_mean, flips = verdict
        assert low_mean < high_mean
        assert flips >= 3

    def test_rejects_small_gap(self):
        samples = [
            (float(i), -55.0 if i % 2 == 0 else -58.0, i + 1) for i in range(12)
        ]
        assert _bimodal_interleaved(samples, gap=6.0, min_each=4, min_flips=3) is None

    def test_rejects_smeared_cluster(self):
        """Mobile-phase smear: one side spans far more than cluster_width."""
        samples = []
        for i in range(16):
            if i % 2 == 0:
                samples.append((float(i), -50.0 - 2.5 * i, i + 1))  # smeared
            else:
                samples.append((float(i), -90.0, 100 + i))
        assert (
            _bimodal_interleaved(samples, gap=6.0, min_each=4, min_flips=3,
                                 cluster_width=8.0)
            is None
        )

    def test_mostly_monotone(self):
        assert _mostly_monotone([1, 2, 3, 4])
        assert _mostly_monotone([])
        assert _mostly_monotone([5])
        assert not _mostly_monotone([5, 1, 4, 2, 3, 1])

    @settings(max_examples=50)
    @given(st.lists(st.floats(-90, -30, allow_nan=False), min_size=0, max_size=30))
    def test_never_crashes_on_arbitrary_rssi(self, rssis):
        samples = [(float(i), rssi, i) for i, rssi in enumerate(rssis)]
        _bimodal_interleaved(samples, gap=6.0, min_each=4, min_flips=3)


class TestReplicationMobile:
    def test_requires_mobile_network(self):
        module = ReplicationMobileModule()
        kb, _ = bind(module)
        kb.put("Mobility", True)
        assert module.required(kb)
        kb.put("Mobility", False)
        assert not module.required(kb)

    def test_dual_streams_detected(self):
        module = ReplicationMobileModule()
        _, alerts = bind(module)
        feed_identity(module, interleaved_replica_samples())
        assert alerts
        assert alerts[0].attack == "replication"

    def test_single_stream_not_flagged(self):
        module = ReplicationMobileModule()
        _, alerts = bind(module)
        samples = [(i * 1.0, -60.0 - i, i + 1) for i in range(20)]
        feed_identity(module, samples)
        assert alerts == []

    def test_dual_stream_function(self):
        sequence = [1, 5001, 2, 5002, 3, 5003, 4, 5004]
        assert _dual_stream(sequence, jump=100, min_alternations=3) >= 3
        assert _dual_stream([1, 2, 3, 4, 5, 6], jump=100, min_alternations=3) is None
        assert _dual_stream([1, 5001], jump=100, min_alternations=3) is None

    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 10_000), max_size=40))
    def test_dual_stream_never_crashes(self, sequence):
        _dual_stream(sequence, jump=100, min_alternations=3)


class TestSybil:
    def test_correlated_identities_detected(self):
        module = SybilModule(params={"minBursts": 3})
        _, alerts = bind(module)
        fakes = [NodeId(f"fake-{i}") for i in range(4)]
        for burst in range(4):
            base_time = burst * 6.0
            for index, identity in enumerate(fakes):
                module.handle(
                    ctp_data_capture(
                        identity, NodeId("coord"), origin=identity,
                        seqno=burst, timestamp=base_time + index * 0.02,
                        rssi=-62.0 + index * 0.3,
                    )
                )
        assert alerts
        assert alerts[0].attack == "sybil"
        assert len(alerts[0].suspects) >= 3

    def test_independent_nodes_not_clustered(self):
        """Equidistant nodes transmit on their own schedules — no sybil."""
        module = SybilModule()
        _, alerts = bind(module)
        identities = [NodeId(f"real-{i}") for i in range(4)]
        for round_index in range(10):
            for index, identity in enumerate(identities):
                module.handle(
                    ctp_data_capture(
                        identity, NodeId("coord"), origin=identity,
                        seqno=round_index,
                        timestamp=round_index * 4.0 + index * 0.9,
                        rssi=-62.0,
                    )
                )
        assert alerts == []

    def test_rssi_spread_breaks_cluster(self):
        module = SybilModule(params={"minBursts": 2})
        _, alerts = bind(module)
        identities = [NodeId(f"n-{i}") for i in range(4)]
        for burst in range(5):
            for index, identity in enumerate(identities):
                module.handle(
                    ctp_data_capture(
                        identity, NodeId("coord"), origin=identity,
                        seqno=burst, timestamp=burst * 6.0 + index * 0.02,
                        rssi=-50.0 - 8.0 * index,  # distinct signatures
                    )
                )
        assert alerts == []


class TestSpoofing:
    def test_incoherent_outliers_detected(self):
        module = SpoofingModule(params={"minOutliers": 3})
        _, alerts = bind(module)
        samples = []
        # Non-monotone injected seqnos, all far from the legit stream.
        randoms = [83121, 40777, 67777, 21205, 90909]
        legit_seq = 0
        for index in range(20):
            if index % 4 == 3:
                samples.append((index * 1.0, -78.0, randoms[index // 4]))
            else:
                legit_seq += 1
                samples.append((index * 1.0, -55.0, legit_seq))
        feed_identity(module, samples)
        assert alerts
        assert alerts[0].attack == "spoofing"
        assert alerts[0].suspects == (IDENTITY,)

    def test_coherent_second_stream_left_to_replication(self):
        module = SpoofingModule(params={"minOutliers": 3})
        _, alerts = bind(module)
        feed_identity(module, interleaved_replica_samples())
        assert alerts == []

    def test_honest_identity_not_flagged(self):
        module = SpoofingModule()
        _, alerts = bind(module)
        samples = [(i * 1.0, -60.0, i + 1) for i in range(20)]
        feed_identity(module, samples)
        assert alerts == []

    def test_rssi_consistent_outlier_not_flagged(self):
        """A seqno glitch at the node's own RSSI is a bug, not spoofing."""
        module = SpoofingModule(params={"minOutliers": 2})
        _, alerts = bind(module)
        samples = [(i * 1.0, -60.0, i + 1) for i in range(8)]
        samples.append((8.0, -60.0, 99999))  # right RSSI, weird seqno
        samples += [(9.0 + i, -60.0, 9 + i) for i in range(4)]
        feed_identity(module, samples)
        assert alerts == []
