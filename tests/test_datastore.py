"""Tests for the Data Store sliding window and disk log."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.datastore import DataStore
from tests.conftest import wifi_icmp_capture
from repro.util.ids import NodeId

A, B = NodeId("a"), NodeId("b")


def captures(count, spacing=1.0, start=0.0):
    return [
        wifi_icmp_capture(A, B, "10.23.0.9", start + i * spacing)
        for i in range(count)
    ]


class TestWindow:
    def test_size_bound_evicts_oldest(self):
        store = DataStore(window_size=3, window_age=None)
        for capture in captures(5):
            store.add(capture)
        assert len(store) == 3
        assert store.window()[0].timestamp == 2.0
        assert store.total_captures == 5

    def test_age_bound_evicts_stale(self):
        store = DataStore(window_size=100, window_age=2.5)
        for capture in captures(6):  # at t = 0..5
            store.add(capture)
        assert [c.timestamp for c in store.window()] == [3.0, 4.0, 5.0]

    def test_no_age_bound(self):
        store = DataStore(window_size=100, window_age=None)
        for capture in captures(6):
            store.add(capture)
        assert len(store) == 6

    def test_recent(self):
        store = DataStore(window_size=100, window_age=None)
        for capture in captures(10):
            store.add(capture)
        assert [c.timestamp for c in store.recent(2.0)] == [7.0, 8.0, 9.0]

    def test_latest_timestamp(self):
        store = DataStore()
        assert store.latest_timestamp() is None
        store.add(captures(1)[0])
        assert store.latest_timestamp() == 0.0

    def test_approximate_bytes_tracks_window(self):
        store = DataStore(window_size=2, window_age=None)
        for capture in captures(2):
            store.add(capture)
        two = store.approximate_bytes()
        store.add(captures(1, start=10.0)[0])
        assert store.approximate_bytes() == two  # still two captures held

    def test_validation(self):
        with pytest.raises(ValueError):
            DataStore(window_size=0)
        with pytest.raises(ValueError):
            DataStore(window_age=0.0)


class TestDiskLog:
    def test_flush_and_replay(self, tmp_path):
        path = tmp_path / "log.jsonl"
        store = DataStore(window_size=2, window_age=None, log_to=str(path))
        for capture in captures(5):
            store.add(capture)
        assert store.flush_log() == path
        replayed = []
        count = DataStore.replay_log(path, replayed.append)
        # The log keeps everything, not just the window.
        assert count == 5
        assert [c.timestamp for c in replayed] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_no_log_configured(self):
        assert DataStore().flush_log() is None


@settings(max_examples=30)
@given(
    window_size=st.integers(1, 20),
    window_age=st.one_of(st.none(), st.floats(0.5, 10.0, allow_nan=False)),
    count=st.integers(0, 40),
)
def test_window_invariants_property(window_size, window_age, count):
    store = DataStore(window_size=window_size, window_age=window_age)
    for capture in captures(count, spacing=0.7):
        store.add(capture)
    window = store.window()
    assert len(window) <= window_size
    timestamps = [c.timestamp for c in window]
    assert timestamps == sorted(timestamps)
    if window and window_age is not None:
        assert timestamps[-1] - timestamps[0] <= window_age
    assert store.total_captures == count
