"""Smoke tests: every example script runs to completion.

The examples double as end-to-end acceptance tests of the public API;
each asserts its own success criteria internally.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = capsys.readouterr().out
    assert output  # every example narrates what it did


def test_all_examples_exist():
    assert len(EXAMPLES) >= 6
    assert "quickstart.py" in EXAMPLES
