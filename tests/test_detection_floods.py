"""Tests for the flood-family detection modules (ICMP flood, Smurf,
SYN flood, HELLO flood)."""


from repro.core.datastore import DataStore
from repro.core.knowledge import KnowledgeBase
from repro.core.modules.base import ModuleContext
from repro.core.modules.detection.hello_flood import HelloFloodModule
from repro.core.modules.detection.icmp_flood import IcmpFloodModule
from repro.core.modules.detection.smurf import SmurfModule
from repro.core.modules.detection.syn_flood import SynFloodModule
from repro.eventbus.bus import EventBus
from repro.net.packets.icmp import IcmpType
from repro.net.packets.tcp import TcpFlags
from repro.util.ids import NodeId
from tests.conftest import ctp_beacon_capture, wifi_icmp_capture, wifi_tcp_capture

A, B, V = NodeId("attacker"), NodeId("bystander"), NodeId("victim")
VICTIM_IP = "10.23.5.5"


def bind(module):
    bus = EventBus()
    kb = KnowledgeBase(NodeId("kalis-1"), bus)
    alerts = []
    bus.subscribe("alert", lambda e: alerts.append(e.payload))
    module.bind(ModuleContext(kb=kb, datastore=DataStore(), bus=bus,
                              node_id=NodeId("kalis-1")))
    module.active = True
    return kb, alerts


class TestIcmpFloodModule:
    def test_requires_single_hop_wifi(self):
        module = IcmpFloodModule()
        kb, _ = bind(module)
        assert not module.required(kb)
        kb.put("Multihop.wifi", False)
        assert module.required(kb)
        kb.put("Multihop.wifi", True)
        assert not module.required(kb)

    def test_reply_burst_triggers_alert(self):
        module = IcmpFloodModule(params={"threshold": 10})
        _, alerts = bind(module)
        for i in range(12):
            module.handle(wifi_icmp_capture(A, V, VICTIM_IP, i * 0.1))
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert.attack == "icmp_flood"
        assert alert.suspects == (A,)
        assert alert.victim == V

    def test_benign_reply_rate_no_alert(self):
        module = IcmpFloodModule(params={"threshold": 10, "window": 10.0})
        _, alerts = bind(module)
        for i in range(10):  # one reply every 2 s: 5 per window
            module.handle(wifi_icmp_capture(A, V, VICTIM_IP, i * 2.0))
        assert alerts == []

    def test_echo_requests_do_not_count(self):
        module = IcmpFloodModule(params={"threshold": 5})
        _, alerts = bind(module)
        for i in range(10):
            module.handle(
                wifi_icmp_capture(A, V, VICTIM_IP, i * 0.1,
                                  icmp_type=IcmpType.ECHO_REQUEST)
            )
        assert alerts == []

    def test_cooldown_limits_alert_storm(self):
        module = IcmpFloodModule(params={"threshold": 5, "cooldown": 100.0})
        _, alerts = bind(module)
        for i in range(50):
            module.handle(wifi_icmp_capture(A, V, VICTIM_IP, i * 0.1))
        assert len(alerts) == 1

    def test_victim_never_accused(self):
        module = IcmpFloodModule(params={"threshold": 5})
        _, alerts = bind(module)
        # Replies transmitted by the victim's own radio (reflections).
        for i in range(8):
            module.handle(wifi_icmp_capture(V, V, VICTIM_IP, i * 0.1))
        assert alerts and V not in alerts[0].suspects

    def test_state_cleared_on_deactivate(self):
        module = IcmpFloodModule(params={"threshold": 10})
        _, alerts = bind(module)
        for i in range(8):
            module.handle(wifi_icmp_capture(A, V, VICTIM_IP, i * 0.1))
        module.on_deactivate()
        for i in range(8):
            module.handle(wifi_icmp_capture(A, V, VICTIM_IP, 1.0 + i * 0.01))
        assert len(alerts) == 0  # 8 < threshold after reset


class TestSmurfModule:
    def test_requires_multihop_wifi(self):
        module = SmurfModule()
        kb, _ = bind(module)
        kb.put("Multihop.wifi", True)
        assert module.required(kb)
        kb.put("Multihop.wifi", False)
        assert not module.required(kb)

    def test_identifies_orchestrator_from_forged_requests(self):
        module = SmurfModule(params={"threshold": 6})
        _, alerts = bind(module)
        # The attacker broadcasts requests forged with the victim's IP.
        module.handle(
            wifi_icmp_capture(A, B, "10.23.255.255", 0.0,
                              icmp_type=IcmpType.ECHO_REQUEST,
                              src_ip=VICTIM_IP)
        )
        for i in range(8):
            module.handle(
                wifi_icmp_capture(B, V, VICTIM_IP, 0.5 + i * 0.1, src_ip="10.23.9.9")
            )
        assert alerts
        assert alerts[0].attack == "smurf"
        assert alerts[0].suspects == (A,)

    def test_falls_back_to_two_hop_heuristic(self):
        """Without observed forged requests, the naive 2-hop suspect set
        on a single-hop graph is the victim itself — paper §VI-B1."""
        module = SmurfModule(params={"threshold": 6})
        _, alerts = bind(module)
        for i in range(8):
            module.handle(wifi_icmp_capture(A, V, VICTIM_IP, i * 0.1))
        assert alerts
        assert alerts[0].suspects == (V,)


class TestSynFloodModule:
    def test_requires_wifi_verdict_either_way(self):
        module = SynFloodModule()
        kb, _ = bind(module)
        assert not module.required(kb)
        kb.put("Multihop.wifi", False)
        assert module.required(kb)
        kb.put("Multihop.wifi", True)
        assert module.required(kb)

    def test_syn_burst_without_completions(self):
        module = SynFloodModule(params={"threshold": 10})
        _, alerts = bind(module)
        for i in range(12):
            module.handle(
                wifi_tcp_capture(A, V, VICTIM_IP, i * 0.1,
                                 src_ip=f"192.168.0.{i + 1}")
            )
        assert len(alerts) == 1
        assert alerts[0].attack == "syn_flood"
        assert A in alerts[0].suspects

    def test_completing_handshakes_suppress_alert(self):
        module = SynFloodModule(params={"threshold": 10, "ratio": 4.0})
        _, alerts = bind(module)
        for i in range(12):
            module.handle(wifi_tcp_capture(B, V, VICTIM_IP, i * 0.2,
                                           flags=TcpFlags.SYN))
            module.handle(wifi_tcp_capture(B, V, VICTIM_IP, i * 0.2 + 0.05,
                                           flags=TcpFlags.ACK))
        assert alerts == []


class TestHelloFloodModule:
    def test_beacon_storm_detected(self):
        module = HelloFloodModule(params={"rate": 1.0, "window": 10.0})
        _, alerts = bind(module)
        for i in range(15):
            module.handle(ctp_beacon_capture(A, parent=A, etx=1,
                                             timestamp=i * 0.2))
        assert alerts
        assert alerts[0].attack == "hello_flood"
        assert alerts[0].suspects == (A,)

    def test_natural_beacon_cadence_ignored(self):
        module = HelloFloodModule(params={"rate": 1.0, "window": 10.0})
        _, alerts = bind(module)
        for i in range(10):  # one beacon per 5 s, the protocol norm
            module.handle(ctp_beacon_capture(A, parent=A, etx=1,
                                             timestamp=i * 5.0))
        assert alerts == []

    def test_data_frames_not_counted(self):
        from tests.conftest import ctp_data_capture

        module = HelloFloodModule(params={"rate": 1.0})
        _, alerts = bind(module)
        for i in range(20):
            module.handle(ctp_data_capture(A, B, origin=A, seqno=i,
                                           timestamp=i * 0.1))
        assert alerts == []
