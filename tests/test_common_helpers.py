"""Tests for module-shared helpers (sliding counters, EWMA trackers)
and the validation utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.modules.common import (
    EwmaTracker,
    SlidingWindowCounter,
    link_destination,
    link_source,
    medium_label,
)
from repro.net.packets.base import Medium, RawPayload
from repro.net.packets.ieee802154 import Ieee802154Frame
from repro.util.ids import NodeId
from repro.util.validation import (
    ValidationError,
    require,
    require_in_range,
    require_non_negative,
    require_positive,
    require_type,
)


class TestSlidingWindowCounter:
    def test_counts_within_window(self):
        counter = SlidingWindowCounter(window=5.0)
        counter.record(0.0, "a")
        counter.record(1.0, "a")
        counter.record(2.0, "b")
        assert counter.count("a") == 2
        assert counter.count("b") == 1
        assert counter.total() == 3

    def test_eviction(self):
        counter = SlidingWindowCounter(window=5.0)
        counter.record(0.0, "a")
        counter.record(10.0, "a")  # the first event is now stale
        assert counter.count("a") == 1

    def test_rate(self):
        counter = SlidingWindowCounter(window=10.0)
        for i in range(20):
            counter.record(i * 0.5, "x")
        assert counter.rate("x") == pytest.approx(2.0)

    def test_keys_and_items_sorted(self):
        counter = SlidingWindowCounter(window=10.0)
        counter.record(0.0, "b")
        counter.record(0.0, "a")
        assert counter.keys() == ["a", "b"]
        assert counter.items() == [("a", 1), ("b", 1)]

    def test_explicit_evict(self):
        counter = SlidingWindowCounter(window=5.0)
        counter.record(0.0, "a")
        counter.evict(now=100.0)
        assert counter.count("a") == 0

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            SlidingWindowCounter(window=0.0)

    @settings(max_examples=40)
    @given(
        st.lists(
            st.tuples(st.floats(0, 100, allow_nan=False), st.integers(0, 4)),
            max_size=50,
        )
    )
    def test_invariants_property(self, events):
        counter = SlidingWindowCounter(window=10.0)
        for timestamp, key in sorted(events):
            counter.record(timestamp, key)
        # Total equals the sum of per-key counts, always.
        assert counter.total() == sum(count for _, count in counter.items())
        assert all(count > 0 for _, count in counter.items())


class TestEwmaTracker:
    def test_first_sample_sets_mean(self):
        tracker = EwmaTracker(alpha=0.5)
        deviation, samples = tracker.observe("a", -60.0)
        assert deviation == 0.0
        assert samples == 1
        assert tracker.mean("a") == -60.0

    def test_deviation_measured_before_update(self):
        tracker = EwmaTracker(alpha=0.5)
        tracker.observe("a", -60.0)
        deviation, _ = tracker.observe("a", -70.0)
        assert deviation == -10.0
        assert tracker.mean("a") == -65.0  # moved halfway at alpha=0.5

    def test_keys_independent(self):
        tracker = EwmaTracker()
        tracker.observe("a", -60.0)
        tracker.observe("b", -80.0)
        assert tracker.mean("a") == -60.0
        assert tracker.mean("b") == -80.0
        assert tracker.samples("a") == 1

    def test_unknown_key(self):
        tracker = EwmaTracker()
        assert tracker.mean("ghost") is None
        assert tracker.samples("ghost") == 0

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            EwmaTracker(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaTracker(alpha=1.5)

    @settings(max_examples=40)
    @given(st.lists(st.floats(-100, 0, allow_nan=False), min_size=1, max_size=40))
    def test_mean_bounded_by_samples_property(self, values):
        tracker = EwmaTracker(alpha=0.3)
        for value in values:
            tracker.observe("k", value)
        assert min(values) - 1e-9 <= tracker.mean("k") <= max(values) + 1e-9


class TestLinkHelpers:
    def test_link_fields(self):
        frame = Ieee802154Frame(pan_id=1, seq=0, src=NodeId("a"), dst=NodeId("b"))
        assert link_source(frame) == NodeId("a")
        assert link_destination(frame) == NodeId("b")

    def test_unaddressed_packet(self):
        assert link_source(RawPayload(length=1)) is None
        assert link_destination(RawPayload(length=1)) is None

    def test_medium_labels_are_knowgget_safe(self):
        for medium in Medium:
            label = medium_label(medium)
            assert "." not in label
            assert "$" not in label and "@" not in label


class TestValidationHelpers:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValidationError, match="broken"):
            require(False, "broken")

    def test_require_type(self):
        require_type("x", str, "name")
        require_type(3, (int, float), "value")
        with pytest.raises(ValidationError, match="must be str"):
            require_type(3, str, "name")
        with pytest.raises(ValidationError, match="int | float"):
            require_type("x", (int, float), "value")

    def test_numeric_requirements(self):
        require_positive(1.0, "x")
        require_non_negative(0.0, "x")
        require_in_range(5, 0, 10, "x")
        with pytest.raises(ValidationError):
            require_positive(0.0, "x")
        with pytest.raises(ValidationError):
            require_non_negative(-0.1, "x")
        with pytest.raises(ValidationError):
            require_in_range(11, 0, 10, "x")
