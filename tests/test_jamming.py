"""Tests for the jamming attack and its anomaly-based detector."""

import pytest

from repro.attacks.jamming import JammingNode
from repro.core.datastore import DataStore
from repro.core.kalis import KalisNode
from repro.core.knowledge import KnowledgeBase
from repro.core.modules.base import ModuleContext
from repro.core.modules.detection.jamming import JammingModule
from repro.devices.wsn import build_wsn
from repro.eventbus.bus import EventBus
from repro.net.packets.base import Medium
from repro.sim.engine import Simulator
from repro.sim.topology import line_positions
from repro.util.ids import NodeId
from repro.util.rng import SeededRng
from tests.conftest import ctp_data_capture


def bind(module):
    bus = EventBus()
    kb = KnowledgeBase(NodeId("kalis-1"), bus)
    alerts = []
    bus.subscribe("alert", lambda e: alerts.append(e.payload))
    module.bind(ModuleContext(kb=kb, datastore=DataStore(), bus=bus,
                              node_id=NodeId("kalis-1")))
    module.active = True
    return kb, alerts


class TestJammingNode:
    def test_bursts_raise_and_clear_interference(self):
        sim = Simulator(seed=71)
        jammer = sim.add_node(
            JammingNode(NodeId("jam"), (0.0, 0.0), loss_probability=0.95,
                        burst_duration=5.0, burst_interval=20.0,
                        start_delay=2.0, max_bursts=2, rng=SeededRng(1))
        )
        medium = sim.medium(Medium.IEEE_802_15_4)
        sim.run(4.0)
        assert jammer.jamming_now
        assert medium.interference_loss_probability == 0.95
        sim.run(5.0)  # past burst end
        assert not jammer.jamming_now
        assert medium.interference_loss_probability == 0.0
        sim.run(60.0)
        assert len(jammer.log) == 2

    def test_revocation_silences_the_jammer(self):
        sim = Simulator(seed=72)
        sim.add_node(
            JammingNode(NodeId("jam"), (0.0, 0.0), burst_duration=10.0,
                        burst_interval=30.0, start_delay=1.0, rng=SeededRng(2))
        )
        sim.run(3.0)
        assert sim.medium(Medium.IEEE_802_15_4).interference_loss_probability > 0
        sim.remove_node(NodeId("jam"))
        assert sim.medium(Medium.IEEE_802_15_4).interference_loss_probability == 0.0

    def test_jamming_actually_destroys_traffic(self):
        def delivered(with_jammer):
            sim = Simulator(seed=73)
            base, motes = build_wsn(sim, line_positions(3, 20.0))
            if with_jammer:
                sim.add_node(
                    JammingNode(NodeId("jam"), (20.0, 5.0),
                                loss_probability=0.95, burst_duration=25.0,
                                burst_interval=60.0, start_delay=10.0,
                                rng=SeededRng(3))
                )
            sim.run(40.0)
            return len(base.collected)

        assert delivered(with_jammer=True) < delivered(with_jammer=False) * 0.7

    def test_saturating_jammer_is_a_total_blackout(self):
        """loss_probability=1.0 is a certain drop — zero frames land
        during the burst, with no ~0.1% clamp leak."""
        sim = Simulator(seed=75)
        base, motes = build_wsn(sim, line_positions(3, 20.0))
        sim.add_node(
            JammingNode(NodeId("jam"), (20.0, 5.0), loss_probability=1.0,
                        burst_duration=30.0, burst_interval=120.0,
                        start_delay=30.0, max_bursts=1, rng=SeededRng(5))
        )
        sim.run(30.0)
        deliveries_before = sim.deliveries
        collected_before = len(base.collected)
        sim.run(30.0)  # the entire burst window
        assert sim.deliveries == deliveries_before
        assert len(base.collected) == collected_before
        sim.run(30.0)  # burst over: traffic resumes
        assert sim.deliveries > deliveries_before

    def test_validation(self):
        with pytest.raises(ValueError):
            JammingNode(NodeId("j"), (0, 0), loss_probability=0.0)
        with pytest.raises(ValueError):
            JammingNode(NodeId("j"), (0, 0), burst_duration=10.0,
                        burst_interval=5.0)


class TestJammingModule:
    @staticmethod
    def _steady(module, start, count, rate=4.0):
        source, sink = NodeId("a"), NodeId("b")
        for i in range(count):
            module.handle(
                ctp_data_capture(source, sink, origin=source, seqno=i,
                                 timestamp=start + i / rate)
            )

    def test_rate_collapse_alerts(self):
        module = JammingModule(params={"window": 10.0, "cooldown": 5.0})
        _, alerts = bind(module)
        self._steady(module, start=0.0, count=120, rate=4.0)  # 30 s baseline
        # Collapse: the next capture arrives 30 s later (jammer ate the rest).
        self._steady(module, start=60.0, count=2, rate=0.05)
        assert alerts
        assert alerts[0].attack == "jamming"
        assert alerts[0].suspects == ()

    def test_steady_traffic_never_alerts(self):
        module = JammingModule()
        _, alerts = bind(module)
        self._steady(module, start=0.0, count=400, rate=4.0)
        assert alerts == []

    def test_no_baseline_no_alert(self):
        """A sparse network that was always quiet is not being jammed."""
        module = JammingModule(params={"minBaseline": 1.0})
        _, alerts = bind(module)
        self._steady(module, start=0.0, count=20, rate=0.1)
        assert alerts == []

    def test_end_to_end_live(self):
        sim = Simulator(seed=74)
        base, motes = build_wsn(sim, line_positions(4, 20.0))
        sim.add_node(
            JammingNode(NodeId("jam"), (30.0, 5.0), loss_probability=0.92,
                        burst_duration=20.0, burst_interval=60.0,
                        start_delay=40.0, max_bursts=1, rng=SeededRng(4))
        )
        kalis = KalisNode(NodeId("kalis-1"))
        kalis.deploy(sim, position=(30.0, 8.0))
        sim.run(70.0)
        assert "JammingModule" in kalis.active_module_names()
        jamming_alerts = kalis.alerts.by_attack("jamming")
        assert jamming_alerts, "the rate collapse must be noticed"
        assert 40.0 <= jamming_alerts[0].timestamp <= 62.0


class TestTaxonomyIntegration:
    def test_jamming_in_matrix_and_map(self):
        from repro.taxonomy.by_feature import ATTACKS, applicability, Applicability
        from repro.taxonomy.modules_map import MODULES_FOR_ATTACK

        assert "jamming" in ATTACKS
        assert applicability("jamming", "single_hop") is Applicability.POSSIBLE
        assert MODULES_FOR_ATTACK["jamming"] == ["JammingModule"]

    def test_registered_in_default_library(self):
        kalis = KalisNode(NodeId("kalis-1"))
        assert "JammingModule" in {m.NAME for m in kalis.manager.modules()}
