"""Tests for the spatial grid index and the frame-delivery fast path.

The load-bearing property: routing transmissions through the spatial
grid yields the *identical* reception set — receiver for receiver,
RSSI for RSSI — as a brute-force scan of every node, because draws are
keyed per (sender, receiver, transmission) and culled candidates can
never be receivable (clamped shadowing margin).
"""

import math

import pytest

from repro.net.packets.base import Medium
from repro.net.packets.ieee802154 import Ieee802154Frame
from repro.sim.engine import Simulator
from repro.sim.medium import DEFAULT_PARAMS, SHADOWING_CULL_SIGMAS
from repro.sim.node import SimNode
from repro.sim.spatial import SpatialGrid
from repro.sim.topology import random_positions
from repro.util.ids import NodeId
from repro.util.rng import SeededRng


class TestSpatialGrid:
    def test_insert_remove_contains(self):
        grid = SpatialGrid(cell_size=10.0)
        grid.insert("a", (1.0, 1.0))
        assert "a" in grid
        assert len(grid) == 1
        grid.remove("a")
        assert "a" not in grid
        assert grid.near((0.0, 0.0)) == []

    def test_duplicate_insert_rejected(self):
        grid = SpatialGrid(cell_size=10.0)
        grid.insert("a", (0.0, 0.0))
        with pytest.raises(ValueError):
            grid.insert("a", (5.0, 5.0))

    def test_invalid_cell_size_rejected(self):
        with pytest.raises(ValueError):
            SpatialGrid(cell_size=0.0)
        with pytest.raises(ValueError):
            SpatialGrid(cell_size=-1.0)

    def test_near_covers_radius_within_cell_size(self):
        """Everything within cell_size of a query point is in the 3x3
        neighborhood — including members straddling cell boundaries."""
        cell = 10.0
        grid = SpatialGrid(cell_size=cell)
        rng = SeededRng(5, "grid")
        members = {}
        for index in range(200):
            position = (rng.uniform(-50, 50), rng.uniform(-50, 50))
            members[index] = position
            grid.insert(index, position)
        # Exact-boundary members: x or y an integer multiple of the cell.
        for index, position in (
            (900, (10.0, 10.0)),
            (901, (20.0, 0.0)),
            (902, (-10.0, 9.999999)),
        ):
            members[index] = position
            grid.insert(index, position)
        for query in [(0.0, 0.0), (10.0, 10.0), (-9.99, 29.99), (49.0, -49.0)]:
            near = set(grid.near(query))
            for key, position in members.items():
                if math.hypot(position[0] - query[0], position[1] - query[1]) <= cell:
                    assert key in near, (key, position, query)

    def test_move_across_cells(self):
        grid = SpatialGrid(cell_size=10.0)
        grid.insert("a", (1.0, 1.0))
        grid.move("a", (55.0, 55.0))
        assert "a" not in grid.near((0.0, 0.0))
        assert "a" in grid.near((50.0, 50.0))
        # In-cell move is a no-op but must keep the member findable.
        grid.move("a", (56.0, 56.0))
        assert "a" in grid.near((50.0, 50.0))

    def test_unbounded_grid_returns_everyone(self):
        for size in (None, math.inf, 1.0e9):
            grid = SpatialGrid(cell_size=size)
            assert grid.unbounded
            grid.insert("a", (0.0, 0.0))
            grid.insert("b", (1.0e6, -1.0e6))
            assert set(grid.near((123.0, 456.0))) == {"a", "b"}


class _RecordingNode(SimNode):
    """Collects (sequence, rssi) per received frame."""

    def __init__(self, node_id, position, mediums):
        super().__init__(node_id, position, mediums=mediums)
        self.heard = []

    def on_receive(self, packet, medium, rssi, timestamp):
        self.heard.append((packet.seq, rssi))


def _build(seed, positions, use_spatial_index):
    sim = Simulator(seed=seed, use_spatial_index=use_spatial_index)
    nodes = []
    for index, position in enumerate(positions):
        nodes.append(
            sim.add_node(
                _RecordingNode(
                    NodeId(f"n{index:03d}"), position, mediums=(Medium.IEEE_802_15_4,)
                )
            )
        )
    sim.run_until(0.001)
    return sim, nodes


def _broadcast_all(sim, nodes, frames):
    receptions = []
    for sequence in range(frames):
        sender = nodes[sequence % len(nodes)]
        receptions.append(
            sender.send(
                Medium.IEEE_802_15_4,
                Ieee802154Frame(
                    pan_id=1, seq=sequence, src=sender.node_id, dst=None
                ),
            )
        )
        sim.run(0.05)
    return receptions


def _reception_map(nodes):
    return {node.node_id.value: node.heard for node in nodes}


class TestFastPathEquivalence:
    """Grid-indexed transmit == brute-force transmit, draw for draw."""

    @pytest.mark.parametrize("seed", [3, 17, 92])
    def test_random_topology_identical_receptions(self, seed):
        # Wide enough that the 3x3 cell neighborhood is a strict
        # subset of the site — the index must actually cull.
        span = Simulator().medium(Medium.IEEE_802_15_4).cull_range_m() * 8
        positions = random_positions(
            40, (0, 0, span, span), rng=SeededRng(seed, "topo")
        )
        sim_a, nodes_a = _build(seed, positions, use_spatial_index=True)
        sim_b, nodes_b = _build(seed, positions, use_spatial_index=False)
        counts_a = _broadcast_all(sim_a, nodes_a, frames=30)
        counts_b = _broadcast_all(sim_b, nodes_b, frames=30)
        assert counts_a == counts_b
        assert _reception_map(nodes_a) == _reception_map(nodes_b)
        assert sim_a.deliveries == sim_b.deliveries
        # ...and the index did real culling work along the way.
        assert sim_a.candidate_evaluations < sim_b.candidate_evaluations

    def test_cell_boundary_straddlers(self):
        """Senders and receivers pinned to exact cell-boundary
        coordinates of the 802.15.4 grid."""
        cell = Simulator().medium(Medium.IEEE_802_15_4).cull_range_m()
        positions = [
            (0.0, 0.0),
            (cell, 0.0),
            (cell, cell),
            (2 * cell, 2 * cell),
            (cell / 2, cell / 2),
            (cell * 0.999, cell * 1.001),
        ]
        sim_a, nodes_a = _build(7, positions, use_spatial_index=True)
        sim_b, nodes_b = _build(7, positions, use_spatial_index=False)
        _broadcast_all(sim_a, nodes_a, frames=len(positions) * 2)
        _broadcast_all(sim_b, nodes_b, frames=len(positions) * 2)
        assert _reception_map(nodes_a) == _reception_map(nodes_b)

    def test_equivalence_survives_moves_and_removal(self):
        span = DEFAULT_PARAMS[Medium.IEEE_802_15_4].max_range_m() * 3
        positions = random_positions(
            20, (0, 0, span, span), rng=SeededRng(11, "topo")
        )
        sim_a, nodes_a = _build(11, positions, use_spatial_index=True)
        sim_b, nodes_b = _build(11, positions, use_spatial_index=False)
        move_rng_a = SeededRng(11, "moves")
        move_rng_b = SeededRng(11, "moves")
        for round_index in range(6):
            for sim, nodes, rng in (
                (sim_a, nodes_a, move_rng_a),
                (sim_b, nodes_b, move_rng_b),
            ):
                mover = nodes[round_index % len(nodes)]
                mover.move_to((rng.uniform(0, span), rng.uniform(0, span)))
                _broadcast_all(sim, nodes, frames=5)
        sim_a.remove_node(nodes_a[3].node_id)
        sim_b.remove_node(nodes_b[3].node_id)
        _broadcast_all(sim_a, [n for n in nodes_a if n.attached], frames=8)
        _broadcast_all(sim_b, [n for n in nodes_b if n.attached], frames=8)
        assert _reception_map(nodes_a) == _reception_map(nodes_b)

    def test_order_independent_draws(self):
        """Adding an unrelated node must not perturb an existing pair's
        RSSI — the property the per-pair substreams exist for."""

        def first_rssi(extra_node):
            positions = [(0.0, 0.0), (15.0, 0.0)]
            sim, nodes = _build(21, positions, use_spatial_index=True)
            if extra_node:
                sim.add_node(
                    _RecordingNode(
                        NodeId("zzz-extra"), (5.0, 5.0),
                        mediums=(Medium.IEEE_802_15_4,),
                    )
                )
                sim.run(0.001)
            _broadcast_all(sim, nodes[:1], frames=1)
            return nodes[1].heard

        lonely = first_rssi(extra_node=False)
        crowded = first_rssi(extra_node=True)
        assert lonely and lonely == crowded

    def test_shadowing_margin_in_cell_size(self):
        """Grid cells must be wider than the mean-RSSI range by the
        k-sigma shadowing margin, or probabilistic edge receivers
        straddling the boundary could be culled."""
        medium = Simulator().medium(Medium.IEEE_802_15_4)
        params = medium.params
        assert medium.cull_range_m() > params.max_range_m()
        expected = params.max_range_m(
            margin_db=SHADOWING_CULL_SIGMAS * params.shadowing_sigma_db
        )
        assert medium.cull_range_m() == pytest.approx(expected)

    def test_wired_medium_unbounded(self):
        assert Simulator().medium(Medium.WIRED).cull_range_m() == math.inf
