"""Tests for the packet base types: layering, sizes, traffic kinds."""

import pytest

from repro.net.packets.base import Medium, PacketKind, RawPayload
from repro.net.packets.icmp import IcmpMessage, IcmpType
from repro.net.packets.ieee802154 import Ieee802154Frame
from repro.net.packets.ip import IpPacket
from repro.net.packets.tcp import TcpFlags, TcpSegment
from repro.net.packets.wifi import WifiFrame
from repro.util.ids import NodeId


def stacked_frame():
    """wifi / ip / tcp — a three-layer stack."""
    return WifiFrame(
        src=NodeId("a"),
        dst=NodeId("b"),
        payload=IpPacket(
            src_ip="10.23.0.1",
            dst_ip="10.23.0.2",
            payload=TcpSegment(sport=1234, dport=443, flags=TcpFlags.SYN),
        ),
    )


class TestLayering:
    def test_layers_outermost_first(self):
        layers = list(stacked_frame().layers())
        assert [type(l).__name__ for l in layers] == [
            "WifiFrame",
            "IpPacket",
            "TcpSegment",
        ]

    def test_find_layer(self):
        frame = stacked_frame()
        assert frame.find_layer(TcpSegment).dport == 443
        assert frame.find_layer(IcmpMessage) is None

    def test_has_layer(self):
        assert stacked_frame().has_layer(IpPacket)
        assert not stacked_frame().has_layer(IcmpMessage)

    def test_innermost(self):
        assert isinstance(stacked_frame().innermost(), TcpSegment)

    def test_payload_property_without_payload_field(self):
        assert TcpSegment(sport=1, dport=2).payload is None

    def test_payload_property_with_none_default(self):
        assert WifiFrame(src=NodeId("a"), dst=NodeId("b")).payload is None


class TestSizes:
    def test_size_sums_layers(self):
        frame = stacked_frame()
        expected = (
            WifiFrame.HEADER_BYTES + IpPacket.HEADER_BYTES + TcpSegment.HEADER_BYTES
        )
        assert frame.size_bytes == expected

    def test_data_length_adds_to_size(self):
        plain = TcpSegment(sport=1, dport=2)
        with_data = TcpSegment(sport=1, dport=2, data_length=100)
        assert with_data.size_bytes == plain.size_bytes + 100

    def test_ipv6_header_is_larger(self):
        v4 = IpPacket(src_ip="a", dst_ip="b", version=4)
        v6 = IpPacket(src_ip="a", dst_ip="b", version=6)
        assert v6.size_bytes == v4.size_bytes + 20

    def test_raw_payload_size(self):
        assert RawPayload(length=77).size_bytes == 77

    def test_raw_payload_rejects_negative(self):
        with pytest.raises(ValueError):
            RawPayload(length=-1)


class TestTrafficKind:
    def test_innermost_kind_wins(self):
        assert stacked_frame().traffic_kind() is PacketKind.TCP_SYN

    def test_icmp_kinds(self):
        request = IcmpMessage(icmp_type=IcmpType.ECHO_REQUEST)
        reply = IcmpMessage(icmp_type=IcmpType.ECHO_REPLY)
        assert request.kind() is PacketKind.ICMP_REQUEST
        assert reply.kind() is PacketKind.ICMP_REPLY

    def test_bare_mac_frame_kind(self):
        frame = Ieee802154Frame(pan_id=1, seq=1, src=NodeId("a"), dst=NodeId("b"))
        assert frame.traffic_kind() is PacketKind.MAC_802154

    def test_opaque_payload_falls_back_to_outer_kind(self):
        frame = Ieee802154Frame(
            pan_id=1, seq=1, src=NodeId("a"), dst=NodeId("b"),
            payload=RawPayload(length=10),
        )
        assert frame.traffic_kind() is PacketKind.MAC_802154


class TestSummary:
    def test_summary_mentions_all_layers(self):
        text = stacked_frame().summary()
        assert "wififrame" in text
        assert "ippacket" in text
        assert "tcpsegment" in text

    def test_mediums_render(self):
        assert str(Medium.IEEE_802_15_4) == "802.15.4"
