"""Per-rule unit tests for kalis-lint, over synthetic mini-trees."""

import textwrap

from repro.analysis.engine import run_rules
from repro.analysis.project import Project


def make_project(tmp_path, files):
    """Write a ``src/`` tree from {relpath: source} and parse it."""
    for relpath, content in files.items():
        path = tmp_path / "src" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    for directory in sorted((tmp_path / "src").rglob("*")):
        if directory.is_dir():
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
    return Project.load([tmp_path / "src" / "repro"], root=tmp_path)


def run(tmp_path, files, rule):
    return run_rules(make_project(tmp_path, files), select=[rule])


class TestDeterminismRule:
    def test_banned_time_call_in_sim(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/sim/engine.py": """
                import time

                def stamp():
                    return time.time()
                """
            },
            "KL001",
        )
        assert [f.key for f in findings] == ["time.time"]
        assert findings[0].path == "src/repro/sim/engine.py"
        assert findings[0].line == 5

    def test_random_import_and_from_time_import(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/thing.py": """
                import random
                from time import monotonic
                """
            },
            "KL001",
        )
        assert {f.key for f in findings} == {
            "import.random",
            "import.time.monotonic",
        }

    def test_datetime_class_and_numpy_random(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/attacks/burst.py": """
                from datetime import datetime
                import numpy as np

                def go():
                    return datetime.now(), np.random.random()
                """
            },
            "KL001",
        )
        assert {f.key for f in findings} == {
            "datetime.datetime.now",
            "numpy.random",
        }

    def test_util_and_unguarded_packages_exempt(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/util/wallclock.py": """
                import time

                def now():
                    return time.time()
                """,
                "repro/metrics/timer.py": """
                import time

                def now():
                    return time.time()
                """,
            },
            "KL001",
        )
        assert findings == []


_GOOD_MODULE = """
from repro.core.modules.base import DetectionModule, Requirement
from repro.core.modules.registry import register_module


@register_module
class GoodModule(DetectionModule):
    \"\"\"Detects nothing much.

    Parameters: ``threshold`` (default 3).
    \"\"\"

    NAME = "GoodModule"
    REQUIREMENTS = (Requirement(label="Multihop"),)
    DETECTS = ("smurf",)

    def __init__(self, params=None):
        super().__init__(params)
        self.threshold = self.param("threshold", 3)
"""

_PRODUCER = """
class Sensor:
    \"\"\"Writes Multihop.\"\"\"

    def process(self, kb):
        \"\"\"Write.\"\"\"
        kb.put("Multihop", True)
"""


class TestModuleContractRule:
    def test_good_module_is_clean(self, tmp_path):
        findings = run(
            tmp_path, {"repro/core/modules/detection/good.py": _GOOD_MODULE},
            "KL002",
        )
        assert findings == []

    def test_missing_name_registration_and_detects(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/modules/detection/bad.py": """
                from repro.core.modules.base import DetectionModule


                class BadModule(DetectionModule):
                    \"\"\"Broken on purpose.\"\"\"
                """
            },
            "KL002",
        )
        assert {f.key for f in findings} == {
            "BadModule.NAME",
            "BadModule",
            "BadModule.DETECTS",
        }

    def test_duplicate_name_across_files(self, tmp_path):
        other = _GOOD_MODULE.replace("GoodModule", "OtherModule").replace(
            'NAME = "OtherModule"', 'NAME = "GoodModule"'
        )
        findings = run(
            tmp_path,
            {
                "repro/core/modules/detection/good.py": _GOOD_MODULE,
                "repro/core/modules/detection/other.py": other,
            },
            "KL002",
        )
        assert [f.key for f in findings] == ["duplicate.GoodModule"]

    def test_missing_super_init_and_undocumented_param(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/modules/detection/leaky.py": """
                from repro.core.modules.base import DetectionModule
                from repro.core.modules.registry import register_module


                @register_module
                class LeakyModule(DetectionModule):
                    \"\"\"Drops params.\"\"\"

                    NAME = "LeakyModule"
                    DETECTS = ("smurf",)

                    def __init__(self, params=None):
                        self.window = self.param("window", 5.0)
                """
            },
            "KL002",
        )
        assert {f.key for f in findings} == {
            "LeakyModule.__init__",
            "LeakyModule.params.window",
        }


class TestLabelFlowRule:
    def test_exact_producer_satisfies_requirement(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/modules/detection/good.py": _GOOD_MODULE,
                "repro/core/modules/sensing/topo.py": _PRODUCER,
            },
            "KL003",
        )
        assert findings == []

    def test_fstring_prefix_producer_covers_label(self, tmp_path):
        consumer = _GOOD_MODULE.replace('label="Multihop"', 'label="Multihop.wifi"')
        producer = _PRODUCER.replace(
            'kb.put("Multihop", True)', 'kb.put(f"Multihop.{medium}", True)'
        ).replace("def process(self, kb):", "def process(self, kb, medium=0):")
        findings = run(
            tmp_path,
            {
                "repro/core/modules/detection/good.py": consumer,
                "repro/core/modules/sensing/topo.py": producer,
            },
            "KL003",
        )
        assert findings == []

    def test_unproduced_requirement_is_error(self, tmp_path):
        findings = run(
            tmp_path,
            {"repro/core/modules/detection/good.py": _GOOD_MODULE},
            "KL003",
        )
        assert len(findings) == 1
        assert findings[0].key == "Multihop"
        assert findings[0].severity.value == "error"
        assert "dormant" in findings[0].message

    def test_orphan_producer_is_warning(self, tmp_path):
        findings = run(
            tmp_path, {"repro/core/modules/sensing/topo.py": _PRODUCER},
            "KL003",
        )
        assert [f.key for f in findings] == ["Multihop"]
        assert findings[0].severity.value == "warning"

    def test_orphan_softened_by_constant_reference_elsewhere(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/modules/sensing/topo.py": _PRODUCER,
                "repro/core/freeze.py": """
                FREEZABLE = ("Multihop",)
                """,
            },
            "KL003",
        )
        assert findings == []

    def test_consumer_via_tuple_constant(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/freeze.py": """
                LABELS = ("Multihop", "Mobility")


                def freeze(kb):
                    \"\"\"Read every freezable label.\"\"\"
                    return [kb.get_knowgget(LABELS)]
                """
            },
            "KL003",
        )
        # Both tuple labels become consumers; neither is produced.
        assert {f.key for f in findings} == {"Multihop", "Mobility"}


_PACKET_BASE = """
from dataclasses import dataclass


@dataclass(frozen=True)
class Packet:
    \"\"\"Root.\"\"\"

    HEADER_BYTES = 0
"""

_CODEC = """
from repro.net.packets import base as _base
from repro.net.packets import good as _good

_MODULES = (_base, _good)
"""


class TestPacketSchemaRule:
    def test_good_packet_is_clean(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/net/packets/base.py": _PACKET_BASE,
                "repro/net/packets/good.py": """
                from dataclasses import dataclass

                from repro.net.packets.base import Packet


                @dataclass(frozen=True)
                class GoodFrame(Packet):
                    \"\"\"Fine.\"\"\"

                    HEADER_BYTES = 8
                """,
                "repro/net/packets/codec.py": _CODEC,
            },
            "KL004",
        )
        assert findings == []

    def test_unfrozen_unsized_unregistered(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/net/packets/base.py": _PACKET_BASE,
                "repro/net/packets/rogue.py": """
                from dataclasses import dataclass

                from repro.net.packets.base import Packet


                @dataclass
                class RogueFrame(Packet):
                    \"\"\"Broken.\"\"\"
                """,
                "repro/net/packets/codec.py": """
                from repro.net.packets import base as _base

                _MODULES = (_base,)
                """,
            },
            "KL004",
        )
        assert {f.key for f in findings} == {
            "RogueFrame.frozen",
            "RogueFrame.size",
            "RogueFrame.codec",
        }

    def test_size_inherited_from_concrete_ancestor(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/net/packets/base.py": _PACKET_BASE,
                "repro/net/packets/good.py": """
                from dataclasses import dataclass

                from repro.net.packets.base import Packet


                @dataclass(frozen=True)
                class MacFrame(Packet):
                    \"\"\"Sized.\"\"\"

                    HEADER_BYTES = 11


                @dataclass(frozen=True)
                class BeaconFrame(MacFrame):
                    \"\"\"Inherits size from MacFrame.\"\"\"
                """,
                "repro/net/packets/codec.py": _CODEC,
            },
            "KL004",
        )
        assert findings == []


class TestTopicFlowRule:
    def test_matched_topics_are_clean(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/alerts.py": """
                ALERT_TOPIC = "alerts"
                """,
                "repro/core/wiring.py": """
                from repro.core.alerts import ALERT_TOPIC

                PREFIX = "knowledge."


                def wire(bus, key):
                    \"\"\"Publish and subscribe consistently.\"\"\"
                    bus.publish(ALERT_TOPIC, None)
                    bus.publish(PREFIX + key, None)
                    bus.subscribe(ALERT_TOPIC, print)
                    bus.subscribe_prefix(PREFIX, print)
                """,
            },
            "KL005",
        )
        assert findings == []

    def test_subscribed_never_published(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/wiring.py": """
                def wire(bus):
                    \"\"\"A typo'd subscription.\"\"\"
                    bus.publish("alerts", None)
                    bus.subscribe("alert", print)
                """
            },
            "KL005",
        )
        assert [f.key for f in findings] == ["alert"]
        assert findings[0].line == 5

    def test_dynamic_publish_suppresses(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/wiring.py": """
                def wire(bus, topic):
                    \"\"\"Dynamic publish makes subscriptions unknowable.\"\"\"
                    bus.publish(topic, None)
                    bus.subscribe("anything", print)
                """
            },
            "KL005",
        )
        assert findings == []

    def test_kb_subscribe_is_not_a_bus_topic(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/wiring.py": """
                def wire(kb):
                    \"\"\"KnowledgeBase.subscribe takes a label, not a topic.\"\"\"
                    kb.subscribe("Mobility", print)
                """
            },
            "KL005",
        )
        assert findings == []


class TestUnusedImportRule:
    def test_unused_import_flagged(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/thing.py": """
                import os
                from typing import Dict


                def f() -> Dict:
                    \"\"\"Uses only the typing import.\"\"\"
                    return {}
                """
            },
            "KL006",
        )
        assert [f.key for f in findings] == ["os"]

    def test_string_reference_and_noqa_and_init_exempt(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/thing.py": """
                import os  # noqa
                import sys

                __all__ = ["sys"]
                """,
                "repro/core/pkg/__init__.py": """
                import json
                """,
            },
            "KL006",
        )
        assert findings == []


class TestSwallowedExceptionRule:
    def test_bare_except_flagged(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/thing.py": """
                def fetch():
                    try:
                        return 1
                    except:
                        return 2
                """
            },
            "KL007",
        )
        assert [f.key for f in findings] == ["fetch.bare"]
        assert findings[0].line == 5

    def test_inert_catch_all_flagged(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/thing.py": """
                class Worker:
                    def step(self):
                        try:
                            self.run()
                        except Exception:
                            pass

                def loop(items):
                    for item in items:
                        try:
                            item()
                        except (ValueError, BaseException) as error:
                            continue
                """
            },
            "KL007",
        )
        assert sorted(f.key for f in findings) == [
            "Worker.step.Exception",
            "loop.BaseException",
        ]

    def test_handled_catch_all_and_narrow_swallow_allowed(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/thing.py": """
                def safe(callback, failures):
                    try:
                        callback()
                    except Exception as error:
                        failures.append(error)

                def probe(path):
                    try:
                        return path.read_text()
                    except FileNotFoundError:
                        pass
                """
            },
            "KL007",
        )
        assert findings == []

    def test_docstring_and_bare_return_still_inert(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/thing.py": """
                def quiet():
                    try:
                        work()
                    except Exception:
                        \"\"\"Nothing to do.\"\"\"
                        return
                """
            },
            "KL007",
        )
        assert [f.key for f in findings] == ["quiet.Exception"]


class TestPrintRule:
    def test_print_in_library_module_flagged(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/core/thing.py": """
                def handle(capture):
                    print("saw", capture)
                """
            },
            "KL008",
        )
        assert len(findings) == 1
        assert findings[0].path == "src/repro/core/thing.py"
        assert findings[0].line == 3
        assert "repro.core.thing" in findings[0].message

    def test_cli_main_and_analysis_exempt(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/cli.py": """
                def main():
                    print("report")
                """,
                "repro/__main__.py": """
                print("entry point")
                """,
                "repro/analysis/cli.py": """
                def report(finding):
                    print(finding)
                """,
            },
            "KL008",
        )
        assert findings == []

    def test_print_in_string_not_flagged(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/obs/report.py": """
                def render():
                    '''Usage::

                        print(render())
                    '''
                    return "print('hello')"
                """
            },
            "KL008",
        )
        assert findings == []

    def test_locally_rebound_print_is_legal(self, tmp_path):
        findings = run(
            tmp_path,
            {
                "repro/sim/thing.py": """
                print = object()

                def use():
                    print()
                """
            },
            "KL008",
        )
        assert findings == []
