"""Integration tests for the KalisNode facade."""


from repro.core.kalis import (
    DEFAULT_DETECTION_MODULES,
    DEFAULT_SENSING_MODULES,
    KalisNode,
    available_module_names,
)
from repro.net.packets.base import Medium
from repro.util.ids import NodeId
from tests.conftest import ctp_data_capture, wifi_icmp_capture

K = NodeId("kalis-1")
A, B = NodeId("a"), NodeId("b")


class TestConstruction:
    def test_default_library_registered(self):
        kalis = KalisNode(K)
        registered = {m.NAME for m in kalis.manager.modules()}
        assert set(DEFAULT_SENSING_MODULES) <= registered
        assert set(DEFAULT_DETECTION_MODULES) <= registered

    def test_sensing_active_detection_dormant_at_start(self):
        kalis = KalisNode(K)
        active = set(kalis.active_module_names())
        assert active == set(DEFAULT_SENSING_MODULES)

    def test_config_text_accepted(self):
        kalis = KalisNode(
            K,
            config="""
            modules = { IcmpFloodModule (threshold=5) }
            knowggets = { Mobility = false }
            """,
        )
        module = kalis.manager.module("IcmpFloodModule")
        assert module.active  # named in config => activated by default
        assert module.threshold == 5
        assert kalis.kb.get("Mobility", bool) is False

    def test_config_static_knowgget_with_entity(self):
        kalis = KalisNode(
            K, config="knowggets = { SignalStrength@SensorA = -67 }"
        )
        assert kalis.kb.get("SignalStrength", int, entity=NodeId("SensorA")) == -67

    def test_restricted_module_library(self):
        kalis = KalisNode(K, module_names=["TopologyDiscoveryModule"])
        assert [m.NAME for m in kalis.manager.modules()] == [
            "TopologyDiscoveryModule"
        ]

    def test_available_module_names(self):
        names = available_module_names()
        assert "IcmpFloodModule" in names


class TestPipeline:
    def test_feed_reaches_datastore_and_modules(self):
        kalis = KalisNode(K)
        kalis.feed(wifi_icmp_capture(A, B, "10.23.0.1", 0.0))
        assert len(kalis.datastore) == 1
        assert kalis.comm.total_captures == 1

    def test_medium_filter(self):
        kalis = KalisNode(K, mediums=[Medium.WIFI])
        kalis.feed(ctp_data_capture(A, B, origin=A, seqno=1, timestamp=0.0))
        assert kalis.comm.total_captures == 0
        assert kalis.comm.dropped_unsupported == 1

    def test_knowledge_driven_activation_end_to_end(self):
        kalis = KalisNode(K)
        # Multi-hop CTP evidence activates the watchdog family.
        kalis.feed(ctp_data_capture(A, B, origin=NodeId("c"), seqno=1,
                                    timestamp=0.0, thl=1))
        active = kalis.active_module_names()
        assert "ForwardingMisbehaviorModule" in active
        assert "IcmpFloodModule" not in active

    def test_describe_renders(self):
        text = KalisNode(K).describe()
        assert "KalisNode kalis-1" in text
        assert "TopologyDiscoveryModule" in text
        assert "dormant" in text and "ACTIVE" in text

    def test_resource_accessors(self):
        kalis = KalisNode(K)
        assert kalis.cpu_work_units() == 0.0
        before = kalis.approximate_ram_bytes()
        for i in range(50):
            kalis.feed(wifi_icmp_capture(A, B, "10.23.0.1", float(i)))
        assert kalis.cpu_work_units() > 0
        assert kalis.approximate_ram_bytes() > before


class TestLiveDeployment:
    def test_deploy_on_simulator(self):
        from repro.devices.wsn import build_wsn
        from repro.sim.engine import Simulator
        from repro.sim.topology import line_positions

        sim = Simulator(seed=21)
        build_wsn(sim, line_positions(4, 25.0))
        kalis = KalisNode(K)
        sniffer = kalis.deploy(sim, position=(40.0, 8.0))
        sim.run(40.0)
        assert kalis.comm.total_captures > 0
        assert kalis.kb.get("Multihop.802154", bool) is True
        assert sniffer.node_id == K

    def test_trace_replay_equals_live_feed(self):
        """Replaying a recorded trace yields the same knowledge and
        alerts as observing the traffic live — the Data Store replay
        transparency property (§IV-B2)."""
        from repro.devices.wsn import build_wsn
        from repro.sim.engine import Simulator
        from repro.sim.node import SnifferNode
        from repro.sim.topology import line_positions
        from repro.trace.recorder import TraceRecorder

        sim = Simulator(seed=22)
        build_wsn(sim, line_positions(4, 25.0))
        live = KalisNode(NodeId("live"))
        live.deploy(sim, position=(40.0, 8.0))
        recorder_sniffer = SnifferNode(NodeId("recorder"), (40.0, 8.0))
        sim.add_node(recorder_sniffer)
        recorder = TraceRecorder().attach(recorder_sniffer)
        sim.run(40.0)

        offline = KalisNode(NodeId("offline"))
        offline.replay_trace(recorder.trace)
        # Same module activations and equivalent knowledge labels.
        assert offline.active_module_names() == live.active_module_names()
        live_labels = {k.label for k in live.kb.local_knowggets()}
        offline_labels = {k.label for k in offline.kb.local_knowggets()}
        assert live_labels == offline_labels
