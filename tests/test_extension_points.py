"""Tests for the extension points: custom packet types, enums, config
files from disk — the "new modules without recompiling" story."""

import enum
from dataclasses import dataclass


from repro.core.config import parse_config_file, render_config
from repro.net.packets.base import Packet, PacketKind
from repro.net.packets.codec import (
    decode_packet,
    encode_packet,
    register_enum_type,
    register_packet_type,
)


class TestCustomPacketTypes:
    def test_third_party_packet_roundtrips_after_registration(self):
        @register_enum_type
        class LoraKind(enum.Enum):
            JOIN = "join"
            UPLINK = "uplink"

        @register_packet_type
        @dataclass(frozen=True)
        class LoraFrame(Packet):
            dev_addr: int = 0
            kind_field: LoraKind = LoraKind.UPLINK

            HEADER_BYTES = 13

            def kind(self) -> PacketKind:
                return PacketKind.OTHER

        frame = LoraFrame(dev_addr=0xABC, kind_field=LoraKind.JOIN)
        restored = decode_packet(encode_packet(frame))
        assert restored == frame
        assert restored.kind_field is LoraKind.JOIN

    def test_custom_module_via_registry_and_config(self):
        """A new detection module plugs into a KalisNode purely by name
        — the paper's Java-Reflection extensibility, end to end."""
        from repro.core.kalis import KalisNode
        from repro.core.modules.base import DetectionModule, Requirement
        from repro.core.modules.registry import register_module
        from repro.util.ids import NodeId

        @register_module
        class LoraAnomalyModule(DetectionModule):
            """Example third-party module (test fixture)."""

            NAME = "LoraAnomalyModule"
            REQUIREMENTS = (Requirement(label="LoraPresent", equals=True),)
            DETECTS = ("lora_anomaly",)

        kalis = KalisNode(
            NodeId("kalis-1"),
            config="modules = { LoraAnomalyModule (sensitivity=3) }",
        )
        module = kalis.manager.module("LoraAnomalyModule")
        assert module.active  # named in config -> active by default
        assert module.params == {"sensitivity": 3}


class TestConfigFromDisk:
    def test_parse_config_file(self, tmp_path):
        from repro.core.config import KalisConfig, ModuleSpec, StaticKnowgget

        config = KalisConfig(
            modules=[ModuleSpec(name="TrafficStatsModule", params={"window": 5})],
            knowggets=[StaticKnowgget(label="Mobility", value=False)],
        )
        path = tmp_path / "kalis.conf"
        path.write_text(render_config(config))
        loaded = parse_config_file(path)
        assert loaded == config
