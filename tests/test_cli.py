"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "e99"])


class TestCommands:
    def test_modules_listing(self, capsys):
        assert main(["modules"]) == 0
        out = capsys.readouterr().out
        assert "IcmpFloodModule" in out
        assert "requires:" in out

    def test_taxonomy_target(self, capsys):
        assert main(["taxonomy", "target"]) == 0
        assert "Denial of Thing" in capsys.readouterr().out

    def test_taxonomy_feature(self, capsys):
        assert main(["taxonomy", "feature"]) == 0
        assert "selective_forwarding" in capsys.readouterr().out

    def test_experiment_reactivity(self, capsys):
        assert main(["experiment", "reactivity", "--seed", "13"]) == 0
        assert "detection rate 100%" in capsys.readouterr().out

    def test_experiment_e1_small(self, capsys):
        assert main(["experiment", "e1", "--instances", "6"]) == 0
        out = capsys.readouterr().out
        assert "kalis" in out and "traditional" in out

    def test_experiment_wormhole(self, capsys):
        assert main(["experiment", "wormhole", "--seed", "17"]) == 0
        out = capsys.readouterr().out
        assert "isolated" in out and "collective" in out

    def test_demo(self, capsys):
        assert main(["demo", "--seed", "42", "--duration", "45"]) == 0
        out = capsys.readouterr().out
        assert "KalisNode kalis-1" in out
        assert "ALERT" in out


class TestTelemetry:
    def test_experiment_with_telemetry_writes_export(self, capsys, tmp_path):
        path = tmp_path / "run.jsonl"
        assert main(
            ["experiment", "reactivity", "--seed", "13", "--telemetry", str(path)]
        ) == 0
        assert f"telemetry written to {path}" in capsys.readouterr().out

        from repro.obs import load_export

        records = load_export(path)
        assert records[0]["type"] == "meta"
        assert records[0]["spans_finished"] > 0

    def test_obs_report_renders_export(self, capsys, tmp_path):
        path = tmp_path / "run.jsonl.gz"
        assert main(
            ["experiment", "chaos", "--seed", "23", "--telemetry", str(path)]
        ) == 0
        capsys.readouterr()
        assert main(["obs", "report", str(path)]) == 0
        report = capsys.readouterr().out
        # The chaos run's two scripted failures must be attributable
        # from the export alone: the quarantined module by name, and
        # the dead-lettered topic.
        assert "TrafficStatsModule" in report
        assert "alert" in report
        assert "module.quarantine" in report
        assert "bus.deadletter" in report

    def test_obs_requires_action_and_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "report"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "inspect", "x.jsonl"])
