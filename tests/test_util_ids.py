"""Tests for node identifiers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.ids import NodeId, make_node_id, node_id_sequence, stable_hash


class TestNodeId:
    def test_valid_id(self):
        node = NodeId("mote-1")
        assert node.value == "mote-1"
        assert str(node) == "mote-1"

    def test_allows_dots_colons_underscores(self):
        for value in ("a.b", "a:b", "a_b", "a-b", "A9"):
            assert NodeId(value).value == value

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            NodeId("")

    def test_rejects_reserved_knowgget_separators(self):
        with pytest.raises(ValueError):
            NodeId("a$b")
        with pytest.raises(ValueError):
            NodeId("a@b")

    def test_rejects_leading_punctuation(self):
        with pytest.raises(ValueError):
            NodeId("-leading")

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            NodeId(17)

    def test_equality_and_hash(self):
        assert NodeId("x") == NodeId("x")
        assert NodeId("x") != NodeId("y")
        assert len({NodeId("x"), NodeId("x"), NodeId("y")}) == 2

    def test_ordering_is_lexicographic(self):
        assert NodeId("a") < NodeId("b")
        assert sorted([NodeId("c"), NodeId("a")])[0] == NodeId("a")

    def test_with_suffix(self):
        assert NodeId("mote").with_suffix("clone") == NodeId("mote-clone")


class TestHelpers:
    def test_make_node_id(self):
        assert make_node_id("mote", 3) == NodeId("mote-3")

    def test_make_node_id_rejects_negative(self):
        with pytest.raises(ValueError):
            make_node_id("mote", -1)

    def test_sequence(self):
        gen = node_id_sequence("n", start=5)
        assert next(gen) == NodeId("n-5")
        assert next(gen) == NodeId("n-6")

    def test_stable_hash_is_deterministic(self):
        assert stable_hash(NodeId("mote-1")) == stable_hash(NodeId("mote-1"))

    def test_stable_hash_differs_between_ids(self):
        assert stable_hash(NodeId("mote-1")) != stable_hash(NodeId("mote-2"))


@given(st.from_regex(r"[A-Za-z0-9][A-Za-z0-9_.:\-]{0,20}", fullmatch=True))
def test_any_valid_identifier_roundtrips(value):
    node = NodeId(value)
    assert node.value == value
    assert NodeId(str(node)) == node
