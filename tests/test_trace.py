"""Tests for trace recording, persistence, merging and replay."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.packets.base import Medium
from repro.net.packets.icmp import IcmpMessage, IcmpType
from repro.net.packets.ip import IpPacket
from repro.net.packets.wifi import WifiFrame
from repro.sim.capture import Capture
from repro.trace.record import TraceRecord
from repro.trace.replay import TraceReplayer
from repro.trace.trace import Trace
from repro.util.ids import NodeId


def capture_at(timestamp: float, seq: int = 0) -> Capture:
    return Capture(
        packet=WifiFrame(
            src=NodeId("a"), dst=NodeId("b"),
            payload=IpPacket(
                src_ip="10.23.0.1", dst_ip="10.23.0.2",
                payload=IcmpMessage(icmp_type=IcmpType.ECHO_REPLY, sequence=seq),
            ),
        ),
        timestamp=timestamp,
        medium=Medium.WIFI,
        rssi=-50.0 - seq,
        observer=NodeId("kalis-1"),
    )


class TestTraceRecord:
    def test_roundtrip_benign(self):
        record = TraceRecord(capture=capture_at(1.5))
        assert TraceRecord.from_dict(record.to_dict()) == record

    def test_roundtrip_with_ground_truth(self):
        record = TraceRecord(
            capture=capture_at(2.0),
            attack="icmp_flood",
            attacker=NodeId("evil"),
            instance=3,
        )
        restored = TraceRecord.from_dict(record.to_dict())
        assert restored == record
        assert restored.is_attack

    def test_shifted(self):
        record = TraceRecord(capture=capture_at(2.0), attack="x")
        shifted = record.shifted(3.0)
        assert shifted.timestamp == 5.0
        assert shifted.attack == "x"
        assert shifted.capture.packet == record.capture.packet


class TestTrace:
    def test_records_kept_in_time_order(self):
        trace = Trace([TraceRecord(capture_at(3.0)), TraceRecord(capture_at(1.0))])
        assert [r.timestamp for r in trace] == [1.0, 3.0]

    def test_out_of_order_append_resorts(self):
        trace = Trace()
        trace.append(TraceRecord(capture_at(5.0)))
        trace.append(TraceRecord(capture_at(2.0)))
        assert [r.timestamp for r in trace] == [2.0, 5.0]

    def test_duration(self):
        trace = Trace([TraceRecord(capture_at(1.0)), TraceRecord(capture_at(4.5))])
        assert trace.duration == 3.5
        assert Trace().duration == 0.0

    def test_between(self):
        trace = Trace([TraceRecord(capture_at(float(i))) for i in range(10)])
        window = trace.between(2.0, 5.0)
        assert [r.timestamp for r in window] == [2.0, 3.0, 4.0]

    def test_attack_filters_and_instances(self):
        trace = Trace(
            [
                TraceRecord(capture_at(1.0)),
                TraceRecord(capture_at(2.0), attack="smurf", instance=0),
                TraceRecord(capture_at(3.0), attack="smurf", instance=1),
            ]
        )
        assert len(trace.attack_records()) == 2
        assert len(trace.benign_records()) == 1
        assert trace.attack_instances() == {("smurf", 0), ("smurf", 1)}

    def test_merged_with_interleaves(self):
        first = Trace([TraceRecord(capture_at(1.0)), TraceRecord(capture_at(3.0))])
        second = Trace([TraceRecord(capture_at(2.0))])
        merged = first.merged_with(second)
        assert [r.timestamp for r in merged] == [1.0, 2.0, 3.0]

    def test_shifted_trace(self):
        trace = Trace([TraceRecord(capture_at(1.0))])
        assert trace.shifted(10.0)[0].timestamp == 11.0

    def test_captures_strips_ground_truth(self):
        trace = Trace([TraceRecord(capture_at(1.0), attack="x")])
        captures = trace.captures()
        assert len(captures) == 1
        assert not hasattr(captures[0], "attack")


class TestPersistence:
    def test_jsonl_roundtrip(self, tmp_path):
        trace = Trace([TraceRecord(capture_at(float(i), seq=i)) for i in range(5)])
        path = tmp_path / "t.jsonl"
        trace.save(path)
        assert Trace.load(path).captures() == trace.captures()

    def test_gzip_roundtrip(self, tmp_path):
        trace = Trace([TraceRecord(capture_at(float(i), seq=i)) for i in range(5)])
        path = tmp_path / "t.jsonl.gz"
        trace.save(path)
        assert Trace.load(path).captures() == trace.captures()
        assert path.read_bytes()[:2] == b"\x1f\x8b"  # actually gzipped

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"not": "a record"}\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            Trace.load(path)

    def test_blank_lines_skipped(self, tmp_path):
        trace = Trace([TraceRecord(capture_at(1.0))])
        path = tmp_path / "t.jsonl"
        trace.save(path)
        path.write_text(path.read_text() + "\n\n")
        assert len(Trace.load(path)) == 1


class TestReplay:
    def test_batch_replay_preserves_order(self):
        trace = Trace([TraceRecord(capture_at(float(i))) for i in range(5)])
        seen = []
        count = TraceReplayer(trace).replay_batch(seen.append)
        assert count == 5
        assert [c.timestamp for c in seen] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_simulated_replay_respects_timestamps(self):
        from repro.sim.engine import Simulator

        trace = Trace([TraceRecord(capture_at(2.0)), TraceRecord(capture_at(4.0))])
        sim = Simulator()
        arrivals = []
        replayer = TraceReplayer(trace)
        replayer.replay_on(sim, lambda c: arrivals.append(sim.clock.now))
        sim.run_until(10.0)
        assert arrivals == [0.0, 2.0]  # offset aligns first capture to now

    def test_empty_trace_replay(self):
        from repro.sim.engine import Simulator

        assert TraceReplayer(Trace()).replay_on(Simulator(), lambda c: None) == 0


@settings(max_examples=30)
@given(st.lists(st.floats(0.0, 1000.0, allow_nan=False), max_size=20))
def test_trace_always_sorted_property(timestamps):
    trace = Trace()
    for timestamp in timestamps:
        trace.append(TraceRecord(capture_at(timestamp)))
    ordered = [r.timestamp for r in trace]
    assert ordered == sorted(ordered)
    assert len(trace) == len(timestamps)
