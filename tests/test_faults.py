"""Fault-injection substrate tests: node crash/reboot, interface flaps,
planned module crashes, link partitions, and plan determinism."""

import pytest

from repro.core.collective import CollectiveKnowledgeNetwork
from repro.core.kalis import KalisNode
from repro.core.knowledge import KnowledgeBase
from repro.devices.wsn import TelosbMote
from repro.eventbus.bus import EventBus
from repro.faults import (
    FaultPlan,
    InjectedModuleCrash,
    InterfaceFlap,
    LinkOutage,
    ModuleCrash,
    NodeCrash,
)
from repro.net.packets.base import Medium
from repro.sim.engine import Simulator
from repro.sim.node import SimNode
from repro.util.ids import NodeId
from tests.conftest import wifi_icmp_capture

K = NodeId("kalis-1")


class TestNodeFaultHooks:
    def test_crashed_node_neither_sends_nor_hears(self):
        sim = Simulator(seed=1)
        a = sim.add_node(SimNode(NodeId("a"), (0.0, 0.0)))
        b = sim.add_node(SimNode(NodeId("b"), (5.0, 0.0)))
        b.crash()
        from repro.net.packets.wifi import WifiFrame

        sent = a.send(Medium.WIFI, WifiFrame(src=a.node_id, dst=b.node_id))
        sim.run_until(1.0)
        # A dead receiver is culled at schedule time: no reception is
        # scheduled for it, and it never hears the frame.
        assert sent == 0
        assert b.received_count == 0
        assert sim.deliveries == 0
        assert b.send(Medium.WIFI, WifiFrame(src=b.node_id, dst=a.node_id)) == 0
        assert b.crash_count == 1

    def test_reboot_restores_both_directions(self):
        sim = Simulator(seed=2)
        a = sim.add_node(SimNode(NodeId("a"), (0.0, 0.0)))
        b = sim.add_node(SimNode(NodeId("b"), (5.0, 0.0)))
        b.crash()
        b.reboot()
        from repro.net.packets.wifi import WifiFrame

        a.send(Medium.WIFI, WifiFrame(src=a.node_id, dst=b.node_id))
        sim.run_until(1.0)
        assert b.received_count == 1
        assert b.alive

    def test_disabled_medium_drops_sends_and_receptions(self):
        sim = Simulator(seed=3)
        a = sim.add_node(SimNode(NodeId("a"), (0.0, 0.0)))
        b = sim.add_node(SimNode(NodeId("b"), (5.0, 0.0)))
        b.disable_medium(Medium.WIFI)
        from repro.net.packets.wifi import WifiFrame

        # The flapped interface is skipped at propagation time...
        assert a.send(Medium.WIFI, WifiFrame(src=a.node_id, dst=b.node_id)) == 0
        # ...and an owned-but-down interface sends nothing (no error).
        assert b.send(Medium.WIFI, WifiFrame(src=b.node_id, dst=a.node_id)) == 0
        b.enable_medium(Medium.WIFI)
        assert a.send(Medium.WIFI, WifiFrame(src=a.node_id, dst=b.node_id)) == 1

    def test_unequipped_medium_still_raises(self):
        node = SimNode(NodeId("a"), mediums=(Medium.WIFI,))
        with pytest.raises(ValueError):
            node.disable_medium(Medium.BLUETOOTH)


class TestFaultPlanScheduling:
    def test_node_crash_window(self):
        sim = Simulator(seed=4)
        mote = sim.add_node(TelosbMote(NodeId("mote-1"), (0.0, 0.0)))
        plan = FaultPlan(seed=4).add(
            NodeCrash(node=NodeId("mote-1"), at=10.0, duration=20.0)
        )
        plan.apply(sim)
        sim.run_until(15.0)
        assert not mote.alive
        sim.run_until(31.0)
        assert mote.alive
        assert mote.crash_count == 1

    def test_permanent_crash_without_duration(self):
        sim = Simulator(seed=5)
        mote = sim.add_node(TelosbMote(NodeId("mote-1"), (0.0, 0.0)))
        FaultPlan().add(NodeCrash(node=NodeId("mote-1"), at=1.0)).apply(sim)
        sim.run_until(1000.0)
        assert not mote.alive

    def test_interface_flap_window(self):
        sim = Simulator(seed=6)
        node = sim.add_node(SimNode(NodeId("a"), mediums=(Medium.WIFI,)))
        plan = FaultPlan().add(
            InterfaceFlap(
                node=NodeId("a"), medium=Medium.WIFI, at=5.0, duration=5.0
            )
        )
        plan.apply(sim)
        sim.run_until(6.0)
        assert Medium.WIFI not in node.mediums
        sim.run_until(11.0)
        assert Medium.WIFI in node.mediums

    def test_crash_of_removed_node_is_a_no_op(self):
        sim = Simulator(seed=7)
        sim.add_node(SimNode(NodeId("a")))
        FaultPlan().add(NodeCrash(node=NodeId("a"), at=5.0)).apply(sim)
        sim.remove_node(NodeId("a"))
        sim.run_until(10.0)  # must not raise

    def test_jitter_is_seeded_and_deterministic(self):
        def shifted_times(seed):
            plan = FaultPlan(seed=seed, jitter=2.0)
            return [plan._shift(10.0), plan._shift(10.0)]

        assert shifted_times(9) == shifted_times(9)
        assert shifted_times(9) != shifted_times(10)
        for time in shifted_times(9):
            assert 10.0 <= time < 12.0

    def test_plan_cannot_be_applied_twice(self):
        plan = FaultPlan()
        plan.apply(Simulator())
        with pytest.raises(RuntimeError):
            plan.apply(Simulator())

    def test_unknown_event_rejected(self):
        with pytest.raises(TypeError):
            FaultPlan(events=["not-an-event"]).apply(Simulator())

    def test_describe_lists_every_event(self):
        plan = FaultPlan(seed=1).add(
            NodeCrash(node=NodeId("a"), at=1.0, duration=2.0)
        ).add(LinkOutage(start=3.0, end=4.0))
        text = plan.describe()
        assert "crash a at t=1.0 for 2.0s" in text
        assert "partition peer links" in text


class TestModuleCrashInjection:
    @staticmethod
    def _kalis():
        return KalisNode(
            K, knowledge_driven=False, module_names=["TrafficStatsModule"]
        )

    def test_planned_module_crash_quarantines_then_restores(self):
        kalis = self._kalis()
        plan = FaultPlan().add(
            ModuleCrash(kalis=K, module="TrafficStatsModule", start=0.0, end=10.0)
        )
        plan.apply(Simulator(), kalis_nodes=[kalis])
        for step in range(5):  # crashes every capture in the window
            kalis.feed(
                wifi_icmp_capture(
                    NodeId("a"), NodeId("b"), "10.0.0.2", timestamp=float(step)
                )
            )
        assert kalis.manager.health_table()["TrafficStatsModule"] == "quarantined"
        injector = plan.injectors["kalis-1/TrafficStatsModule"]
        assert injector.injected == 3  # breaker opened after the third
        # Past the window and the cooldown, the probe capture restores it.
        kalis.feed(
            wifi_icmp_capture(NodeId("a"), NodeId("b"), "10.0.0.2", timestamp=50.0)
        )
        assert kalis.manager.health_table()["TrafficStatsModule"] == "healthy"
        failures = [f.error for f in kalis.manager.supervisor.failures]
        assert all(isinstance(e, InjectedModuleCrash) for e in failures)

    def test_every_nth_capture_crashes(self):
        kalis = self._kalis()
        plan = FaultPlan().add(
            ModuleCrash(
                kalis=K, module="TrafficStatsModule", start=0.0, end=100.0, every=3
            )
        )
        plan.apply(Simulator(), kalis_nodes=[kalis])
        for step in range(9):
            kalis.feed(
                wifi_icmp_capture(
                    NodeId("a"), NodeId("b"), "10.0.0.2", timestamp=float(step)
                )
            )
        injector = plan.injectors["kalis-1/TrafficStatsModule"]
        assert injector.injected == 3  # captures 3, 6, 9
        # Interleaved successes keep resetting the breaker: never opens.
        assert kalis.manager.health_table()["TrafficStatsModule"] == "healthy"

    def test_unknown_kalis_target_rejected(self):
        plan = FaultPlan().add(
            ModuleCrash(kalis=NodeId("ghost"), module="X", start=0.0)
        )
        with pytest.raises(ValueError):
            plan.apply(Simulator(), kalis_nodes=[self._kalis()])


class TestLinkOutageEvent:
    def test_outage_applied_to_every_link(self):
        network = CollectiveKnowledgeNetwork(sim=None)
        network.join(KnowledgeBase(NodeId("kalis-1"), EventBus()))
        network.join(KnowledgeBase(NodeId("kalis-2"), EventBus()))
        FaultPlan().add(LinkOutage(start=5.0, end=9.0)).apply(
            Simulator(), network=network
        )
        assert all(link.in_outage(6.0) for link in network.links())

    def test_outage_without_network_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().add(LinkOutage(start=1.0, end=2.0)).apply(Simulator())
