"""``kalis-lint --fix``: the KL006 unused-import autofixer."""

import textwrap
from pathlib import Path

from repro.analysis.cli import main

ROOT = Path(__file__).resolve().parent.parent

MESSY = '''"""A module with dead imports."""

import os
import sys, json
from pathlib import Path, PurePath
from typing import (
    Dict,
    List,
)


def use() -> Path:
    return Path(os.getcwd())
'''

FIXED = '''"""A module with dead imports."""

import os
from pathlib import Path


def use() -> Path:
    return Path(os.getcwd())
'''


def write_tree(tmp_path, body=MESSY):
    tree = tmp_path / "src" / "repro"
    tree.mkdir(parents=True)
    (tree / "__init__.py").write_text("", encoding="utf-8")
    mod = tree / "mod.py"
    mod.write_text(textwrap.dedent(body).lstrip(), encoding="utf-8")
    return tree, mod


def lint(tmp_path, *extra):
    return main(
        [
            "--root",
            str(tmp_path),
            "--no-baseline",
            "--select",
            "KL006",
            *extra,
            str(tmp_path / "src" / "repro"),
        ]
    )


class TestFix:
    def test_fix_rewrites_and_tree_lints_clean(self, tmp_path, capsys):
        _, mod = write_tree(tmp_path)
        assert lint(tmp_path) == 1  # findings before

        code = lint(tmp_path, "--fix")
        out = capsys.readouterr().out
        assert "fixed 5 finding(s) in 1 file(s)" in out
        assert code == 0  # nothing unfixable remained
        assert mod.read_text(encoding="utf-8") == FIXED

        # Round trip: the fixed tree lints clean.
        assert lint(tmp_path) == 0

    def test_fix_is_idempotent(self, tmp_path, capsys):
        _, mod = write_tree(tmp_path)
        lint(tmp_path, "--fix")
        capsys.readouterr()
        first = mod.read_text(encoding="utf-8")

        code = lint(tmp_path, "--fix")
        out = capsys.readouterr().out
        assert "fixed 0 finding(s) in 0 file(s)" in out
        assert code == 0
        assert mod.read_text(encoding="utf-8") == first

    def test_dry_run_prints_diff_and_writes_nothing(self, tmp_path, capsys):
        _, mod = write_tree(tmp_path)
        before = mod.read_text(encoding="utf-8")

        code = lint(tmp_path, "--fix", "--dry-run")
        out = capsys.readouterr().out
        assert code == 1  # findings still present
        assert "would fix 5 finding(s)" in out
        assert "-import sys, json" in out
        assert "+from pathlib import Path" in out
        assert mod.read_text(encoding="utf-8") == before

    def test_partial_statement_keeps_used_aliases(self, tmp_path, capsys):
        body = """
        import os as operating, sys


        def use():
            return operating.getcwd()
        """
        _, mod = write_tree(tmp_path, body)
        lint(tmp_path, "--fix")
        capsys.readouterr()
        assert (
            mod.read_text(encoding="utf-8")
            == "import os as operating\n\n\ndef use():\n"
            "    return operating.getcwd()\n"
        )

    def test_noqa_and_init_imports_untouched(self, tmp_path, capsys):
        tree = tmp_path / "src" / "repro"
        tree.mkdir(parents=True)
        (tree / "__init__.py").write_text(
            "from repro.mod import use\n", encoding="utf-8"
        )
        (tree / "mod.py").write_text(
            "import sys  # noqa: F401\n\n\ndef use():\n    return 1\n",
            encoding="utf-8",
        )
        code = lint(tmp_path, "--fix")
        out = capsys.readouterr().out
        assert code == 0
        assert "fixed 0 finding(s)" in out
        assert "noqa" in (tree / "mod.py").read_text(encoding="utf-8")
