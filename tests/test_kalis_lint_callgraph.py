"""Tests for the whole-program symbol/call-graph layer and the
project-model resolution hardening that backs it."""

import textwrap

from repro.analysis.callgraph import CallGraph
from repro.analysis.project import Project


def make_project(tmp_path, files):
    """Write a ``src/`` tree from {relpath: source} and parse it."""
    for relpath, content in files.items():
        path = tmp_path / "src" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    for directory in sorted((tmp_path / "src").rglob("*")):
        if directory.is_dir():
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
    return Project.load([tmp_path / "src" / "repro"], root=tmp_path)


class TestProjectResolutionHardening:
    def test_aliased_module_import(self, tmp_path):
        """``import repro.consts as c`` resolves ``c.TOPIC``."""
        project = make_project(
            tmp_path,
            {
                "repro/consts.py": 'TOPIC = "alert"\n',
                "repro/user.py": """
                import repro.consts as c

                def topic():
                    return c.TOPIC
                """,
            },
        )
        assert project.resolve_module("repro.user", "c") == "repro.consts"
        assert project.resolve_str_chain("repro.user", ["c", "TOPIC"]) == "alert"

    def test_plain_import_binds_head_segment(self, tmp_path):
        """``import repro.consts`` binds ``repro``; the full dotted chain
        walks submodules."""
        project = make_project(
            tmp_path,
            {
                "repro/consts.py": 'TOPIC = "alert"\n',
                "repro/user.py": "import repro.consts\n",
            },
        )
        assert project.resolve_module("repro.user", "repro") == "repro"
        assert (
            project.resolve_str_chain(
                "repro.user", ["repro", "consts", "TOPIC"]
            )
            == "alert"
        )

    def test_from_import_const_alias(self, tmp_path):
        """``from repro.consts import TOPIC as T`` resolves ``T``."""
        project = make_project(
            tmp_path,
            {
                "repro/consts.py": 'TOPIC = "alert"\n',
                "repro/user.py": "from repro.consts import TOPIC as T\n",
            },
        )
        assert project.resolve_str("repro.user", "T") == "alert"

    def test_relative_import_from_module(self, tmp_path):
        """``from .consts import TOPIC`` inside a plain module."""
        project = make_project(
            tmp_path,
            {
                "repro/pkg/consts.py": 'TOPIC = "alert"\n',
                "repro/pkg/user.py": "from .consts import TOPIC\n",
            },
        )
        assert project.resolve_str("repro.pkg.user", "TOPIC") == "alert"

    def test_relative_import_from_package_init(self, tmp_path):
        """Inside ``pkg/__init__.py``, level-1 refers to ``pkg`` itself —
        the historical off-by-one resolved it against the parent."""
        project = make_project(
            tmp_path,
            {
                "repro/pkg/consts.py": 'TOPIC = "alert"\n',
                "repro/pkg/__init__.py": "from .consts import TOPIC\n",
            },
        )
        assert project.resolve_str("repro.pkg", "TOPIC") == "alert"

    def test_two_level_relative_import(self, tmp_path):
        """``from ..consts import TOPIC`` one package deeper."""
        project = make_project(
            tmp_path,
            {
                "repro/consts.py": 'TOPIC = "alert"\n',
                "repro/pkg/user.py": "from ..consts import TOPIC\n",
            },
        )
        assert project.resolve_str("repro.pkg.user", "TOPIC") == "alert"

    def test_from_pkg_import_submodule(self, tmp_path):
        """``from repro import consts`` binds a module alias."""
        project = make_project(
            tmp_path,
            {
                "repro/consts.py": 'TOPIC = "alert"\n',
                "repro/user.py": "from repro import consts\n",
            },
        )
        assert project.resolve_module("repro.user", "consts") == "repro.consts"
        assert (
            project.resolve_str_chain("repro.user", ["consts", "TOPIC"])
            == "alert"
        )


class TestCallGraph:
    def test_self_method_resolution(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/mod.py": """
                class Thing:
                    def outer(self):
                        return self.inner()

                    def inner(self):
                        return 1
                """,
            },
        )
        graph = CallGraph.build(project)
        edges = graph.edges[("repro.mod", "Thing.outer")]
        assert ("repro.mod", "Thing.inner") in edges

    def test_method_resolution_through_base_class(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/base.py": """
                class Base:
                    def helper(self):
                        return 0
                """,
                "repro/derived.py": """
                from repro.base import Base

                class Child(Base):
                    def go(self):
                        return self.helper()
                """,
            },
        )
        graph = CallGraph.build(project)
        edges = graph.edges[("repro.derived", "Child.go")]
        assert ("repro.base", "Base.helper") in edges

    def test_imported_function_resolution(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/util2.py": """
                def helper():
                    return 0
                """,
                "repro/user.py": """
                from repro.util2 import helper

                def go():
                    return helper()
                """,
            },
        )
        graph = CallGraph.build(project)
        assert ("repro.util2", "helper") in graph.edges[("repro.user", "go")]

    def test_module_alias_call_resolution(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/util2.py": """
                def helper():
                    return 0
                """,
                "repro/user.py": """
                import repro.util2 as u

                def go():
                    return u.helper()
                """,
            },
        )
        graph = CallGraph.build(project)
        assert ("repro.util2", "helper") in graph.edges[("repro.user", "go")]

    def test_kb_receiver_roles_on_attribute_chains(self, tmp_path):
        """``self.kb``, ``self.ctx.kb`` and ``self.bus`` chains classify."""
        project = make_project(
            tmp_path,
            {
                "repro/mod.py": """
                class Thing:
                    def go(self):
                        self.kb.put("A", 1)
                        self.ctx.kb.get("A")
                        self.bus.publish("t", 1)
                        self.ctx.bus.subscribe("t", print)
                        self.other.frobnicate("x")
                """,
            },
        )
        graph = CallGraph.build(project)
        kinds = {}
        for site in graph.call_sites:
            kind = graph.primitive_kind(site)
            if kind is not None:
                kinds[".".join(site.chain)] = kind
        assert kinds == {
            "self.kb.put": ("kb", "write"),
            "self.ctx.kb.get": ("kb", "read"),
            "self.bus.publish": ("bus", "publish"),
            "self.ctx.bus.subscribe": ("bus", "subscribe"),
        }

    def test_self_primitive_inside_defining_classes(self, tmp_path):
        """``self.publish`` inside EventBus / ``self.put`` inside
        KnowledgeBase are primitives of their own role."""
        project = make_project(
            tmp_path,
            {
                "repro/bus.py": """
                class EventBus:
                    def publish(self, topic, payload):
                        pass

                    def flush(self):
                        self.publish("bus.deadletter", None)
                """,
                "repro/kb.py": """
                class KnowledgeBase:
                    def put(self, label, value):
                        pass

                    def put_static(self, label, value):
                        self.put(label, value)
                """,
            },
        )
        graph = CallGraph.build(project)
        roles = {
            ".".join(site.chain): graph.primitive_kind(site)
            for site in graph.call_sites
            if site.chain[0] == "self"
        }
        assert roles["self.publish"] == ("bus", "publish")
        assert roles["self.put"] == ("kb", "write")

    def test_wrapper_detection_kb_write(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/mod.py": """
                class Sensor:
                    def _emit(self, label, value):
                        self.ctx.kb.put(label, value)

                    def go(self):
                        self._emit("Rate", 1)
                """,
            },
        )
        graph = CallGraph.build(project)
        spec = graph.wrappers[("repro.mod", "Sensor._emit")]
        assert (spec.role, spec.kind, spec.method) == ("kb", "write", "put")
        assert spec.param == "label" and spec.index == 0

    def test_wrapper_detection_bus_publish_and_nesting(self, tmp_path):
        """Wrappers of wrappers resolve via the fixed point."""
        project = make_project(
            tmp_path,
            {
                "repro/mod.py": """
                class Supervisor:
                    def _publish(self, topic, payload):
                        self.bus.publish(topic, payload)

                    def _notify(self, topic):
                        self._publish(topic, None)
                """,
            },
        )
        graph = CallGraph.build(project)
        outer = graph.wrappers[("repro.mod", "Supervisor._notify")]
        assert (outer.role, outer.kind) == ("bus", "publish")
        assert outer.param == "topic"

    def test_non_forwarding_function_is_not_a_wrapper(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/mod.py": """
                class Sensor:
                    def _emit(self, value):
                        self.ctx.kb.put("Fixed", value)
                """,
            },
        )
        graph = CallGraph.build(project)
        assert ("repro.mod", "Sensor._emit") not in graph.wrappers
