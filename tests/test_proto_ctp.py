"""Tests for the CTP protocol behaviour."""


from repro.devices.wsn import build_wsn
from repro.proto.ctp import NO_ROUTE_ETX, CtpNode
from repro.sim.engine import Simulator
from repro.sim.topology import line_positions
from repro.util.ids import NodeId


def chain(sim, count=4, spacing=25.0):
    return build_wsn(sim, line_positions(count, spacing))


class TestTreeFormation:
    def test_nodes_learn_parents_from_beacons(self):
        sim = Simulator(seed=1)
        base, motes = chain(sim)
        sim.run(30.0)
        for mote in motes:
            assert mote.parent is not None
            assert mote.etx < NO_ROUTE_ETX

    def test_etx_increases_along_the_chain(self):
        sim = Simulator(seed=1)
        base, motes = chain(sim)
        sim.run(30.0)
        etx_values = [m.etx for m in motes]
        assert etx_values == sorted(etx_values)
        assert etx_values[0] == 1  # direct child of the root

    def test_parents_point_toward_root(self):
        sim = Simulator(seed=1)
        base, motes = chain(sim)
        sim.run(30.0)
        assert motes[0].parent == base.node_id
        assert motes[1].parent == motes[0].node_id

    def test_root_keeps_etx_zero(self):
        sim = Simulator(seed=1)
        base, motes = chain(sim)
        sim.run(30.0)
        assert base.etx == 0
        assert base.is_root


class TestDataCollection:
    def test_samples_reach_root(self):
        sim = Simulator(seed=2)
        base, motes = chain(sim)
        sim.run(60.0)
        origins = {origin for origin, _, _, _ in base.collected}
        assert origins == {m.node_id for m in motes}

    def test_thl_reflects_hop_count(self):
        sim = Simulator(seed=2)
        base, motes = chain(sim)
        sim.run(60.0)
        thl_by_origin = {}
        for origin, _seq, thl, _t in base.collected:
            thl_by_origin.setdefault(origin, set()).add(thl)
        # The farthest mote's samples travelled count-2 forwarders.
        assert max(thl_by_origin[motes[-1].node_id]) == len(motes) - 1

    def test_no_route_means_no_send(self):
        sim = Simulator(seed=3)
        lonely = CtpNode(NodeId("lonely"), (0.0, 0.0), data_interval=1.0)
        sim.add_node(lonely)
        sim.run(10.0)
        assert lonely.parent is None
        # Samples are silently dropped without a route; nothing crashes.

    def test_paper_reporting_period(self):
        sim = Simulator(seed=4)
        base, motes = chain(sim, count=2, spacing=20.0)
        sim.run(31.0)
        sent_by_first = [
            (origin, seq) for origin, seq, _, _ in base.collected
            if origin == motes[0].node_id
        ]
        # ~3 s period over 30 s => about 10 samples.
        assert 8 <= len(sent_by_first) <= 12

    def test_forwarded_count_increments(self):
        sim = Simulator(seed=5)
        base, motes = chain(sim, count=3, spacing=25.0)
        sim.run(40.0)
        # The middle mote forwards the far mote's traffic.
        assert motes[0].forwarded_count > 0
