"""Snapshot file format: integrity, versioning, atomicity, rotation."""

import json
import struct

import pytest

from repro.ckpt.format import (
    MAGIC,
    SCHEMA_VERSION,
    SNAPSHOT_SUFFIX,
    SnapshotCorrupt,
    SnapshotError,
    SnapshotStore,
    SnapshotTruncated,
    SnapshotVersionSkew,
    read_header,
    read_snapshot,
    write_snapshot,
)

PAYLOAD = b"the quick brown fox" * 100


class TestRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "one.ksnap"
        write_snapshot(path, PAYLOAD, {"label": "rt", "sim_time": 4.5})
        header, payload = read_snapshot(path)
        assert payload == PAYLOAD
        assert header["label"] == "rt"
        assert header["sim_time"] == 4.5
        assert header["version"] == SCHEMA_VERSION
        assert header["payload_len"] == len(PAYLOAD)

    def test_read_header_alone_verifies_but_skips_payload(self, tmp_path):
        path = tmp_path / "one.ksnap"
        write_snapshot(path, PAYLOAD, {"label": "hdr"})
        header = read_header(path)
        assert header["label"] == "hdr"
        assert "payload_sha256" in header

    def test_empty_payload_round_trips(self, tmp_path):
        path = tmp_path / "empty.ksnap"
        write_snapshot(path, b"")
        header, payload = read_snapshot(path)
        assert payload == b""
        assert header["payload_len"] == 0

    def test_meta_reserved_keys_cannot_be_forged(self, tmp_path):
        path = tmp_path / "one.ksnap"
        write_snapshot(path, PAYLOAD, {"version": 999, "payload_len": 1})
        header = read_header(path)
        assert header["version"] == SCHEMA_VERSION
        assert header["payload_len"] == len(PAYLOAD)


class TestCorruptionDetection:
    """Every damage shape raises a distinct, catchable SnapshotError."""

    def _write(self, tmp_path):
        path = tmp_path / "victim.ksnap"
        write_snapshot(path, PAYLOAD, {"label": "victim"})
        return path

    def test_truncated_payload_detected(self, tmp_path):
        path = self._write(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-7])
        with pytest.raises(SnapshotTruncated):
            read_snapshot(path)

    def test_truncated_inside_header_detected(self, tmp_path):
        path = self._write(tmp_path)
        path.write_bytes(path.read_bytes()[: len(MAGIC) + 6])
        with pytest.raises(SnapshotTruncated):
            read_snapshot(path)

    def test_file_shorter_than_magic_detected(self, tmp_path):
        path = self._write(tmp_path)
        path.write_bytes(b"KAL")
        with pytest.raises(SnapshotTruncated):
            read_snapshot(path)

    def test_flipped_payload_byte_fails_digest(self, tmp_path):
        path = self._write(tmp_path)
        data = bytearray(path.read_bytes())
        data[-10] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotCorrupt, match="sha256 mismatch"):
            read_snapshot(path)

    def test_bad_magic_detected(self, tmp_path):
        path = self._write(tmp_path)
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotCorrupt, match="bad magic"):
            read_snapshot(path)

    def test_trailing_garbage_detected(self, tmp_path):
        path = self._write(tmp_path)
        with open(path, "ab") as handle:
            handle.write(b"appended garbage")
        with pytest.raises(SnapshotCorrupt, match="trailing bytes"):
            read_snapshot(path)

    def test_non_json_header_detected(self, tmp_path):
        path = tmp_path / "bad.ksnap"
        header = b"\x00not json at all\xff"
        with open(path, "wb") as handle:
            handle.write(MAGIC)
            handle.write(struct.pack(">I", len(header)))
            handle.write(header)
        with pytest.raises(SnapshotCorrupt):
            read_snapshot(path)

    def test_version_skew_refused(self, tmp_path):
        path = tmp_path / "future.ksnap"
        header = json.dumps(
            {"format": "kalis-snapshot", "version": SCHEMA_VERSION + 1,
             "payload_len": 0, "payload_sha256": ""}
        ).encode("utf-8")
        with open(path, "wb") as handle:
            handle.write(MAGIC)
            handle.write(struct.pack(">I", len(header)))
            handle.write(header)
        with pytest.raises(SnapshotVersionSkew):
            read_snapshot(path)

    def test_all_errors_are_snapshot_errors(self):
        assert issubclass(SnapshotTruncated, SnapshotCorrupt)
        assert issubclass(SnapshotCorrupt, SnapshotError)
        assert issubclass(SnapshotVersionSkew, SnapshotError)


class TestAtomicity:
    def test_no_temp_files_survive_a_write(self, tmp_path):
        write_snapshot(tmp_path / "one.ksnap", PAYLOAD)
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_overwrite_is_replace_not_append(self, tmp_path):
        path = tmp_path / "one.ksnap"
        write_snapshot(path, PAYLOAD)
        write_snapshot(path, b"short")
        _header, payload = read_snapshot(path)
        assert payload == b"short"

    def test_failed_write_leaves_previous_snapshot_intact(self, tmp_path):
        path = tmp_path / "one.ksnap"
        write_snapshot(path, PAYLOAD, {"label": "good"})

        class Unjsonable:
            pass

        with pytest.raises(TypeError):
            write_snapshot(path, b"new", {"bad": Unjsonable()})
        header, payload = read_snapshot(path)
        assert header["label"] == "good"
        assert payload == PAYLOAD


class TestSnapshotStore:
    def test_save_assigns_increasing_sequences(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=10)
        first = store.save(b"a")
        second = store.save(b"b")
        assert first.name == f"snap-00000001{SNAPSHOT_SUFFIX}"
        assert second.name == f"snap-00000002{SNAPSHOT_SUFFIX}"
        assert [p.name for p in store.paths()] == [first.name, second.name]

    def test_rotation_prunes_oldest(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=3)
        for index in range(6):
            store.save(str(index).encode())
        names = [p.name for p in store.paths()]
        assert len(names) == 3
        assert names[0] == f"snap-00000004{SNAPSHOT_SUFFIX}"

    def test_sequence_survives_pruning(self, tmp_path):
        """Sequences never restart, even after old files are pruned."""
        store = SnapshotStore(tmp_path, keep=1)
        for _ in range(4):
            last = store.save(b"x")
        assert last.name == f"snap-00000004{SNAPSHOT_SUFFIX}"

    def test_latest_returns_newest_valid(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(b"old", {"label": "old"})
        store.save(b"new", {"label": "new"})
        header, payload = store.latest()
        assert header["label"] == "new"
        assert payload == b"new"

    def test_latest_skips_corrupt_newest(self, tmp_path):
        """A damaged newest snapshot costs one interval, not the run."""
        store = SnapshotStore(tmp_path)
        store.save(b"good", {"label": "good"})
        bad = store.save(b"doomed", {"label": "doomed"})
        data = bytearray(bad.read_bytes())
        data[-1] ^= 0xFF
        bad.write_bytes(bytes(data))
        header, payload = store.latest()
        assert header["label"] == "good"
        assert payload == b"good"
        assert [path for path, _reason in store.skipped] == [bad]

    def test_latest_empty_store_is_none(self, tmp_path):
        store = SnapshotStore(tmp_path / "nowhere")
        assert store.latest() is None

    def test_foreign_files_ignored(self, tmp_path):
        store = SnapshotStore(tmp_path)
        (tmp_path / "canonical.log").write_text("not a snapshot")
        (tmp_path / "snap-xyz.ksnap").write_text("bad name")
        store.save(b"real")
        assert len(store.paths()) == 1
        assert store.latest()[1] == b"real"

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotStore(tmp_path, keep=0)
