"""Process-boundary rules (KL301–KL306), exports, and the fleet cross-check."""

import json
import textwrap
from pathlib import Path

from repro.analysis.cli import main
from repro.analysis.engine import run_rules
from repro.analysis.procgraph import (
    derive_procgraph,
    export_dot,
    export_json,
)
from repro.analysis.project import Project

ROOT = Path(__file__).resolve().parent.parent


def make_project(tmp_path, files):
    """Write a ``src/`` tree from {relpath: source} and parse it."""
    for relpath, content in files.items():
        path = tmp_path / "src" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    for directory in sorted((tmp_path / "src").rglob("*")):
        if directory.is_dir():
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
    return Project.load([tmp_path / "src" / "repro"], root=tmp_path)


def run(tmp_path, files, rule):
    return run_rules(make_project(tmp_path, files), select=[rule])


class TestKL301SchemaDrift:
    VIOLATION = {
        "repro/wire/proto.py": """
        PROTO_VERSION = 1

        def make_record(body):
            return {"v": PROTO_VERSION, "body": body}

        def load_record(record):
            return record["payload"]
        """,
    }
    CLEAN = {
        "repro/wire/proto.py": """
        PROTO_VERSION = 1

        def make_record(body):
            return {"v": PROTO_VERSION, "body": body}

        def load_record(record):
            return record["body"]
        """,
    }

    def test_reader_key_outside_written_set_flagged(self, tmp_path):
        findings = run(tmp_path, self.VIOLATION, "KL301")
        errors = [f for f in findings if f.severity.value == "error"]
        assert [f.key for f in errors] == ["load_record.payload"]
        assert "no writer" in errors[0].message

    def test_matching_reader_passes_with_digest_pin(self, tmp_path):
        findings = run(tmp_path, self.CLEAN, "KL301")
        assert [f.severity.value for f in findings] == ["warning"]
        assert findings[0].key.startswith("proto@v1:")
        assert "version bump" in findings[0].message

    def test_digest_key_tracks_the_field_set(self, tmp_path):
        """Growing the writer's field set changes the baseline key."""
        grown = {
            "repro/wire/proto.py": self.CLEAN[
                "repro/wire/proto.py"
            ].replace('"body": body}', '"body": body, "extra": 1}')
        }
        original = run(tmp_path / "a", self.CLEAN, "KL301")
        changed = run(tmp_path / "b", grown, "KL301")
        pins = lambda fs: [f.key for f in fs if "@" in f.key]  # noqa: E731
        assert pins(original) != pins(changed)


class TestKL302AddressFreePayloads:
    VIOLATION = {
        "repro/wire/emit.py": """
        import json

        def handler():
            return None

        def encode(stream, obj, queue):
            record = {"v": 1, "who": repr(obj), "cb": handler}
            stream.write(json.dumps(record))
            stream.flush()
            queue.put(record)
            return id(obj)
        """,
    }
    CLEAN = {
        "repro/wire/emit.py": """
        import json

        def encode(stream, obj, queue):
            record = {"v": 1, "who": str(obj), "cb": "wire.handler"}
            stream.write(json.dumps(record))
            stream.flush()
            queue.put(record)
            return record
        """,
    }

    def test_repr_callable_and_id_flagged(self, tmp_path):
        findings = run(tmp_path, self.VIOLATION, "KL302")
        keys = sorted(f.key for f in findings)
        assert keys == ["encode.handler", "encode.id", "encode.repr"]
        by_key = {f.key: f for f in findings}
        assert by_key["encode.id"].severity.value == "error"
        assert by_key["encode.handler"].severity.value == "error"
        assert by_key["encode.repr"].severity.value == "warning"
        assert "callable_name" in by_key["encode.handler"].message

    def test_bang_r_conversion_flagged(self, tmp_path):
        files = {
            "repro/wire/emit.py": """
            import json

            def encode(stream, obj):
                stream.write(json.dumps({"v": 1, "who": f"{obj!r}"}))
            """,
        }
        findings = run(tmp_path, files, "KL302")
        assert [f.key for f in findings] == ["encode.conv_r"]

    def test_address_free_payload_passes(self, tmp_path):
        assert run(tmp_path, self.CLEAN, "KL302") == []

    def test_repr_outside_boundary_context_ignored(self, tmp_path):
        """repr in a function that never serializes is not this rule's business."""
        files = {
            "repro/wire/emit.py": """
            def describe(obj):
                return {"v": 1, "who": "x"}

            def debug_label(obj):
                return repr(obj)
            """,
        }
        findings = run(tmp_path, files, "KL302")
        assert findings == []


class TestKL303ForkSafety:
    VIOLATION = {
        "repro/fleetx/spawn.py": """
        import multiprocessing
        import threading

        def child(lock):
            return lock

        def start():
            context = multiprocessing.get_context("fork")
            lock = threading.Lock()
            process = context.Process(target=child, args=(lock,))
            process.start()
            return process
        """,
    }
    CLEAN = {
        "repro/fleetx/spawn.py": """
        import multiprocessing

        def child(shard):
            return shard

        def start(shard):
            context = multiprocessing.get_context("fork")
            process = context.Process(target=child, args=(shard,))
            process.start()
            return process
        """,
    }

    def test_local_lock_in_spawn_args_flagged(self, tmp_path):
        findings = run(tmp_path, self.VIOLATION, "KL303")
        assert [f.key for f in findings] == ["start.lock"]
        assert findings[0].severity.value == "error"
        assert "fork" in findings[0].message

    def test_open_handle_in_spawn_args_flagged(self, tmp_path):
        files = {
            "repro/fleetx/spawn.py": """
            import multiprocessing

            def child(log):
                return log

            def start():
                context = multiprocessing.get_context("fork")
                log = open("log.txt", "a")
                process = context.Process(target=child, args=(log,))
                process.start()
            """,
        }
        findings = run(tmp_path, files, "KL303")
        assert [f.key for f in findings] == ["start.log"]

    def test_live_telemetry_in_spawn_args_warned(self, tmp_path):
        files = {
            "repro/fleetx/spawn.py": """
            import multiprocessing
            from repro.obs.telemetry import Telemetry

            def child(telemetry):
                return telemetry

            def start():
                context = multiprocessing.get_context("fork")
                telemetry = Telemetry()
                process = context.Process(target=child, args=(telemetry,))
                process.start()
            """,
        }
        findings = run(tmp_path, files, "KL303")
        assert [f.key for f in findings] == ["start.telemetry"]
        assert findings[0].severity.value == "warning"

    def test_forwarded_params_pass(self, tmp_path):
        assert run(tmp_path, self.CLEAN, "KL303") == []


class TestKL304QueueDiscipline:
    VIOLATION = {
        "repro/fleetx/pump.py": """
        def produce(queue, record):
            queue.put(record)

        def drain(queue):
            return queue.get()
        """,
    }
    CLEAN = {
        "repro/fleetx/pump.py": """
        def validate_record(record):
            return record["v"]

        def produce(stream, queue, record):
            stream.write("x")
            stream.flush()
            queue.put(record)

        def drain(queue):
            record = queue.get()
            return validate_record(record)
        """,
    }

    def test_put_without_flush_and_unvalidated_get_flagged(self, tmp_path):
        findings = run(tmp_path, self.VIOLATION, "KL304")
        assert sorted(f.key for f in findings) == ["drain.get", "produce.put"]
        by_key = {f.key: f for f in findings}
        assert "flush" in by_key["produce.put"].message
        assert "validat" in by_key["drain.get"].message

    def test_flush_before_put_and_validated_get_pass(self, tmp_path):
        assert run(tmp_path, self.CLEAN, "KL304") == []

    def test_flush_after_put_still_flagged(self, tmp_path):
        """The flush must precede the put — ordering is the contract."""
        files = {
            "repro/fleetx/pump.py": """
            def produce(stream, queue, record):
                queue.put(record)
                stream.flush()
            """,
        }
        findings = run(tmp_path, files, "KL304")
        assert [f.key for f in findings] == ["produce.put"]

    def test_transitively_validating_get_passes(self, tmp_path):
        """Validation through a helper chain still counts."""
        files = {
            "repro/fleetx/pump.py": """
            def validate_record(record):
                return record["v"]

            def ingest(record):
                return validate_record(record)

            def drain(queue):
                return ingest(queue.get())
            """,
        }
        assert run(tmp_path, files, "KL304") == []


class TestKL305ExitHygiene:
    VIOLATION = {
        "repro/svc/death.py": """
        import os
        import signal

        def _on_signal(signum, frame):
            return signum

        def run(worker):
            signal.signal(signal.SIGTERM, _on_signal)
            if worker:
                os._exit(3)
        """,
    }
    CLEAN = {
        "repro/svc/death.py": """
        import os
        import signal

        def save(state):
            return state

        def _on_signal(signum, frame):
            SERVICE.request_stop()

        def run(service, worker):
            signal.signal(signal.SIGTERM, _on_signal)
            save(worker)
            if worker:
                os._exit(3)
        """,
    }

    def test_exit_without_durable_call_and_bare_handler_flagged(self, tmp_path):
        findings = run(tmp_path, self.VIOLATION, "KL305")
        assert sorted(f.key for f in findings) == [
            "_on_signal.handler",
            "run._exit",
        ]
        for finding in findings:
            assert finding.severity.value == "error"

    def test_durable_exit_and_stop_requesting_handler_pass(self, tmp_path):
        assert run(tmp_path, self.CLEAN, "KL305") == []

    def test_durable_call_after_exit_still_flagged(self, tmp_path):
        files = {
            "repro/svc/death.py": """
            import os

            def save(state):
                return state

            def run(worker):
                os._exit(3)
                save(worker)
            """,
        }
        findings = run(tmp_path, files, "KL305")
        assert [f.key for f in findings] == ["run._exit"]

    def test_unresolvable_handler_is_skipped(self, tmp_path):
        """A handler bound through a loop variable cannot be judged."""
        files = {
            "repro/svc/death.py": """
            import signal

            def install(handlers):
                for signum, handler in handlers:
                    signal.signal(signum, handler)
            """,
        }
        assert run(tmp_path, files, "KL305") == []


class TestKL306DedupCompleteness:
    VIOLATION = {
        "repro/wire/keys.py": """
        def record_dedup_key(record):
            return (record["site"], record["seq"])

        def record_sort_key(record):
            return (record["t"], record["site"], record["seq"])
        """,
    }
    CLEAN = {
        "repro/wire/keys.py": """
        def record_dedup_key(record):
            return (record["t"], record["site"], record["seq"])

        def record_sort_key(record):
            return (record["t"], record["site"], record["seq"])
        """,
    }

    def test_sort_field_missing_from_dedup_key_flagged(self, tmp_path):
        findings = run(tmp_path, self.VIOLATION, "KL306")
        assert [f.key for f in findings] == ["record_sort_key.t"]
        assert "exactly-once" in findings[0].message

    def test_covering_dedup_key_passes(self, tmp_path):
        assert run(tmp_path, self.CLEAN, "KL306") == []

    def test_modules_without_both_keys_are_skipped(self, tmp_path):
        files = {
            "repro/wire/keys.py": """
            def record_sort_key(record):
                return (record["t"], record["seq"])
            """,
        }
        assert run(tmp_path, files, "KL306") == []


class TestProcGraphExports:
    def test_real_tree_exports_are_byte_identical(self):
        """Two independent derivations render identical JSON and DOT."""
        first = Project.load([ROOT / "src" / "repro"], root=ROOT)
        second = Project.load([ROOT / "src" / "repro"], root=ROOT)
        proc_a = derive_procgraph(first)
        proc_b = derive_procgraph(second)
        assert export_json(proc_a) == export_json(proc_b)
        assert export_dot(proc_a) == export_dot(proc_b)

    def test_json_covers_the_fleet_wire_layer(self):
        project = Project.load([ROOT / "src" / "repro"], root=ROOT)
        rendered = export_json(derive_procgraph(project))
        payload = json.loads(rendered)
        assert "repro.siem.events" in payload["schemas"]
        assert payload["schemas"]["repro.siem.events"]["version"] == 1
        assert any(
            site["target"] == "worker_main" for site in payload["fork_sites"]
        )
        assert any(site["op"] == "put" for site in payload["queue_sites"])
        assert any(
            site["path"].endswith("fleet/worker.py")
            for site in payload["exit_sites"]
        )
        assert "validate_batch" in str(payload["schemas"])

    def test_dot_marks_boundary_node_kinds(self):
        project = Project.load([ROOT / "src" / "repro"], root=ROOT)
        rendered = export_dot(derive_procgraph(project))
        assert '"repro.fleet.worker:worker_main" [shape=doubleoctagon];' in rendered
        assert '"queue" [shape=cds];' in rendered
        assert '"os._exit" [shape=octagon];' in rendered
        assert '"repro.siem.events@v1" [shape=note];' in rendered
        assert rendered.endswith("}\n")

    def test_cli_proc_view(self, tmp_path):
        code = main(
            [
                "graph",
                "--view",
                "proc",
                "--root",
                str(ROOT),
                str(ROOT / "src" / "repro"),
                "--output",
                str(tmp_path / "proc.json"),
            ]
        )
        assert code == 0
        rendered = (tmp_path / "proc.json").read_text(encoding="utf-8")
        assert '"serialization_sites"' in rendered
        assert '"schemas"' in rendered


class TestFleetRuntimeCrossCheck:
    """A real fleet run's crossings must be a subset of the static graph.

    Mirrors the PR-6 runtime census: the static inventory may know more
    seams than one run exercises, but a run must never cross a seam the
    graph missed.
    """

    def test_fleet_smoke_crossings_subset_of_static_graph(self, tmp_path):
        from repro.fleet import FleetConfig, run_fleet
        from repro.fleet.worker import MANIFEST_NAME, STREAM_NAME

        project = Project.load([ROOT / "src" / "repro"], root=ROOT)
        proc = derive_procgraph(project)
        run_fleet(
            FleetConfig(
                sites=3,
                workers=1,
                fleet_seed=16,
                out_dir=str(tmp_path / "fleet"),
                symptom_instances=1,
                k_sites=2,
            )
        )

        # Every record observed on the wire uses only statically known keys.
        transport_keys = set(
            proc.schema_groups["repro.siem.events"].emitted_keys()
        )
        event_records = 0
        for stream in sorted((tmp_path / "fleet").rglob(STREAM_NAME)):
            for line in stream.read_text(encoding="utf-8").splitlines():
                record = json.loads(line)
                assert set(record) <= transport_keys, record
                for event in record.get("events", []):
                    event_records += 1
                    assert set(event) <= transport_keys, event
        assert event_records > 0

        manifest_keys = set(
            proc.schema_groups["repro.fleet.worker"].emitted_keys()
        )
        manifests = sorted((tmp_path / "fleet").rglob(MANIFEST_NAME))
        assert manifests
        for manifest in manifests:
            data = json.loads(manifest.read_text(encoding="utf-8"))
            assert set(data) <= manifest_keys, data

        # The crossings the run exercised exist in the static graph.
        assert "worker_main" in proc.fork_target_names()
        assert any(
            site.op == "put" and site.module == "repro.fleet.worker"
            for site in proc.queue_sites
        )
        assert any(
            site.op == "get" and site.module == "repro.fleet.runner"
            for site in proc.queue_sites
        )
        assert any(
            site.module == "repro.fleet.worker" for site in proc.exit_sites
        )


class TestRealTreeBoundaryRules:
    def test_tree_lints_clean_with_kl3xx(self, capsys):
        code = main(
            [
                "--root",
                str(ROOT),
                "--baseline",
                str(ROOT / "kalis-lint.baseline"),
                "--select",
                "KL301,KL302,KL303,KL304,KL305,KL306",
                "--no-cache",
                str(ROOT / "src" / "repro"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
