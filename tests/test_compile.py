"""Tests for compile-time module configuration (paper §VIII)."""


from repro.attacks import SelectiveForwardingMote
from repro.core.compile import (
    compile_configuration,
    compile_configuration_text,
    deploy_constrained,
)
from repro.core.config import parse_config
from repro.core.kalis import KalisNode
from repro.core.knowledge import KnowledgeBase
from repro.devices.wsn import TelosbMote
from repro.sim.engine import Simulator
from repro.util.ids import NodeId
from repro.util.rng import SeededRng


def multihop_static_kb():
    kb = KnowledgeBase(NodeId("kalis-1"))
    kb.put("Multihop.802154", True)
    kb.put("Multihop", True)
    kb.put("Mobility", False)
    kb.put("MonitoredNodes", 5)
    kb.put("TrafficFrequency.CTPData", 1.23)  # volatile; must not freeze
    return kb


class TestCompileConfiguration:
    def test_selects_required_modules_only(self):
        config = compile_configuration(multihop_static_kb())
        names = {spec.name for spec in config.modules}
        assert "ForwardingMisbehaviorModule" in names
        assert "ReplicationStaticModule" in names
        assert "ReplicationMobileModule" not in names  # network is static
        assert "IcmpFloodModule" not in names  # no WiFi knowledge at all

    def test_freezes_feature_knowledge_not_statistics(self):
        config = compile_configuration(multihop_static_kb())
        labels = {k.label for k in config.knowggets}
        assert "Multihop.802154" in labels
        assert "Mobility" in labels
        assert "MonitoredNodes" in labels
        assert not any(label.startswith("TrafficFrequency") for label in labels)

    def test_value_types_preserved(self):
        config = compile_configuration(multihop_static_kb())
        by_label = {k.label: k.value for k in config.knowggets}
        assert by_label["Mobility"] is False
        assert by_label["MonitoredNodes"] == 5

    def test_rendered_text_parses_back(self):
        text = compile_configuration_text(multihop_static_kb())
        reparsed = parse_config(text)
        assert reparsed.module_named("ForwardingMisbehaviorModule") is not None

    def test_empty_knowledge_compiles_empty_module_set(self):
        config = compile_configuration(KnowledgeBase(NodeId("kalis-1")))
        assert config.modules == []


class TestConstrainedDeployment:
    def test_deploys_only_compiled_modules(self):
        config = compile_configuration(multihop_static_kb())
        constrained = deploy_constrained(NodeId("tiny-1"), config)
        registered = {m.NAME for m in constrained.manager.modules()}
        assert registered == {spec.name for spec in config.modules}
        # Everything aboard is active: no sensing, no re-evaluation.
        assert set(constrained.active_module_names()) == registered

    def test_constrained_node_is_smaller(self):
        config = compile_configuration(multihop_static_kb())
        constrained = deploy_constrained(NodeId("tiny-1"), config)
        full = KalisNode(NodeId("full-1"))
        assert len(constrained.manager.modules()) < len(full.manager.modules())
        assert constrained.datastore.window_size < full.datastore.window_size

    def test_end_to_end_full_node_compiles_config_for_tiny_node(self):
        """The §VIII pipeline: monitor, compile, flash, detect."""
        # Phase 1: a full Kalis node learns the WSN's features.
        sim = Simulator(seed=91)
        sim.add_node(TelosbMote(NodeId("mote-base"), (0.0, 0.0), is_root=True))
        sim.add_node(TelosbMote(NodeId("mote-1"), (25.0, 0.0)))
        sim.add_node(TelosbMote(NodeId("mote-2"), (50.0, 0.0)))
        sim.add_node(TelosbMote(NodeId("mote-3"), (75.0, 0.0)))
        scout = KalisNode(NodeId("scout"))
        scout.deploy(sim, position=(50.0, 8.0))
        sim.run(60.0)
        assert scout.kb.get("Multihop.802154", bool) is True

        # Phase 2: compile and "flash".
        text = compile_configuration_text(scout.kb)
        config = parse_config(text)

        # Phase 3: the constrained node, in a fresh deployment of the
        # same network — now with an attacker — still detects.
        sim2 = Simulator(seed=92)
        sim2.add_node(TelosbMote(NodeId("mote-base"), (0.0, 0.0), is_root=True))
        sim2.add_node(TelosbMote(NodeId("mote-1"), (25.0, 0.0)))
        sim2.add_node(
            SelectiveForwardingMote(
                NodeId("forwarder"), (50.0, 0.0), drop_probability=0.8,
                rng=SeededRng(92, "attacker"),
            )
        )
        sim2.add_node(TelosbMote(NodeId("mote-3"), (75.0, 0.0)))
        tiny = deploy_constrained(NodeId("tiny-1"), config)
        tiny.deploy(sim2, position=(50.0, 8.0))
        sim2.run(120.0)
        accused = {s for a in tiny.alerts.alerts for s in a.suspects}
        assert NodeId("forwarder") in accused
