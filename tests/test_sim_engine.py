"""Tests for the discrete-event engine: scheduling, transmission,
determinism."""

import pytest

from repro.net.packets.base import Medium
from repro.net.packets.ieee802154 import Ieee802154Frame
from repro.sim.engine import Simulator
from repro.sim.node import SimNode, SnifferNode
from repro.util.ids import NodeId


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule_at(2.0, lambda: order.append("late"))
        sim.schedule_at(1.0, lambda: order.append("early"))
        sim.run_until(3.0)
        assert order == ["early", "late"]

    def test_fifo_among_equal_times(self):
        sim = Simulator()
        order = []
        sim.schedule_at(1.0, lambda: order.append("first"))
        sim.schedule_at(1.0, lambda: order.append("second"))
        sim.run_until(2.0)
        assert order == ["first", "second"]

    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(1.5, lambda: seen.append(sim.clock.now))
        sim.run_until(5.0)
        assert seen == [1.5]
        assert sim.clock.now == 5.0

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(ValueError):
            sim.schedule_at(4.0, lambda: None)

    def test_schedule_in(self):
        sim = Simulator()
        sim.run_until(2.0)
        seen = []
        sim.schedule_in(1.0, lambda: seen.append(sim.clock.now))
        sim.run(2.0)
        assert seen == [3.0]

    def test_schedule_every_until(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(1.0, lambda: ticks.append(sim.clock.now), until=3.5)
        sim.run_until(10.0)
        assert ticks == [1.0, 2.0, 3.0]

    def test_schedule_every_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            Simulator().schedule_every(0.0, lambda: None)

    def test_events_scheduled_by_events_run(self):
        sim = Simulator()
        order = []

        def outer():
            order.append("outer")
            sim.schedule_in(0.5, lambda: order.append("inner"))

        sim.schedule_at(1.0, outer)
        sim.run_until(2.0)
        assert order == ["outer", "inner"]

    def test_not_reentrant(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: sim.run_until(2.0))
        with pytest.raises(RuntimeError):
            sim.run_until(3.0)


class TestNodeRegistry:
    def test_duplicate_id_rejected(self):
        sim = Simulator()
        sim.add_node(SimNode(NodeId("x")))
        with pytest.raises(ValueError):
            sim.add_node(SimNode(NodeId("x")))

    def test_remove_node_detaches(self):
        sim = Simulator()
        node = sim.add_node(SimNode(NodeId("x")))
        sim.remove_node(NodeId("x"))
        assert not node.attached
        assert not sim.has_node(NodeId("x"))

    def test_nodes_sorted_by_id(self):
        sim = Simulator()
        sim.add_node(SimNode(NodeId("b")))
        sim.add_node(SimNode(NodeId("a")))
        assert [n.node_id.value for n in sim.nodes()] == ["a", "b"]

    def test_start_called_on_add(self):
        started = []

        class Starter(SimNode):
            def start(self):
                started.append(self.node_id)

        sim = Simulator()
        sim.add_node(Starter(NodeId("x")))
        sim.run_until(0.1)
        assert started == [NodeId("x")]


class TestTransmission:
    @staticmethod
    def _frame(src, dst):
        return Ieee802154Frame(pan_id=1, seq=0, src=src, dst=dst)

    def test_in_range_delivery(self):
        sim = Simulator(seed=1)
        sender = sim.add_node(
            SimNode(NodeId("s"), (0, 0), mediums=(Medium.IEEE_802_15_4,))
        )
        receiver = sim.add_node(
            SimNode(NodeId("r"), (10, 0), mediums=(Medium.IEEE_802_15_4,))
        )
        sim.run_until(0.01)
        sender.send(Medium.IEEE_802_15_4, self._frame(sender.node_id, receiver.node_id))
        sim.run(1.0)
        assert receiver.received_count == 1

    def test_out_of_range_no_delivery(self):
        sim = Simulator(seed=1)
        sender = sim.add_node(
            SimNode(NodeId("s"), (0, 0), mediums=(Medium.IEEE_802_15_4,))
        )
        receiver = sim.add_node(
            SimNode(NodeId("r"), (500, 0), mediums=(Medium.IEEE_802_15_4,))
        )
        sim.run_until(0.01)
        sender.send(Medium.IEEE_802_15_4, self._frame(sender.node_id, receiver.node_id))
        sim.run(1.0)
        assert receiver.received_count == 0

    def test_wrong_medium_no_delivery(self):
        sim = Simulator(seed=1)
        sender = sim.add_node(
            SimNode(NodeId("s"), (0, 0), mediums=(Medium.IEEE_802_15_4,))
        )
        receiver = sim.add_node(SimNode(NodeId("r"), (5, 0), mediums=(Medium.WIFI,)))
        sim.run_until(0.01)
        sender.send(Medium.IEEE_802_15_4, self._frame(sender.node_id, receiver.node_id))
        sim.run(1.0)
        assert receiver.received_count == 0

    def test_sender_does_not_hear_itself(self):
        sim = Simulator(seed=1)
        sender = sim.add_node(
            SimNode(NodeId("s"), (0, 0), mediums=(Medium.IEEE_802_15_4,))
        )
        sim.run_until(0.01)
        sender.send(Medium.IEEE_802_15_4, self._frame(sender.node_id, sender.node_id))
        sim.run(1.0)
        assert sender.received_count == 0

    def test_send_requires_medium(self):
        sim = Simulator(seed=1)
        node = sim.add_node(SimNode(NodeId("s"), (0, 0), mediums=(Medium.WIFI,)))
        sim.run_until(0.01)
        with pytest.raises(ValueError):
            node.send(Medium.IEEE_802_15_4, self._frame(node.node_id, node.node_id))


class TestDeliveryAccounting:
    """`deliveries` counts arrivals, not schedules: receivers that die
    between the two never inflate the count, and the three surfaces
    (sim.deliveries, received_count, sim_deliveries_total) agree."""

    @staticmethod
    def _frame(src, dst):
        return Ieee802154Frame(pan_id=1, seq=0, src=src, dst=dst)

    def _pair(self, telemetry=None):
        sim = Simulator(seed=5, telemetry=telemetry)
        sender = sim.add_node(
            SimNode(NodeId("s"), (0, 0), mediums=(Medium.IEEE_802_15_4,))
        )
        receiver = sim.add_node(
            SimNode(NodeId("r"), (10, 0), mediums=(Medium.IEEE_802_15_4,))
        )
        sim.run_until(0.01)
        return sim, sender, receiver

    def _assert_agreement(self, sim, receiver, telemetry, expected):
        assert sim.deliveries == expected
        assert receiver.received_count == expected
        assert (
            telemetry.metrics.counter("sim_deliveries_total").value(
                medium=Medium.IEEE_802_15_4.value
            )
            == expected
        )

    def test_crash_while_frame_in_flight(self):
        from repro.obs import Telemetry

        telemetry = Telemetry()
        sim, sender, receiver = self._pair(telemetry)
        scheduled = sender.send(
            Medium.IEEE_802_15_4, self._frame(sender.node_id, receiver.node_id)
        )
        assert scheduled == 1  # alive at schedule time
        sim.schedule_in(1e-5, receiver.crash)  # before the ~2e-4 s arrival
        sim.run(1.0)
        self._assert_agreement(sim, receiver, telemetry, expected=0)

    def test_revocation_while_frame_in_flight(self):
        from repro.obs import Telemetry

        telemetry = Telemetry()
        sim, sender, receiver = self._pair(telemetry)
        assert (
            sender.send(
                Medium.IEEE_802_15_4, self._frame(sender.node_id, receiver.node_id)
            )
            == 1
        )
        sim.schedule_in(1e-5, lambda: sim.remove_node(receiver.node_id))
        sim.run(1.0)
        self._assert_agreement(sim, receiver, telemetry, expected=0)

    def test_interface_flap_between_schedule_and_arrival(self):
        from repro.obs import Telemetry

        telemetry = Telemetry()
        sim, sender, receiver = self._pair(telemetry)
        assert (
            sender.send(
                Medium.IEEE_802_15_4, self._frame(sender.node_id, receiver.node_id)
            )
            == 1
        )
        sim.schedule_in(
            1e-5, lambda: receiver.disable_medium(Medium.IEEE_802_15_4)
        )
        sim.run(1.0)
        self._assert_agreement(sim, receiver, telemetry, expected=0)
        # Flap ends; the next frame is a real delivery on every surface.
        receiver.enable_medium(Medium.IEEE_802_15_4)
        sender.send(
            Medium.IEEE_802_15_4, self._frame(sender.node_id, receiver.node_id)
        )
        sim.run(1.0)
        self._assert_agreement(sim, receiver, telemetry, expected=1)

    def test_dead_receiver_skipped_at_schedule_time(self):
        sim, sender, receiver = self._pair()
        receiver.crash()
        assert (
            sender.send(
                Medium.IEEE_802_15_4, self._frame(sender.node_id, receiver.node_id)
            )
            == 0
        )
        sim.run(1.0)
        assert sim.deliveries == 0
        assert receiver.received_count == 0

    def test_delivery_counts_on_the_happy_path(self):
        from repro.obs import Telemetry

        telemetry = Telemetry()
        sim, sender, receiver = self._pair(telemetry)
        sender.send(
            Medium.IEEE_802_15_4, self._frame(sender.node_id, receiver.node_id)
        )
        sim.run(1.0)
        self._assert_agreement(sim, receiver, telemetry, expected=1)


class TestDeterminism:
    @staticmethod
    def _run_once(seed):
        from repro.devices.wsn import build_wsn
        from repro.sim.topology import line_positions
        from repro.trace.recorder import TraceRecorder

        sim = Simulator(seed=seed)
        build_wsn(sim, line_positions(4, 25.0))
        sniffer = sim.add_node(SnifferNode(NodeId("obs"), (30, 5)))
        recorder = TraceRecorder().attach(sniffer)
        sim.run(30.0)
        return [
            (r.capture.timestamp, r.capture.rssi, r.capture.packet.summary())
            for r in recorder.trace
        ]

    def test_same_seed_identical_history(self):
        assert self._run_once(42) == self._run_once(42)

    def test_different_seed_different_history(self):
        assert self._run_once(1) != self._run_once(2)
