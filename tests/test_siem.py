"""Tests for repro.siem: schema, dedup, correlation, merge, report.

The aggregator's load-bearing promise: at-least-once intake plus
content-keyed dedup yields exactly-once canonical output — the merged
log is a pure function of the event set, independent of arrival order,
batching, and re-emission.
"""

import gzip
import json

import pytest

from repro.siem import (
    BATCH_VERSION,
    FleetRollup,
    SiemAggregator,
    SiemSchemaError,
    correlate_alerts,
    event_dedup_key,
    event_sort_key,
    fleet_report_data,
    make_batch,
    make_event,
    render_fleet_report,
    validate_batch,
)
from repro.siem.events import make_worker_done


def _alert(site, t, seq=0, attack="icmp_flood"):
    return make_event(site, "alert", t, seq, {"attack": attack})


def _done(site, packets=100, t=60.0):
    return make_event(site, "site-done", t, 0, {"packets": packets})


class TestEvents:
    def test_make_event_is_versioned(self):
        event = _alert("site-0001", 5.0)
        assert event["v"] == BATCH_VERSION
        assert event_dedup_key(event) == ("site-0001", "alert", 0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SiemSchemaError, match="unknown event kind"):
            make_event("s", "bogus", 0.0, 0, {})

    def test_sort_key_orders_time_site_kind_seq(self):
        events = [
            _done("site-0001", t=5.0),
            _alert("site-0002", 5.0),
            _alert("site-0001", 5.0, seq=1),
            _alert("site-0001", 1.0),
        ]
        ordered = sorted(events, key=event_sort_key)
        assert [e["site"] + "/" + e["kind"] for e in ordered] == [
            "site-0001/alert",  # t=1
            "site-0001/alert",  # t=5, alert ranks before site-done
            "site-0001/site-done",
            "site-0002/alert",
        ]

    def test_validate_batch_names_the_violation(self):
        with pytest.raises(SiemSchemaError, match='"v" version field'):
            validate_batch({"type": "batch"})
        with pytest.raises(SiemSchemaError, match="unsupported batch version"):
            validate_batch({"v": 99, "type": "batch"})
        with pytest.raises(SiemSchemaError, match="unknown batch type"):
            validate_batch({"v": 1, "type": "wat"})
        with pytest.raises(SiemSchemaError, match='"events" must be a list'):
            validate_batch({"v": 1, "type": "batch", "events": 3})
        with pytest.raises(SiemSchemaError, match="event #0 missing 'seq'"):
            validate_batch(
                {
                    "v": 1,
                    "type": "batch",
                    "events": [{"v": 1, "site": "s", "kind": "alert", "t": 0.0}],
                }
            )


class TestCorrelation:
    def test_k_sites_threshold(self):
        events = sorted(
            [_alert("site-0001", 10.0), _alert("site-0002", 12.0)],
            key=event_sort_key,
        )
        assert correlate_alerts(events, k_sites=3, window_s=30.0) == []
        events.append(_alert("site-0003", 14.0))
        alerts = correlate_alerts(
            sorted(events, key=event_sort_key), k_sites=3, window_s=30.0
        )
        assert len(alerts) == 1
        assert alerts[0].sites == ("site-0001", "site-0002", "site-0003")
        assert alerts[0].t_first == 10.0 and alerts[0].t_last == 14.0

    def test_window_splits_episodes(self):
        events = sorted(
            [
                _alert("site-0001", 10.0),
                _alert("site-0002", 15.0),
                # 100s gap: a second episode, below k at both halves
                _alert("site-0003", 115.0),
            ],
            key=event_sort_key,
        )
        assert correlate_alerts(events, k_sites=3, window_s=30.0) == []
        # but with k=2 the first episode qualifies
        alerts = correlate_alerts(events, k_sites=2, window_s=30.0)
        assert len(alerts) == 1
        assert alerts[0].sites == ("site-0001", "site-0002")

    def test_signatures_do_not_mix(self):
        events = sorted(
            [
                _alert("site-0001", 10.0, attack="icmp_flood"),
                _alert("site-0002", 11.0, attack="wormhole"),
                _alert("site-0003", 12.0, attack="icmp_flood"),
            ],
            key=event_sort_key,
        )
        assert correlate_alerts(events, k_sites=2, window_s=30.0)[0].attack == (
            "icmp_flood"
        )
        assert len(correlate_alerts(events, k_sites=2, window_s=30.0)) == 1


class TestAggregator:
    def test_dedup_collapses_reemission(self):
        agg = SiemAggregator(k_sites=2)
        events = [_alert("site-0001", 1.0), _done("site-0001")]
        agg.ingest_batch(
            make_batch(0, "site-0001", 0, events), record_latency=False
        )
        agg.ingest_batch(
            make_batch(0, "site-0001", 1, events), record_latency=False
        )
        assert agg.stats.duplicates_dropped == 2
        assert len(agg.finalize()) == 2

    def test_merge_is_arrival_order_independent(self):
        batches = [
            make_batch(0, "site-0001", 0, [_alert("site-0001", 3.0)]),
            make_batch(1, "site-0002", 0, [_alert("site-0002", 1.0)]),
            make_batch(0, "site-0001", 1, [_done("site-0001")]),
        ]
        forward, backward = SiemAggregator(), SiemAggregator()
        for batch in batches:
            forward.ingest_batch(batch, record_latency=False)
        for batch in reversed(batches):
            backward.ingest_batch(batch, record_latency=False)
        assert forward.canonical_lines() == backward.canonical_lines()

    def test_finalize_blocks_further_intake(self):
        agg = SiemAggregator()
        agg.finalize()
        with pytest.raises(RuntimeError, match="finalized"):
            agg.ingest_batch(
                make_batch(0, "s", 0, []), record_latency=False
            )

    def test_fleet_alert_lands_in_merged_output(self):
        agg = SiemAggregator(k_sites=2, window_s=30.0)
        for index, site in enumerate(("site-0001", "site-0002")):
            agg.ingest_batch(
                make_batch(index, site, 0, [_alert(site, 10.0 + index)]),
                record_latency=False,
            )
        merged = agg.merged_events()
        assert merged[-1]["kind"] == "fleet-alert"
        assert merged[-1]["site"] == "fleet"
        assert merged[-1]["body"]["sites"] == ["site-0001", "site-0002"]

    def test_schema_error_names_field(self):
        agg = SiemAggregator()
        with pytest.raises(SiemSchemaError):
            agg.ingest_batch({"type": "batch"})

    def test_worker_done_tracks_liveness(self):
        agg = SiemAggregator()
        agg.ingest_batch(make_worker_done(2, sites=5, batches=9))
        assert agg.stats.workers_done == 1
        assert agg.stats.workers[2]["done"] is True
        assert agg.stats.workers[2]["sites_done"] == 5

    def test_stream_sweep_tolerates_partial_tail(self, tmp_path):
        from repro.siem.events import batch_line

        path = tmp_path / "stream.ndjson"
        batch = make_batch(0, "site-0001", 0, [_alert("site-0001", 1.0)])
        path.write_text(batch_line(batch) + "\n" + '{"v":1,"type":"bat')
        agg = SiemAggregator()
        assert agg.ingest_stream(path, worker=0) == 1
        assert agg.stats.partial_lines_skipped == 1
        assert len(agg.finalize()) == 1

    def test_write_merged_gzip_roundtrip(self, tmp_path):
        agg = SiemAggregator(k_sites=2)
        for site in ("site-0001", "site-0002"):
            agg.ingest_batch(
                make_batch(0, site, 0, [_alert(site, 5.0), _done(site)]),
                record_latency=False,
            )
        path = agg.write_merged(tmp_path / "merged.jsonl.gz")
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        assert lines[0]["type"] == "siem-meta"
        assert lines[0]["total_packets"] == 200
        assert len(lines) - 1 == len(agg.merged_events())

    def test_total_packets_sums_site_done(self):
        agg = SiemAggregator()
        agg.ingest_batch(
            make_batch(0, "site-0001", 0, [_done("site-0001", packets=42)]),
            record_latency=False,
        )
        assert agg.total_packets == 42
        assert agg.sites_done == 1


class TestRollup:
    def test_deterministic_and_wall_series_split(self):
        rollup = FleetRollup()
        rollup.record_event(_alert("site-0001", 1.0))
        rollup.record_event(_done("site-0001", packets=7))
        rollup.record_duplicate("site-0001")
        rollup.record_batch(0, latency_ms=3.0, backlog=2)
        text = rollup.prometheus_text()
        assert "siem_alerts_total" in text
        assert "siem_site_packets" in text
        # wall series must quarantine their values under "wall"
        latency = [
            entry for entry in rollup.snapshot()
            if entry["name"] == "siem_batch_latency_ms"
        ]
        assert latency and all("wall" in entry for entry in latency)
        assert all("buckets" in entry["wall"] for entry in latency)

    def test_worker_sample_reaches_fleet_gauges(self):
        rollup = FleetRollup()
        rollup.record_worker_sample(1, "site-0003", 2048.0, 4)
        text = rollup.prometheus_text()
        assert 'fleet_worker_rss_kb{site="site-0003",worker="1"}' in text
        assert 'fleet_worker_queue_depth{site="site-0003",worker="1"}' in text


class TestReport:
    def _populated(self):
        agg = SiemAggregator(k_sites=2, window_s=30.0)
        for index, site in enumerate(("site-0001", "site-0002", "site-0003")):
            events = [
                _alert(site, 10.0 + index, seq=0),
                _done(site, packets=100 * (index + 1)),
            ]
            if site == "site-0003":  # the noisy one
                events.insert(1, _alert(site, 12.0 + index, seq=1))
            agg.ingest_batch(
                make_batch(index % 2, site, 0, events), record_latency=False
            )
        return agg

    def test_report_data_shape(self):
        data = fleet_report_data(self._populated(), run={"sites": 3}, top=2)
        json.dumps(data)  # persisted as report.json: must serialize
        assert data["summary"]["sites_done"] == 3
        assert data["summary"]["fleet_alerts"] == 1
        assert len(data["noisy_sites"]) == 2  # top-K honored
        assert data["noisy_sites"][0]["site"] == "site-0003"
        assert data["detection"][0]["attack"] == "icmp_flood"
        assert data["detection"][0]["fleet_alerts"] == 1

    def test_render_names_noisy_sites_and_alerts(self):
        data = fleet_report_data(self._populated(), top=3)
        text = render_fleet_report(data)
        assert "site-0003" in text
        assert "icmp_flood" in text
        assert "fleet detection table" in text
        assert "worker stragglers" in text
