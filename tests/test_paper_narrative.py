"""Narrative tests: the paper's worked examples, replayed verbatim.

These tests follow the paper's own illustrative walk-throughs — the
Figure 2 working example (§III-A1) and the Figure 5 knowledge
representation — so a reader can line the test up against the paper
paragraph by paragraph.
"""

import pytest

from repro.core.kalis import KalisNode
from repro.core.knowledge import KnowledgeBase, Knowgget
from repro.util.ids import NodeId


class TestFigure2WorkingExample:
    """§III-A1: 'suppose that node 5 carries out an ICMP Flood attack
    on victim node V' on a single-hop network."""

    @pytest.fixture
    def scenario(self):
        from repro.attacks import IcmpFloodAttacker
        from repro.proto.iphost import IpHost, LanDirectory
        from repro.sim.engine import Simulator
        from repro.util.rng import SeededRng

        sim = Simulator(seed=111)
        lan = LanDirectory()
        victim = sim.add_node(IpHost(NodeId("V"), (0.0, 0.0), lan))
        # Nodes 1..4: the victim's benign single-hop neighbours.
        for index in range(1, 5):
            sim.add_node(
                IpHost(NodeId(f"n{index}"), (3.0 + index, 2.0), lan)
            )
        # Node 5: the attacker.
        attacker = sim.add_node(
            IcmpFloodAttacker(
                NodeId("n5"), (2.0, 5.0), lan,
                victim_ip=victim.ip, victim_link=victim.node_id,
                start_delay=10.0, rng=SeededRng(111, "n5"),
            )
        )
        kalis = KalisNode(NodeId("kalis"))
        kalis.deploy(sim, position=(3.0, 3.0))
        sim.run(40.0)
        return kalis, attacker, victim

    def test_observation_to_feature(self, scenario):
        """'By observing the traffic, the system can reconstruct the
        portion of the topology ... and determine that it is a
        single-hop network.'"""
        kalis, _, _ = scenario
        assert kalis.kb.get("Multihop.wifi", bool) is False

    def test_feature_to_detection_technique(self, scenario):
        """'Given that knowledge, the system activates the detection
        technique for ICMP Flood attacks and not that for Smurf
        attacks.'"""
        kalis, _, _ = scenario
        active = kalis.active_module_names()
        assert "IcmpFloodModule" in active
        assert "SmurfModule" not in active

    def test_symptom_to_unambiguous_detection(self, scenario):
        """'Upon the detection of an unusually high amount of ICMP Echo
        Reply messages to the node, the only active module will
        unambiguously detect the undergoing ICMP Flood attack.'"""
        kalis, attacker, victim = scenario
        assert kalis.alerts.attacks_seen() == ["icmp_flood"]
        alert = kalis.alerts.first()
        assert alert.suspects == (attacker.node_id,)
        assert alert.victim == victim.node_id


class TestFigure5KnowledgeRepresentation:
    """§V / Figure 5: the key-value representation, including two Kalis
    nodes' signal-strength readings for the same sensor coexisting."""

    def test_figure5b_reproduced_exactly(self):
        k1 = KnowledgeBase(NodeId("K1"))
        k1.put("Multihop", True)
        k1.put("MonitoredNodes", 8)
        k1.put("SignalStrength", -67, entity=NodeId("SensorA"))
        k1.put("TrafficFrequency.TCPSYN", 0.037)
        k1.put("TrafficFrequency.TCPACK", 0.090)
        # K2's reading of the same sensor arrives via collective sync.
        k1.apply_remote(
            Knowgget(
                label="SignalStrength", value="-84", creator=NodeId("K2"),
                entity=NodeId("SensorA"), collective=True,
            ),
            sender=NodeId("K2"),
        )
        assert k1.snapshot() == {
            "K1$Multihop": "true",
            "K1$MonitoredNodes": "8",
            "K1$SignalStrength@SensorA": "-67",
            "K2$SignalStrength@SensorA": "-84",
            "K1$TrafficFrequency.TCPSYN": "0.037",
            "K1$TrafficFrequency.TCPACK": "0.09",
        }

    def test_per_entity_lookup_spans_creators(self):
        """'looking up knowggets related to a specific entity only
        requires searching for keys with a suffix matching the
        identifier of the entity'."""
        k1 = KnowledgeBase(NodeId("K1"))
        k1.put("SignalStrength", -67, entity=NodeId("SensorA"))
        k1.apply_remote(
            Knowgget(label="SignalStrength", value="-84",
                     creator=NodeId("K2"), entity=NodeId("SensorA")),
            sender=NodeId("K2"),
        )
        readings = k1.about_entity(NodeId("SensorA"))
        assert {k.creator.value for k in readings} == {"K1", "K2"}

    def test_signal_strength_is_shared_collectively_end_to_end(self):
        """The §IV-B3 collective example: 'being aware that other Kalis
        nodes are noticing changes in signal strength for specific
        devices' — the Mobility Awareness module marks its
        SignalStrength knowggets collective, so peers see them."""
        from repro.core.collective import CollectiveKnowledgeNetwork
        from tests.conftest import wifi_icmp_capture

        kalis_1 = KalisNode(NodeId("K1"))
        kalis_2 = KalisNode(NodeId("K2"))
        network = CollectiveKnowledgeNetwork(sim=None)
        network.join(kalis_1.kb)
        network.join(kalis_2.kb)
        sensor = NodeId("SensorA")
        for index in range(6):
            kalis_1.feed(
                wifi_icmp_capture(sensor, NodeId("sink"), "10.23.0.9",
                                  float(index), rssi=-67.0)
            )
        assert (
            kalis_2.kb.get("SignalStrength", int, creator=NodeId("K1"),
                           entity=sensor)
            == -67
        )
