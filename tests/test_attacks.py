"""Tests for the attack library: each attacker produces its documented
observable behaviour and honest ground truth."""

import pytest

from repro.attacks import (
    AlteringMote,
    BlackholeMote,
    HelloFloodNode,
    IcmpFloodAttacker,
    ReplicaMeshNode,
    SelectiveForwardingMote,
    SinkholeMote,
    SmurfAttacker,
    SpoofingNode,
    SybilNode,
    SynFloodAttacker,
    WormholePair,
)
from repro.devices.wsn import TelosbMote
from repro.net.packets.icmp import IcmpMessage, IcmpType
from repro.net.packets.ieee802154 import Ieee802154Frame
from repro.net.packets.ip import IpPacket
from repro.net.packets.tcp import TcpSegment
from repro.proto.iphost import IpHost, LanDirectory
from repro.proto.mesh import ZigbeeMeshNode
from repro.sim.engine import Simulator
from repro.sim.node import SnifferNode
from repro.util.ids import NodeId
from repro.util.rng import SeededRng


def sniffed_world(seed=31):
    sim = Simulator(seed=seed)
    captures = []
    sniffer = SnifferNode(NodeId("obs"), (5.0, 5.0))
    sim.add_node(sniffer)
    sniffer.add_listener(captures.append)
    return sim, captures


class TestIcmpFlood:
    def test_burst_of_spoofed_replies(self):
        sim, captures = sniffed_world()
        lan = LanDirectory()
        victim = sim.add_node(IpHost(NodeId("victim"), (3.0, 0.0), lan))
        attacker = sim.add_node(
            IcmpFloodAttacker(
                NodeId("evil"), (0.0, 0.0), lan,
                victim_ip=victim.ip, victim_link=victim.node_id,
                burst_size=10, start_delay=1.0, max_bursts=2,
                rng=SeededRng(1),
            )
        )
        sim.run(20.0)
        replies = [
            c for c in captures
            if (icmp := c.packet.find_layer(IcmpMessage)) is not None
            and icmp.icmp_type is IcmpType.ECHO_REPLY
        ]
        assert len(replies) == 20
        source_ips = {c.packet.find_layer(IpPacket).src_ip for c in replies}
        assert len(source_ips) == 20  # "several different identities"
        assert len(attacker.log) == 2

    def test_max_bursts_respected(self):
        sim, _ = sniffed_world()
        lan = LanDirectory()
        victim = sim.add_node(IpHost(NodeId("victim"), (3.0, 0.0), lan))
        attacker = sim.add_node(
            IcmpFloodAttacker(
                NodeId("evil"), (0.0, 0.0), lan,
                victim_ip=victim.ip, victim_link=victim.node_id,
                burst_interval=1.0, start_delay=0.5, max_bursts=3,
                rng=SeededRng(2),
            )
        )
        sim.run(60.0)
        assert len(attacker.log) == 3


class TestSmurf:
    def test_neighbours_reflect_onto_victim(self):
        sim, captures = sniffed_world()
        lan = LanDirectory()
        victim = sim.add_node(IpHost(NodeId("victim"), (3.0, 0.0), lan))
        helpers = [
            sim.add_node(IpHost(NodeId(f"helper-{i}"), (1.0 + i, 4.0), lan))
            for i in range(3)
        ]
        attacker = sim.add_node(
            SmurfAttacker(
                NodeId("evil"), (0.0, 0.0), lan, victim_ip=victim.ip,
                requests_per_burst=2, start_delay=1.0, max_bursts=1,
                rng=SeededRng(3),
            )
        )
        sim.run(10.0)
        # Every helper answered every spoofed broadcast request.
        for helper in helpers:
            assert helper.ping_replies_sent == 2
        replies_to_victim = [
            c for c in captures
            if (ip := c.packet.find_layer(IpPacket)) is not None
            and ip.dst_ip == victim.ip
            and (icmp := c.packet.find_layer(IcmpMessage)) is not None
            and icmp.icmp_type is IcmpType.ECHO_REPLY
        ]
        assert len(replies_to_victim) == 6  # 3 helpers x 2 requests
        # The attacker itself never pings back (it forged the source).
        assert attacker.ping_replies_sent == 0


class TestSynFlood:
    def test_spoofed_syn_storm(self):
        sim, captures = sniffed_world()
        lan = LanDirectory()
        victim = sim.add_node(IpHost(NodeId("victim"), (3.0, 0.0), lan))
        victim.tcp.listen(443)
        attacker = sim.add_node(
            SynFloodAttacker(
                NodeId("evil"), (0.0, 0.0), lan,
                victim_ip=victim.ip, victim_link=victim.node_id,
                burst_size=15, start_delay=1.0, max_bursts=1,
                rng=SeededRng(4),
            )
        )
        sim.run(10.0)
        syns = [
            c for c in captures
            if (seg := c.packet.find_layer(TcpSegment)) is not None and seg.is_syn
        ]
        assert len(syns) == 15
        # The victim piles up half-open connections — the DoS mechanism.
        assert victim.tcp.half_open_count() == 15


class TestWsnAttackers:
    def test_selective_forwarding_quota(self):
        sim = Simulator(seed=35)
        sim.add_node(TelosbMote(NodeId("mote-base"), (0.0, 0.0), is_root=True))
        sim.add_node(TelosbMote(NodeId("mote-1"), (25.0, 0.0)))
        attacker = sim.add_node(
            SelectiveForwardingMote(
                NodeId("evil"), (50.0, 0.0), drop_probability=1.0,
                max_drops=5, rng=SeededRng(5),
            )
        )
        sim.add_node(TelosbMote(NodeId("mote-3"), (75.0, 0.0)))
        sim.run(90.0)
        assert attacker.dropped_count == 5
        assert attacker.forwarded_count > 0  # honest after the quota

    def test_blackhole_forwards_nothing(self):
        sim = Simulator(seed=36)
        base = sim.add_node(TelosbMote(NodeId("mote-base"), (0.0, 0.0), is_root=True))
        sim.add_node(TelosbMote(NodeId("mote-1"), (25.0, 0.0)))
        attacker = sim.add_node(BlackholeMote(NodeId("evil"), (50.0, 0.0)))
        sim.add_node(TelosbMote(NodeId("mote-3"), (75.0, 0.0)))
        sim.run(60.0)
        assert attacker.dropped_count > 0
        assert attacker.forwarded_count == 0
        # mote-3's samples never arrive.
        origins = {o for o, _, _, _ in base.collected}
        assert NodeId("mote-3") not in origins

    def test_sinkhole_attracts_and_swallows(self):
        sim = Simulator(seed=37)
        base = sim.add_node(TelosbMote(NodeId("mote-base"), (0.0, 0.0), is_root=True))
        honest = sim.add_node(TelosbMote(NodeId("mote-1"), (20.0, 0.0)))
        attacker = sim.add_node(
            SinkholeMote(NodeId("evil"), (20.0, 10.0), advertised_etx=0)
        )
        sim.run(60.0)
        # The honest mote re-parented onto the liar.
        assert honest.parent == attacker.node_id
        assert attacker.swallowed_count > 0

    def test_altering_mote_changes_seqno(self):
        sim = Simulator(seed=38)
        base = sim.add_node(TelosbMote(NodeId("mote-base"), (0.0, 0.0), is_root=True))
        sim.add_node(TelosbMote(NodeId("mote-1"), (25.0, 0.0)))
        attacker = sim.add_node(
            AlteringMote(NodeId("evil"), (50.0, 0.0), alter_probability=1.0,
                         seqno_shift=7777, rng=SeededRng(6))
        )
        sim.add_node(TelosbMote(NodeId("mote-3"), (75.0, 0.0)))
        sim.run(60.0)
        assert attacker.altered_count > 0
        altered = [s for _, s, _, _ in base.collected if s > 7000]
        assert altered, "tampered sequence numbers must reach the root"

    def test_hello_flood_bursts(self):
        sim, captures = sniffed_world(seed=39)
        attacker = sim.add_node(
            HelloFloodNode(NodeId("evil"), (0.0, 0.0), beacons_per_burst=10,
                           start_delay=0.5, max_bursts=2, rng=SeededRng(7))
        )
        sim.run(30.0)
        assert len(attacker.log) == 2
        beacons = [c for c in captures if c.packet.find_layer(Ieee802154Frame)]
        assert len(beacons) == 20


class TestIdentityAttackers:
    def test_replica_sends_under_cloned_identity(self):
        sim, captures = sniffed_world(seed=40)
        replica = sim.add_node(
            ReplicaMeshNode(
                NodeId("replica"), (3.0, 0.0),
                cloned_identity=NodeId("member-1"),
                target=NodeId("coord"), next_hop=NodeId("coord"),
                start_delay=0.5, max_sends=4, rng=SeededRng(8),
            )
        )
        sim.run(30.0)
        assert len(replica.log) == 4
        for capture in captures:
            mac = capture.packet.find_layer(Ieee802154Frame)
            assert mac.src == NodeId("member-1")  # never its true identity

    def test_sybil_round_uses_all_identities(self):
        sim, captures = sniffed_world(seed=41)
        attacker = sim.add_node(
            SybilNode(NodeId("evil"), (3.0, 0.0), target=NodeId("coord"),
                      identity_count=4, start_delay=0.5, max_rounds=2,
                      rng=SeededRng(9))
        )
        sim.run(30.0)
        sources = {c.packet.find_layer(Ieee802154Frame).src for c in captures}
        assert len(sources) == 4
        assert NodeId("evil") not in sources

    def test_spoofing_claims_live_identity(self):
        sim, captures = sniffed_world(seed=42)
        attacker = sim.add_node(
            SpoofingNode(NodeId("evil"), (3.0, 0.0),
                         spoofed_identity=NodeId("mote-7"),
                         target=NodeId("parent"), start_delay=0.5,
                         max_sends=3, rng=SeededRng(10))
        )
        sim.run(30.0)
        assert len(attacker.log) == 3
        for capture in captures:
            assert capture.packet.find_layer(Ieee802154Frame).src == NodeId("mote-7")


class TestWormhole:
    def test_tunnel_moves_traffic_out_of_band(self):
        sim = Simulator(seed=43)
        source = ZigbeeMeshNode(NodeId("src"), (0.0, 0.0))
        pair = WormholePair(NodeId("B1"), (25.0, 0.0), NodeId("B2"), (300.0, 0.0))
        destination = ZigbeeMeshNode(NodeId("dst"), (325.0, 0.0))
        source.set_routes({destination.node_id: pair.entry.node_id})
        pair.entry.set_routes({destination.node_id: NodeId("unused")})
        pair.exit.set_routes({destination.node_id: destination.node_id})
        sim.add_node(source)
        pair.add_to(sim)
        sim.add_node(destination)
        sim.run_until(0.01)
        source.send_app(destination.node_id)
        sim.run(2.0)
        # The packet arrived across a radio gap no honest path crosses.
        assert len(destination.delivered) == 1
        assert pair.entry.tunnelled_count == 1
        assert pair.exit.emitted_count == 1
        assert len(pair.log) == 1

    def test_detached_exit_ends_tunnel(self):
        sim = Simulator(seed=44)
        source = ZigbeeMeshNode(NodeId("src"), (0.0, 0.0))
        pair = WormholePair(NodeId("B1"), (25.0, 0.0), NodeId("B2"), (300.0, 0.0))
        destination = ZigbeeMeshNode(NodeId("dst"), (325.0, 0.0))
        source.set_routes({destination.node_id: pair.entry.node_id})
        pair.exit.set_routes({destination.node_id: destination.node_id})
        sim.add_node(source)
        pair.add_to(sim)
        sim.add_node(destination)
        sim.run_until(0.01)
        sim.remove_node(pair.exit.node_id)
        source.send_app(destination.node_id)
        sim.run(2.0)
        assert destination.delivered == []


class TestValidation:
    def test_attack_parameter_validation(self):
        lan = LanDirectory()
        with pytest.raises(ValueError):
            IcmpFloodAttacker(NodeId("e"), (0, 0), lan, victim_ip="x",
                              victim_link=NodeId("v"), burst_size=0)
        with pytest.raises(ValueError):
            SelectiveForwardingMote(NodeId("e"), (0, 0), drop_probability=1.5)
        with pytest.raises(ValueError):
            SybilNode(NodeId("e"), (0, 0), target=NodeId("t"), identity_count=1)
        with pytest.raises(ValueError):
            SinkholeMote(NodeId("e"), (0, 0), advertised_etx=-1)
