"""Process-pool file-rule execution: byte-identity with serial, fail-soft."""

from pathlib import Path

from repro.analysis.cli import main
from repro.analysis.engine import _RULES, _ensure_rules_loaded, run_rules
from repro.analysis.parallel import MIN_TASKS, run_file_tasks
from repro.analysis.project import Project

ROOT = Path(__file__).resolve().parent.parent


def _file_rule_ids():
    _ensure_rules_loaded()
    return [
        rule_id
        for rule_id in sorted(_RULES)
        if _RULES[rule_id].SCOPE == "file"
    ]


class TestRunFileTasks:
    def test_pool_results_match_serial(self):
        project = Project.load([ROOT / "src" / "repro"], root=ROOT)
        rule_ids = _file_rule_ids()[:3]
        tasks = [
            (rule_id, index)
            for rule_id in rule_ids
            for index in range(min(len(project.files), 40))
        ]
        assert len(tasks) >= MIN_TASKS
        pooled = run_file_tasks(project, tasks, jobs=4)
        assert pooled is not None
        for rule_id, index in tasks:
            serial = list(
                _RULES[rule_id]().check_file(project, project.files[index])
            )
            assert pooled[(rule_id, index)] == serial

    def test_single_job_declines_the_pool(self):
        project = Project.load([ROOT / "src" / "repro"], root=ROOT)
        tasks = [(_file_rule_ids()[0], 0)]
        assert run_file_tasks(project, tasks, jobs=1) is None


class TestRunRulesParallel:
    def test_output_is_byte_identical_to_serial(self):
        """The headline contract: --jobs N changes nothing observable."""
        project_a = Project.load([ROOT / "src" / "repro"], root=ROOT)
        project_b = Project.load([ROOT / "src" / "repro"], root=ROOT)
        serial = run_rules(project_a, jobs=1)
        parallel = run_rules(project_b, jobs=4)
        assert serial == parallel

    def test_cli_jobs_flag_matches_serial_text(self, capsys):
        args = [
            "--root",
            str(ROOT),
            "--baseline",
            str(ROOT / "kalis-lint.baseline"),
            "--no-cache",
            str(ROOT / "src" / "repro"),
        ]
        code_serial = main(args)
        out_serial = capsys.readouterr().out
        code_parallel = main(args + ["--jobs", "4"])
        out_parallel = capsys.readouterr().out
        assert (code_serial, out_serial) == (code_parallel, out_parallel)
