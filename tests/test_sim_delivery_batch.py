"""Batched-vs-scalar delivery equivalence.

The vectorized delivery path (``use_batched_delivery=True``, the
default) must be *byte-identical* to the per-candidate scalar loop it
replaced: same reception sets, same per-pair RSSI values bit for bit,
same candidate accounting — across random topologies, seeds, and
medium parameters, including the degenerate branches (certain drop,
zero shadowing, wired medium).  The scalar loop stays available behind
the flag exactly so these tests can use it as the oracle.
"""

import itertools
from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.packets.base import Medium, Packet
from repro.sim.engine import Simulator
from repro.sim.medium import PathLossParams, RadioMedium
from repro.sim.node import SimNode
from repro.util.ids import NodeId
from repro.util.rng import SeededRng


@dataclass(frozen=True)
class _Probe(Packet):
    """A bare frame with a fixed wire size."""

    HEADER_BYTES = 24


class _RecordingNode(SimNode):
    """Keeps every reception as (sender-visible) evidence for equality."""

    def __init__(self, node_id, position, mediums):
        super().__init__(node_id, position=position, mediums=mediums)
        self.heard = []

    def handle_frame(self, packet, medium, rssi, timestamp):
        super().handle_frame(packet, medium, rssi, timestamp)
        self.heard.append((medium.value, rssi, timestamp))


def _build_world(seed, node_count, area, medium, params, loss,
                 spatial, batched):
    sim = Simulator(
        seed=seed, use_spatial_index=spatial, use_batched_delivery=batched
    )
    sim.set_medium(
        RadioMedium(
            medium,
            params=params,
            rng=SeededRng(seed, "equiv-medium"),
            base_loss_probability=loss,
        )
    )
    placer = SeededRng(seed, "equiv-topo")
    nodes = []
    for index in range(node_count):
        node = _RecordingNode(
            NodeId(f"n{index}"),
            (placer.uniform(0.0, area), placer.uniform(0.0, area)),
            [medium],
        )
        sim.add_node(node)
        nodes.append(node)
    sim.run_until(0.0)
    return sim, nodes


def _drive(sim, nodes, medium, senders):
    receptions = 0
    for index in senders:
        receptions += nodes[index % len(nodes)].send(medium, _Probe())
        sim.run(0.05)
    return receptions


def _history(nodes):
    return {str(node.node_id): node.heard for node in nodes}


def _run_one(seed, node_count, area, medium, params, loss, spatial, batched):
    sim, nodes = _build_world(
        seed, node_count, area, medium, params, loss, spatial, batched
    )
    senders = range(0, node_count * 3, max(1, node_count // 4))
    receptions = _drive(sim, nodes, medium, senders)
    return _history(nodes), receptions, sim.candidate_evaluations, sim.deliveries


class TestBatchedEqualsScalar:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        node_count=st.integers(min_value=2, max_value=40),
        area=st.floats(min_value=10.0, max_value=400.0),
        exponent=st.floats(min_value=2.0, max_value=4.0),
        sigma=st.floats(min_value=0.0, max_value=4.0),
        loss=st.sampled_from([0.0, 0.15, 0.5, 0.97, 1.0]),
    )
    def test_property_sweep(self, seed, node_count, area, exponent, sigma, loss):
        """Random topology/seed/params: all four (spatial x batched)
        paths agree on every reception, RSSI bit and counter."""
        params = PathLossParams(
            tx_power_dbm=0.0,
            pl_d0_db=40.0,
            exponent=exponent,
            sensitivity_dbm=-90.0,
            shadowing_sigma_db=sigma,
        )
        if loss >= 1.0:
            # base_loss_probability must be < 1; reach certain drop via
            # interference instead, below.
            loss = 0.97
        results = {
            combo: _run_one(
                seed, node_count, area, Medium.IEEE_802_15_4, params, loss,
                *combo,
            )
            for combo in itertools.product([True, False], repeat=2)
        }
        baseline = results[(True, True)]
        for combo, result in results.items():
            assert result[0] == baseline[0], combo  # exact RSSI + times
            assert result[1] == baseline[1], combo  # receptions
            assert result[3] == baseline[3], combo  # deliveries
        # Candidate accounting matches within each candidate-source.
        assert results[(True, True)][2] == results[(True, False)][2]
        assert results[(False, True)][2] == results[(False, False)][2]

    @pytest.mark.parametrize("spatial", [True, False])
    def test_certain_drop_jammer(self, spatial):
        """loss >= 1.0 (saturating jammer): zero receptions on both
        paths, and candidate accounting still runs."""
        params = PathLossParams(shadowing_sigma_db=1.5)
        outcomes = []
        for batched in (True, False):
            sim, nodes = _build_world(
                7, 10, 60.0, Medium.IEEE_802_15_4, params, 0.0, spatial, batched
            )
            sim.medium(Medium.IEEE_802_15_4).set_interference(1.0)
            receptions = _drive(sim, nodes, Medium.IEEE_802_15_4, range(10))
            outcomes.append((receptions, sim.candidate_evaluations))
            assert receptions == 0
            assert sim.deliveries == 0
            assert sim.candidate_evaluations > 0
        assert outcomes[0] == outcomes[1]

    @pytest.mark.parametrize("spatial", [True, False])
    def test_zero_sigma_deterministic_rssi(self, spatial):
        """sigma == 0 consumes no shadowing draws; the loss uniform
        shifts to draw word 0 identically on both paths."""
        params = PathLossParams(shadowing_sigma_db=0.0)
        histories = []
        for batched in (True, False):
            sim, nodes = _build_world(
                11, 12, 80.0, Medium.IEEE_802_15_4, params, 0.3, spatial, batched
            )
            _drive(sim, nodes, Medium.IEEE_802_15_4, range(12))
            histories.append(_history(nodes))
        assert histories[0] == histories[1]
        # With zero shadowing each heard RSSI is exactly the mean.
        for heard in histories[0].values():
            for _, rssi, _ in heard:
                assert rssi <= params.tx_power_dbm - params.pl_d0_db + 1e-9

    def test_wired_medium_degenerate(self):
        """The wired pseudo-medium has an unbounded cull range (single
        grid bucket) and zero sigma — everything hears everything,
        identically on all four paths."""
        params = PathLossParams(
            pl_d0_db=0.0, exponent=0.01, sensitivity_dbm=-100.0,
            shadowing_sigma_db=0.0,
        )
        histories = []
        for spatial, batched in itertools.product([True, False], repeat=2):
            sim, nodes = _build_world(
                3, 8, 5000.0, Medium.WIRED, params, 0.0, spatial, batched
            )
            receptions = _drive(sim, nodes, Medium.WIRED, range(8))
            histories.append((_history(nodes), receptions))
            assert receptions == 8 * 7  # full mesh, no losses
        assert all(entry == histories[0] for entry in histories[1:])


class TestBruteForceMemberCache:
    """The brute-force path caches its sorted member list (it used to
    re-sort the registry every transmission); the cache must invalidate
    on register/unregister and survive crashes unchanged."""

    @staticmethod
    def _world(batched):
        sim, nodes = _build_world(
            19, 14, 90.0, Medium.IEEE_802_15_4,
            PathLossParams(shadowing_sigma_db=1.5), 0.1,
            spatial=False, batched=batched,
        )
        return sim, nodes

    def test_reception_sets_unchanged_across_membership_churn(self):
        outcomes = []
        for batched in (True, False):
            sim, nodes = self._world(batched)
            medium = Medium.IEEE_802_15_4
            _drive(sim, nodes, medium, range(4))
            # Unregister one node, register a new one, crash another:
            # the cached order must track the first two and ignore the
            # third (dead nodes stay registered, filtered at transmit).
            sim.remove_node(nodes[5].node_id)
            late = _RecordingNode(NodeId("late"), (45.0, 45.0), [medium])
            sim.add_node(late)
            nodes[7].crash()
            sim.run(0.1)
            _drive(sim, nodes, medium, [0, 1, 2, 3, 6, 8, 9])
            survivors = [n for n in nodes if n.node_id != nodes[5].node_id]
            outcomes.append(
                (_history(survivors + [late]), sim.candidate_evaluations,
                 sim.deliveries)
            )
        assert outcomes[0] == outcomes[1]

    def test_cached_order_invalidated_on_churn(self):
        sim, nodes = self._world(True)
        medium = Medium.IEEE_802_15_4
        nodes[0].send(medium, _Probe())
        first = sim._member_order_cache[medium]
        assert first == sorted(sim._members[medium])
        # Crash does not touch membership: cache object survives.
        nodes[3].crash()
        nodes[0].send(medium, _Probe())
        assert sim._member_order_cache[medium] is first
        # Register/unregister invalidate it.
        sim.remove_node(nodes[4].node_id)
        assert medium not in sim._member_order_cache
        nodes[0].send(medium, _Probe())
        assert nodes[4].node_id not in sim._member_order_cache[medium]
        sim.add_node(_RecordingNode(NodeId("a0"), (1.0, 1.0), [medium]))
        assert medium not in sim._member_order_cache
        nodes[0].send(medium, _Probe())
        assert NodeId("a0") in sim._member_order_cache[medium]
