"""Tests for the status snapshot and the Data Store disk-log path
through the KalisNode facade."""

import json


from repro.core.kalis import KalisNode
from repro.util.ids import NodeId
from tests.conftest import ctp_data_capture, wifi_icmp_capture

A, B = NodeId("a"), NodeId("b")


class TestStatus:
    def test_status_is_json_safe_and_complete(self):
        kalis = KalisNode(NodeId("kalis-1"))
        for i in range(25):
            kalis.feed(wifi_icmp_capture(A, B, "10.23.0.9", float(i)))
        kalis.feed(ctp_data_capture(A, B, origin=A, seqno=1, timestamp=30.0))
        status = json.loads(json.dumps(kalis.status()))
        assert status["node"] == "kalis-1"
        assert status["captures"] == 26
        assert status["captures_by_medium"] == {"802.15.4": 1, "wifi": 25}
        assert status["knowledge_driven"] is True
        assert status["modules"]["TopologyDiscoveryModule"] is True
        assert status["knowggets"] > 0
        assert status["work_units"] > 0
        assert status["approx_ram_bytes"] > 0

    def test_status_reflects_alerts(self):
        kalis = KalisNode(NodeId("kalis-1"))
        # Enough replies to settle the single-hop verdict (20 captures)
        # and then accumulate the flood threshold in the detector.
        for i in range(60):
            kalis.feed(wifi_icmp_capture(A, B, "10.23.0.9", i * 0.3))
        status = kalis.status()
        assert "icmp_flood" in status["attacks_seen"]
        assert status["alerts"] >= 1


class TestDiskLogThroughFacade:
    def test_kalis_node_logs_and_replays(self, tmp_path):
        path = tmp_path / "kalis-traffic.jsonl"
        kalis = KalisNode(NodeId("kalis-1"), log_to=str(path))
        for i in range(10):
            kalis.feed(wifi_icmp_capture(A, B, "10.23.0.9", float(i)))
        assert kalis.datastore.flush_log() == path

        from repro.core.datastore import DataStore

        replayed = []
        count = DataStore.replay_log(path, replayed.append)
        assert count == 10
        assert [c.timestamp for c in replayed] == [float(i) for i in range(10)]


class TestCliRemainingPaths:
    def test_experiment_e2_small(self, capsys):
        from repro.cli import main

        assert main(["experiment", "e2", "--runs", "2"]) == 0
        assert "replication" in capsys.readouterr().out

    def test_experiment_breadth_small(self, capsys):
        from repro.cli import main

        assert main(["experiment", "breadth", "--instances", "5"]) == 0
        assert "AVERAGE" in capsys.readouterr().out

    def test_experiment_ablation_window(self, capsys):
        from repro.cli import main

        assert main(["experiment", "ablation-window"]) == 0
        assert "window" in capsys.readouterr().out
