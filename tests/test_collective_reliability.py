"""Reliable collective sync: ack/retry with exponential backoff must be
deterministic from the seed, drive delivery to 100% under moderate loss
(where fire-and-forget demonstrably loses knowggets), and recover from
declared link outage windows."""

import pytest

from repro.core.collective import CollectiveKnowledgeNetwork, PeerLink
from repro.core.knowledge import KnowledgeBase, Knowgget
from repro.eventbus.bus import EventBus
from repro.sim.engine import Simulator
from repro.util.ids import NodeId
from repro.util.rng import SeededRng

K1, K2 = NodeId("kalis-1"), NodeId("kalis-2")


def kb_for(owner):
    return KnowledgeBase(owner, EventBus())


def lossy_link(seed, sim=None, loss=0.4, **kwargs):
    return PeerLink(
        sim=sim,
        target_kb=kb_for(K2),
        sender=K1,
        loss_probability=loss,
        rng=SeededRng(seed, "reliability"),
        **kwargs,
    )


def send_facts(link, count):
    for index in range(count):
        link.transfer(Knowgget(label=f"Fact{index}", value=str(index), creator=K1))


class TestRetryBackoff:
    def test_retry_delays_follow_exponential_backoff(self):
        sim = Simulator()
        link = lossy_link(
            seed=7, sim=sim, loss=0.0,
            retry_base_delay=0.2, retry_backoff=2.0, max_retries=4,
        )
        link.add_outage(0.0, 100.0)  # every attempt fails deterministically
        send_facts(link, 1)
        sim.run_until(200.0)
        # Retries at t = 0.2, 0.2+0.4, ... each doubling the previous delay.
        times = [entry[0] for entry in link.retry_log]
        assert times == pytest.approx([0.2, 0.6, 1.4, 3.0])
        assert [entry[1] for entry in link.retry_log] == [1, 2, 3, 4]
        assert link.gave_up == 1

    def test_retry_budget_is_bounded(self):
        link = lossy_link(seed=8, loss=0.0, max_retries=3)
        link.add_outage(0.0, float("inf"))
        send_facts(link, 2)
        assert link.attempts == 2 * (1 + 3)
        assert link.gave_up == 2
        assert link.delivered == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            lossy_link(seed=1, max_retries=-1)
        with pytest.raises(ValueError):
            lossy_link(seed=1, retry_base_delay=0.0)
        with pytest.raises(ValueError):
            lossy_link(seed=1, retry_backoff=0.9)


class TestDeterminism:
    @staticmethod
    def _run(seed):
        sim = Simulator(seed=seed)
        link = lossy_link(seed=seed, sim=sim, loss=0.45)
        send_facts(link, 25)
        sim.run_until(120.0)
        return link

    def test_same_seed_same_retry_schedule(self):
        first = self._run(seed=42)
        second = self._run(seed=42)
        assert first.retry_log == second.retry_log
        assert first.attempts == second.attempts
        assert first.delivered == second.delivered
        assert first.last_delivery_at == second.last_delivery_at

    def test_different_seed_different_schedule(self):
        first = self._run(seed=42)
        second = self._run(seed=43)
        assert first.retry_log != second.retry_log


class TestReliableDelivery:
    @staticmethod
    def _network(max_retries, seed=11, loss=0.3, count=60):
        sim = Simulator(seed=seed)
        network = CollectiveKnowledgeNetwork(
            sim=sim, loss_probability=loss,
            rng=SeededRng(seed, "net"), max_retries=max_retries,
        )
        kb1, kb2 = kb_for(K1), kb_for(K2)
        network.join(kb1)
        network.join(kb2)
        for index in range(count):
            kb1.put(f"Fact{index}", index, collective=True)
        sim.run_until(300.0)
        received = sum(
            1 for index in range(count)
            if kb2.get(f"Fact{index}", int, creator=K1) is not None
        )
        return network, received

    def test_retries_drive_delivery_to_100_percent(self):
        network, received = self._network(max_retries=6)
        assert received == 60
        stats = network.delivery_stats()
        assert stats["gave_up"] == 0
        assert stats["delivered"] == stats["sent"] == 60
        assert stats["retries"] > 0  # loss happened; retries recovered it

    def test_fire_and_forget_loses_knowggets(self):
        network, received = self._network(max_retries=0)
        stats = network.delivery_stats()
        assert received < 60
        assert stats["gave_up"] > 0
        assert stats["delivered"] + stats["gave_up"] == stats["sent"]

    def test_convergence_time_is_reported(self):
        network, _ = self._network(max_retries=6)
        assert 0.0 < network.convergence_time() <= 300.0


class TestOutages:
    def test_attempts_during_outage_fail_and_retries_recover_after(self):
        sim = Simulator(seed=3)
        link = lossy_link(seed=3, sim=sim, loss=0.0, max_retries=8)
        link.add_outage(0.0, 5.0)
        send_facts(link, 10)
        sim.run_until(60.0)
        # Every first attempt hit the outage; backoff carried the
        # retries past t=5 and all ten got through.
        assert link.lost >= 10
        assert link.delivered == 10
        assert link.gave_up == 0
        assert link.last_delivery_at >= 5.0

    def test_outage_longer_than_budget_loses_the_knowgget(self):
        sim = Simulator(seed=4)
        link = lossy_link(
            seed=4, sim=sim, loss=0.0,
            max_retries=2, retry_base_delay=0.1, retry_backoff=2.0,
        )
        link.add_outage(0.0, 1000.0)
        send_facts(link, 1)
        sim.run_until(2000.0)
        assert link.delivered == 0
        assert link.gave_up == 1

    def test_outage_validation(self):
        link = lossy_link(seed=5)
        with pytest.raises(ValueError):
            link.add_outage(5.0, 5.0)

    def test_network_wide_outage_partitions_every_link(self):
        network = CollectiveKnowledgeNetwork(sim=None, rng=SeededRng(6))
        network.join(kb_for(K1))
        network.join(kb_for(K2))
        network.add_outage(10.0, 20.0)
        for link in network.links():
            assert link.in_outage(10.0)
            assert link.in_outage(19.9)
            assert not link.in_outage(20.0)
