"""Tests for alerts, the alert sink, and the Communication System."""

import json

import pytest

from repro.core.alerts import Alert, AlertSink
from repro.core.comm import CommunicationSystem
from repro.net.packets.base import Medium
from repro.util.ids import NodeId
from tests.conftest import ctp_data_capture, wifi_icmp_capture

A, B, K = NodeId("a"), NodeId("b"), NodeId("kalis-1")


def alert_at(timestamp, attack="icmp_flood"):
    return Alert(
        attack=attack,
        timestamp=timestamp,
        detected_by="TestModule",
        kalis_node=K,
        suspects=(A,),
        victim=B,
        details={"rate": 3},
    )


class TestAlert:
    def test_confidence_validation(self):
        with pytest.raises(ValueError):
            Alert(
                attack="x", timestamp=0.0, detected_by="m",
                kalis_node=K, confidence=1.5,
            )

    def test_to_dict_is_json_safe(self):
        payload = json.dumps(alert_at(1.0).to_dict())
        decoded = json.loads(payload)
        assert decoded["attack"] == "icmp_flood"
        assert decoded["suspects"] == ["a"]
        assert decoded["victim"] == "b"


class TestAlertSink:
    def test_queries(self):
        sink = AlertSink()
        sink.on_alert(alert_at(1.0))
        sink.on_alert(alert_at(5.0, attack="smurf"))
        sink.on_alert(alert_at(9.0))
        assert len(sink) == 3
        assert len(sink.by_attack("icmp_flood")) == 2
        assert sink.attacks_seen() == ["icmp_flood", "smurf"]
        assert [a.timestamp for a in sink.between(2.0, 9.0)] == [5.0, 9.0]
        assert sink.first().timestamp == 1.0

    def test_empty_sink(self):
        sink = AlertSink()
        assert sink.first() is None
        assert sink.to_siem() == ""

    def test_siem_export_one_json_per_line(self):
        sink = AlertSink()
        sink.on_alert(alert_at(1.0))
        sink.on_alert(alert_at(2.0))
        lines = sink.to_siem().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["kalis_node"] == "kalis-1" for line in lines)


class TestCommunicationSystem:
    def test_counts_per_medium(self):
        comm = CommunicationSystem()
        seen = []
        comm.add_listener(seen.append)
        comm.on_capture(wifi_icmp_capture(A, B, "10.23.0.1", 0.0))
        comm.on_capture(ctp_data_capture(A, B, A, 1, 1.0))
        assert comm.total_captures == 2
        assert comm.captures_by_medium[Medium.WIFI] == 1
        assert comm.captures_by_medium[Medium.IEEE_802_15_4] == 1
        assert len(seen) == 2

    def test_unsupported_medium_dropped(self):
        """The Snort-has-no-802.15.4-radio property, in one unit test."""
        comm = CommunicationSystem(supported_mediums=[Medium.WIFI])
        seen = []
        comm.add_listener(seen.append)
        comm.on_capture(ctp_data_capture(A, B, A, 1, 0.0))
        assert seen == []
        assert comm.dropped_unsupported == 1

    def test_listener_order_preserved(self):
        comm = CommunicationSystem()
        order = []
        comm.add_listener(lambda c: order.append("first"))
        comm.add_listener(lambda c: order.append("second"))
        comm.on_capture(wifi_icmp_capture(A, B, "10.23.0.1", 0.0))
        assert order == ["first", "second"]
