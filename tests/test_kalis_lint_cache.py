"""The kalis-lint incremental cache: hits, invalidation, and speed."""

import textwrap
import time
from pathlib import Path

from repro.analysis.cache import CACHE_DIR_NAME, LintCache
from repro.analysis.cli import main
from repro.analysis.engine import run_rules
from repro.analysis.project import Project

ROOT = Path(__file__).resolve().parent.parent

FILES = {
    "repro/core/widget.py": """
    import os


    def cwd():
        return os.getcwd()
    """,
    "repro/core/gadget.py": """
    import json
    import sys


    def dump(x):
        return json.dumps(x)
    """,
}


def write_tree(tmp_path, files):
    for relpath, content in files.items():
        path = tmp_path / "src" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    for directory in sorted((tmp_path / "src").rglob("*")):
        if directory.is_dir():
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
    return tmp_path / "src" / "repro"


def load_and_run(tmp_path, cache):
    project = Project.load(
        [tmp_path / "src" / "repro"], root=tmp_path, cache=cache
    )
    findings = run_rules(project, cache=cache)
    return project, findings


class TestAstCache:
    def test_second_load_hits(self, tmp_path):
        write_tree(tmp_path, FILES)
        cache = LintCache(tmp_path, fingerprint="f1")
        load_and_run(tmp_path, cache)
        assert cache.ast_hits == 0

        warm = LintCache(tmp_path, fingerprint="f1")
        project, _ = load_and_run(tmp_path, warm)
        assert warm.ast_misses == 0
        assert warm.ast_hits == len(project.files)

    def test_content_change_invalidates_one_file(self, tmp_path):
        tree = write_tree(tmp_path, FILES)
        cache = LintCache(tmp_path, fingerprint="f1")
        load_and_run(tmp_path, cache)

        widget = tree / "core" / "widget.py"
        widget.write_text(
            widget.read_text(encoding="utf-8") + "\n\nEXTRA = 1\n",
            encoding="utf-8",
        )
        warm = LintCache(tmp_path, fingerprint="f1")
        load_and_run(tmp_path, warm)
        assert warm.ast_misses == 1  # only the edited file re-parses

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path):
        write_tree(tmp_path, FILES)
        cache = LintCache(tmp_path, fingerprint="f1")
        load_and_run(tmp_path, cache)
        for entry in (tmp_path / CACHE_DIR_NAME / "asts").iterdir():
            entry.write_bytes(b"garbage")
        warm = LintCache(tmp_path, fingerprint="f1")
        project, findings = load_and_run(tmp_path, warm)
        assert warm.ast_hits == 0
        assert len(project.files) == len(FILES) + 2  # __init__.py files


class TestFindingsCache:
    def test_warm_run_reuses_every_rule_result(self, tmp_path):
        write_tree(tmp_path, FILES)
        cold = LintCache(tmp_path, fingerprint="f1")
        _, cold_findings = load_and_run(tmp_path, cold)
        assert cold.finding_hits == 0

        warm = LintCache(tmp_path, fingerprint="f1")
        _, warm_findings = load_and_run(tmp_path, warm)
        assert warm.finding_misses == 0
        assert warm.finding_hits > 0
        assert warm_findings == cold_findings

    def test_unused_import_findings_survive_the_cache(self, tmp_path):
        """Cached findings deserialize identically (KL006 has some)."""
        write_tree(tmp_path, FILES)
        cold = LintCache(tmp_path, fingerprint="f1")
        _, cold_findings = load_and_run(tmp_path, cold)
        kl006 = [f for f in cold_findings if f.rule == "KL006"]
        assert {f.key for f in kl006} == {"sys"}

        warm = LintCache(tmp_path, fingerprint="f1")
        _, warm_findings = load_and_run(tmp_path, warm)
        assert [f for f in warm_findings if f.rule == "KL006"] == kl006

    def test_content_change_reruns_program_rules(self, tmp_path):
        tree = write_tree(tmp_path, FILES)
        cache = LintCache(tmp_path, fingerprint="f1")
        load_and_run(tmp_path, cache)

        gadget = tree / "core" / "gadget.py"
        gadget.write_text(
            gadget.read_text(encoding="utf-8").replace(
                "import sys\n", ""
            ),
            encoding="utf-8",
        )
        warm = LintCache(tmp_path, fingerprint="f1")
        _, findings = load_and_run(tmp_path, warm)
        # The edited file's file-scoped rules re-ran; the finding is gone.
        assert [f for f in findings if f.rule == "KL006"] == []
        # Program-scoped rules re-ran too (tree digest changed).
        assert warm.finding_misses > 0

    def test_analysis_code_change_invalidates_findings(self, tmp_path):
        """A different fingerprint (edited rule code) is a cold start."""
        write_tree(tmp_path, FILES)
        cold = LintCache(tmp_path, fingerprint="f1")
        load_and_run(tmp_path, cold)

        changed = LintCache(tmp_path, fingerprint="f2")
        load_and_run(tmp_path, changed)
        assert changed.finding_hits == 0
        # ASTs do not depend on rule code; they still hit.
        assert changed.ast_misses == 0


class TestCliCacheIntegration:
    def test_cli_warm_run_is_faster_and_identical(self, tmp_path, capsys):
        tree = write_tree(tmp_path, FILES)
        argv = ["--root", str(tmp_path), "--no-baseline", str(tree)]

        start = time.perf_counter()
        cold_code = main(argv)
        cold_s = time.perf_counter() - start
        cold_out = capsys.readouterr().out

        start = time.perf_counter()
        warm_code = main(argv)
        warm_s = time.perf_counter() - start
        warm_out = capsys.readouterr().out

        assert (cold_code, cold_out) == (warm_code, warm_out)
        assert (tmp_path / CACHE_DIR_NAME).is_dir()
        # Tiny tree, so just sanity-check the warm path is not slower by
        # much; the CI lint job asserts warm <= cold/2 on the real tree.
        assert warm_s < cold_s * 1.5

    def test_no_cache_flag_skips_the_cache_dir(self, tmp_path):
        tree = write_tree(tmp_path, FILES)
        main(
            ["--root", str(tmp_path), "--no-baseline", "--no-cache", str(tree)]
        )
        assert not (tmp_path / CACHE_DIR_NAME).exists()

    def test_cache_dir_is_never_linted(self, tmp_path, capsys):
        tree = write_tree(tmp_path, FILES)
        argv = ["--root", str(tmp_path), "--no-baseline", str(tree)]
        main(argv)
        capsys.readouterr()
        # Plant a syntax-broken python file inside the cache directory;
        # a scan that descended into it would emit KL000.
        bad = tmp_path / CACHE_DIR_NAME / "planted.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        code = main(["--root", str(tmp_path), "--no-baseline", str(tmp_path / "src")])
        out = capsys.readouterr().out
        assert "KL000" not in out
