"""Tests for the synchronous pub-sub bus."""

import pytest

from repro.eventbus.bus import DEADLETTER_TOPIC, DeadLetter, EventBus


@pytest.fixture
def bus():
    return EventBus()


class TestSubscribe:
    def test_exact_topic_delivery(self, bus):
        received = []
        bus.subscribe("topic.a", lambda e: received.append(e.payload))
        bus.publish("topic.a", 1)
        bus.publish("topic.b", 2)
        assert received == [1]

    def test_prefix_delivery(self, bus):
        received = []
        bus.subscribe_prefix("topic.", lambda e: received.append(e.topic))
        bus.publish("topic.a")
        bus.publish("topic.b")
        bus.publish("other")
        assert received == ["topic.a", "topic.b"]

    def test_publish_returns_handler_count(self, bus):
        bus.subscribe("t", lambda e: None)
        bus.subscribe("t", lambda e: None)
        bus.subscribe_prefix("t", lambda e: None)
        assert bus.publish("t") == 3

    def test_rejects_empty_topic(self, bus):
        with pytest.raises(ValueError):
            bus.subscribe("", lambda e: None)
        with pytest.raises(ValueError):
            bus.subscribe_prefix("", lambda e: None)

    def test_delivery_order_is_subscription_order(self, bus):
        order = []
        bus.subscribe("t", lambda e: order.append("first"))
        bus.subscribe("t", lambda e: order.append("second"))
        bus.publish("t")
        assert order == ["first", "second"]


class TestUnsubscribe:
    def test_unsubscribed_handler_not_called(self, bus):
        received = []
        sub = bus.subscribe("t", lambda e: received.append(1))
        bus.unsubscribe(sub)
        bus.publish("t")
        assert received == []

    def test_unsubscribe_during_dispatch_is_safe(self, bus):
        received = []
        subs = {}

        def handler(event):
            received.append(1)
            bus.unsubscribe(subs["self"])

        subs["self"] = bus.subscribe("t", handler)
        bus.publish("t")
        bus.publish("t")
        assert received == [1]

    def test_unsubscribing_peer_mid_dispatch(self, bus):
        received = []
        subs = {}

        def first(event):
            received.append("first")
            bus.unsubscribe(subs["second"])

        subs["first"] = bus.subscribe("t", first)
        subs["second"] = bus.subscribe("t", lambda e: received.append("second"))
        bus.publish("t")
        assert received == ["first"]

    def test_subscribe_during_dispatch_does_not_fire_immediately(self, bus):
        received = []

        def handler(event):
            received.append("outer")
            bus.subscribe("t", lambda e: received.append("inner"))

        bus.subscribe("t", handler)
        bus.publish("t")
        assert received == ["outer"]
        # A fresh publish finds both handlers (handler re-registers each time).
        bus.publish("t")
        assert "inner" in received


class TestStats:
    def test_counters(self, bus):
        bus.subscribe("t", lambda e: None)
        bus.publish("t")
        bus.publish("t")
        bus.publish("unheard")
        assert bus.published_count == 3
        assert bus.delivered_count == 2
        assert bus.topic_counts() == {"t": 2, "unheard": 1}

    def test_subscriber_count(self, bus):
        bus.subscribe("t", lambda e: None)
        bus.subscribe_prefix("t", lambda e: None)
        assert bus.subscriber_count("t") == 2
        assert bus.subscriber_count() == 2
        assert bus.subscriber_count("other") == 0

    def test_nested_publish_from_handler(self, bus):
        received = []
        bus.subscribe("inner", lambda e: received.append("inner"))
        bus.subscribe("outer", lambda e: bus.publish("inner"))
        bus.publish("outer")
        assert received == ["inner"]


class TestExceptionSafety:
    def test_poisoned_middle_subscriber_does_not_block_later_ones(self, bus):
        """The regression this PR fixes: a raising handler used to abort
        the dispatch, silently skipping every later subscriber."""
        received = []

        def poisoned(event):
            raise RuntimeError("boom")

        bus.subscribe("t", lambda e: received.append("first"))
        bus.subscribe("t", poisoned)
        bus.subscribe("t", lambda e: received.append("third"))
        returned = bus.publish("t", "payload")
        assert received == ["first", "third"]
        assert returned == 2

    def test_delivered_stats_exact_under_failure(self, bus):
        bus.subscribe("t", lambda e: None)
        bus.subscribe("t", lambda e: (_ for _ in ()).throw(ValueError("bad")))
        bus.subscribe("t", lambda e: None)
        bus.publish("t")
        bus.publish("t")
        assert bus.delivered_count == 4  # 2 successes per publish
        assert bus.error_count == 2
        assert bus.error_counts() == {"t": 2}

    def test_failures_route_to_deadletter_topic(self, bus):
        dead = []
        bus.subscribe(DEADLETTER_TOPIC, lambda e: dead.append(e.payload))

        def poisoned(event):
            raise RuntimeError("boom")

        bus.subscribe("t", poisoned)
        bus.publish("t", {"k": 1})
        assert len(dead) == 1
        letter = dead[0]
        assert isinstance(letter, DeadLetter)
        assert letter.topic == "t"
        assert letter.event.payload == {"k": 1}
        assert isinstance(letter.error, RuntimeError)
        assert "poisoned" in letter.handler
        assert "boom" in letter.describe()

    def test_deadletter_handler_failures_do_not_recurse(self, bus):
        calls = []

        def bad_deadletter_handler(event):
            calls.append(event.topic)
            raise RuntimeError("the undertaker died too")

        bus.subscribe(DEADLETTER_TOPIC, bad_deadletter_handler)
        bus.subscribe("t", lambda e: (_ for _ in ()).throw(ValueError("bad")))
        bus.publish("t")
        # One dead letter dispatched, its own failure absorbed, no loop.
        assert calls == [DEADLETTER_TOPIC]
        assert bus.error_count == 2

    def test_unsubscribe_still_applied_after_handler_failure(self, bus):
        received = []
        subs = {}

        def failing_then_unsub(event):
            bus.unsubscribe(subs["self"])
            raise RuntimeError("boom")

        subs["self"] = bus.subscribe("t", failing_then_unsub)
        bus.subscribe("t", lambda e: received.append(1))
        bus.publish("t")
        bus.publish("t")
        assert received == [1, 1]
        assert bus.error_count == 1
