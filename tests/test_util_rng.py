"""Tests for seeded randomness."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import HashedStream, SeededRng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_label_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "b", "a")

    def test_result_is_63_bit(self):
        assert 0 <= derive_seed(7, "x") < 2**63


class TestSeededRng:
    def test_same_seed_same_stream(self):
        first = [SeededRng(5).uniform() for _ in range(5)]
        second = [SeededRng(5).uniform() for _ in range(5)]
        assert first == second

    def test_substreams_are_independent(self):
        root = SeededRng(5)
        a = root.substream("a").uniform()
        b = root.substream("b").uniform()
        assert a != b

    def test_substream_insensitive_to_sibling_consumption(self):
        root1 = SeededRng(5)
        root1.uniform()  # consume from the root
        root2 = SeededRng(5)
        assert root1.substream("x").uniform() == root2.substream("x").uniform()

    def test_integer_bounds_inclusive(self):
        rng = SeededRng(1)
        values = {rng.integer(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_integer_rejects_empty_range(self):
        with pytest.raises(ValueError):
            SeededRng(1).integer(5, 4)

    def test_chance_extremes(self):
        rng = SeededRng(1)
        assert not any(rng.chance(0.0) for _ in range(50))
        assert all(rng.chance(1.0) for _ in range(50))

    def test_chance_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            SeededRng(1).chance(1.5)

    def test_choice_and_sample(self):
        rng = SeededRng(2)
        items = ["a", "b", "c", "d"]
        assert rng.choice(items) in items
        sampled = rng.sample(items, 3)
        assert len(sampled) == len(set(sampled)) == 3

    def test_choice_rejects_empty(self):
        with pytest.raises(ValueError):
            SeededRng(1).choice([])

    def test_sample_rejects_oversized(self):
        with pytest.raises(ValueError):
            SeededRng(1).sample([1, 2], 3)

    def test_shuffled_is_permutation(self):
        rng = SeededRng(3)
        items = list(range(20))
        assert sorted(rng.shuffled(items)) == items

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            SeededRng(1).exponential(0.0)

    def test_jitter_bounds(self):
        rng = SeededRng(4)
        for _ in range(100):
            value = rng.jitter(10.0, 0.2)
            assert 8.0 <= value <= 12.0

    def test_jitter_rejects_negative_fraction(self):
        with pytest.raises(ValueError):
            SeededRng(1).jitter(1.0, -0.1)


@given(st.integers(min_value=0, max_value=2**31), st.text(max_size=10))
def test_derive_seed_always_in_range(seed, label):
    assert 0 <= derive_seed(seed, label) < 2**63


class TestHashedStream:
    """Order-independent keyed draws for the delivery fast path."""

    def test_pure_function_of_key(self):
        stream = HashedStream(7, "pairs")
        assert stream.sample("a", "b", 1).uniform() == stream.sample("a", "b", 1).uniform()

    def test_key_sensitivity(self):
        stream = HashedStream(7, "pairs")
        baseline = stream.sample("a", "b", 1).uniform()
        assert stream.sample("a", "b", 2).uniform() != baseline
        assert stream.sample("b", "a", 1).uniform() != baseline
        assert stream.sample("a", "c", 1).uniform() != baseline

    def test_seed_and_label_sensitivity(self):
        assert (
            HashedStream(7, "pairs").sample("k").uniform()
            != HashedStream(8, "pairs").sample("k").uniform()
        )
        assert (
            HashedStream(7, "a").sample("k").uniform()
            != HashedStream(7, "b").sample("k").uniform()
        )

    def test_order_independence(self):
        """Draw order and draw *set* cannot perturb other keys."""
        stream = HashedStream(7, "pairs")
        forward = [stream.sample("k", index).uniform() for index in range(10)]
        shuffled_stream = HashedStream(7, "pairs")
        backward = [
            shuffled_stream.sample("k", index).uniform()
            for index in reversed(range(10))
        ]
        assert forward == list(reversed(backward))
        sparse = HashedStream(7, "pairs")
        assert sparse.sample("k", 5).uniform() == forward[5]

    def test_uniform_bounds_and_distribution(self):
        stream = HashedStream(3, "u")
        values = [stream.sample(index).uniform(10.0, 20.0) for index in range(2000)]
        assert all(10.0 <= value < 20.0 for value in values)
        mean = sum(values) / len(values)
        assert 14.5 < mean < 15.5

    def test_normal_moments(self):
        stream = HashedStream(3, "n")
        values = [stream.sample(index).normal(5.0, 2.0) for index in range(4000)]
        mean = sum(values) / len(values)
        variance = sum((value - mean) ** 2 for value in values) / len(values)
        assert abs(mean - 5.0) < 0.15
        assert 3.4 < variance < 4.6

    def test_chance_rate_and_validation(self):
        stream = HashedStream(3, "c")
        hits = sum(stream.sample(index).chance(0.25) for index in range(4000))
        assert 850 < hits < 1150
        with pytest.raises(ValueError):
            stream.sample(0).chance(1.5)

    def test_draw_budget_exhaustion(self):
        draws = HashedStream(3, "b").sample("k")
        for _ in range(4):
            draws.uniform()
        with pytest.raises(RuntimeError):
            draws.uniform()

    def test_one_shot_conveniences(self):
        stream = HashedStream(3, "s")
        assert stream.uniform(("k", 1)) == stream.sample("k", 1).uniform()
        assert stream.normal(("k", 1)) == stream.sample("k", 1).normal()
        assert stream.chance(("k", 1), 0.5) == stream.sample("k", 1).chance(0.5)
