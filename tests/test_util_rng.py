"""Tests for seeded randomness."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import (
    DRAWS_PER_DIGEST,
    HashedStream,
    SeededRng,
    derive_seed,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_label_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "b", "a")

    def test_result_is_63_bit(self):
        assert 0 <= derive_seed(7, "x") < 2**63


class TestSeededRng:
    def test_same_seed_same_stream(self):
        first = [SeededRng(5).uniform() for _ in range(5)]
        second = [SeededRng(5).uniform() for _ in range(5)]
        assert first == second

    def test_substreams_are_independent(self):
        root = SeededRng(5)
        a = root.substream("a").uniform()
        b = root.substream("b").uniform()
        assert a != b

    def test_substream_insensitive_to_sibling_consumption(self):
        root1 = SeededRng(5)
        root1.uniform()  # consume from the root
        root2 = SeededRng(5)
        assert root1.substream("x").uniform() == root2.substream("x").uniform()

    def test_integer_bounds_inclusive(self):
        rng = SeededRng(1)
        values = {rng.integer(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_integer_rejects_empty_range(self):
        with pytest.raises(ValueError):
            SeededRng(1).integer(5, 4)

    def test_chance_extremes(self):
        rng = SeededRng(1)
        assert not any(rng.chance(0.0) for _ in range(50))
        assert all(rng.chance(1.0) for _ in range(50))

    def test_chance_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            SeededRng(1).chance(1.5)

    def test_choice_and_sample(self):
        rng = SeededRng(2)
        items = ["a", "b", "c", "d"]
        assert rng.choice(items) in items
        sampled = rng.sample(items, 3)
        assert len(sampled) == len(set(sampled)) == 3

    def test_choice_rejects_empty(self):
        with pytest.raises(ValueError):
            SeededRng(1).choice([])

    def test_sample_rejects_oversized(self):
        with pytest.raises(ValueError):
            SeededRng(1).sample([1, 2], 3)

    def test_shuffled_is_permutation(self):
        rng = SeededRng(3)
        items = list(range(20))
        assert sorted(rng.shuffled(items)) == items

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            SeededRng(1).exponential(0.0)

    def test_jitter_bounds(self):
        rng = SeededRng(4)
        for _ in range(100):
            value = rng.jitter(10.0, 0.2)
            assert 8.0 <= value <= 12.0

    def test_jitter_rejects_negative_fraction(self):
        with pytest.raises(ValueError):
            SeededRng(1).jitter(1.0, -0.1)


@given(st.integers(min_value=0, max_value=2**31), st.text(max_size=10))
def test_derive_seed_always_in_range(seed, label):
    assert 0 <= derive_seed(seed, label) < 2**63


class TestHashedStream:
    """Order-independent keyed draws for the delivery fast path."""

    def test_pure_function_of_key(self):
        stream = HashedStream(7, "pairs")
        assert stream.sample("a", "b", 1).uniform() == stream.sample("a", "b", 1).uniform()

    def test_key_sensitivity(self):
        stream = HashedStream(7, "pairs")
        baseline = stream.sample("a", "b", 1).uniform()
        assert stream.sample("a", "b", 2).uniform() != baseline
        assert stream.sample("b", "a", 1).uniform() != baseline
        assert stream.sample("a", "c", 1).uniform() != baseline

    def test_seed_and_label_sensitivity(self):
        assert (
            HashedStream(7, "pairs").sample("k").uniform()
            != HashedStream(8, "pairs").sample("k").uniform()
        )
        assert (
            HashedStream(7, "a").sample("k").uniform()
            != HashedStream(7, "b").sample("k").uniform()
        )

    def test_order_independence(self):
        """Draw order and draw *set* cannot perturb other keys."""
        stream = HashedStream(7, "pairs")
        forward = [stream.sample("k", index).uniform() for index in range(10)]
        shuffled_stream = HashedStream(7, "pairs")
        backward = [
            shuffled_stream.sample("k", index).uniform()
            for index in reversed(range(10))
        ]
        assert forward == list(reversed(backward))
        sparse = HashedStream(7, "pairs")
        assert sparse.sample("k", 5).uniform() == forward[5]

    def test_uniform_bounds_and_distribution(self):
        stream = HashedStream(3, "u")
        values = [stream.sample(index).uniform(10.0, 20.0) for index in range(2000)]
        assert all(10.0 <= value < 20.0 for value in values)
        mean = sum(values) / len(values)
        assert 14.5 < mean < 15.5

    def test_normal_moments(self):
        stream = HashedStream(3, "n")
        values = [stream.sample(index).normal(5.0, 2.0) for index in range(4000)]
        mean = sum(values) / len(values)
        variance = sum((value - mean) ** 2 for value in values) / len(values)
        assert abs(mean - 5.0) < 0.15
        assert 3.4 < variance < 4.6

    def test_chance_rate_and_validation(self):
        stream = HashedStream(3, "c")
        hits = sum(stream.sample(index).chance(0.25) for index in range(4000))
        assert 850 < hits < 1150
        with pytest.raises(ValueError):
            stream.sample(0).chance(1.5)

    def test_draw_budget_exhaustion(self):
        draws = HashedStream(3, "b").sample("k")
        for _ in range(4):
            draws.uniform()
        with pytest.raises(RuntimeError):
            draws.uniform()

    def test_one_shot_conveniences(self):
        stream = HashedStream(3, "s")
        assert stream.uniform(("k", 1)) == stream.sample("k", 1).uniform()
        assert stream.normal(("k", 1)) == stream.sample("k", 1).normal()
        assert stream.chance(("k", 1), 0.5) == stream.sample("k", 1).chance(0.5)


class TestHashedBlock:
    def test_block_rows_identical_to_sample(self):
        """Row i of a block is byte-identical to sample(*common, tails[i])."""
        stream = HashedStream(11, "pairs")
        tails = [f"recv-{index}" for index in range(17)]
        block = stream.sample_block(("sender-3", 42), tails)
        assert len(block) == len(tails)
        for index, tail in enumerate(tails):
            scalar = stream.sample("sender-3", 42, tail)
            row = block.draws(index)
            for _ in range(DRAWS_PER_DIGEST):
                assert row.uniform() == scalar.uniform()

    def test_uniform_columns_match_scalar_draw_order(self):
        """uniforms(j) is the j-th scalar draw of every row, bit for bit."""
        stream = HashedStream(11, "pairs")
        block = stream.sample_block(("s", 1), [str(index) for index in range(32)])
        columns = [block.uniforms(j) for j in range(DRAWS_PER_DIGEST)]
        for index in range(32):
            scalar = block.draws(index)
            for j in range(DRAWS_PER_DIGEST):
                assert columns[j][index] == scalar.uniform()

    def test_uniforms_range_and_bounds(self):
        stream = HashedStream(11, "u")
        block = stream.sample_block(("k",), list(range(100)))
        scaled = block.uniforms(0, 10.0, 20.0)
        assert ((scaled >= 10.0) & (scaled < 20.0)).all()
        with pytest.raises(ValueError):
            block.uniforms(DRAWS_PER_DIGEST)
        with pytest.raises(ValueError):
            block.uniforms(-1)

    def test_empty_block(self):
        block = HashedStream(11, "e").sample_block(("k",), [])
        assert len(block) == 0
        assert block.uniforms(0).shape == (0,)

    def test_key_parts_are_type_tagged(self):
        """"1" and 1 used to collide into the same digest; no longer."""
        stream = HashedStream(11, "tags")
        assert stream.sample("1").uniform() != stream.sample(1).uniform()
        # The tag also prevents boundary ambiguity across parts.
        assert stream.sample("a", 12).uniform() != stream.sample("a", "12").uniform()

    def test_key_parts_reject_other_types(self):
        stream = HashedStream(11, "tags")
        with pytest.raises(TypeError):
            stream.sample(1.5)
        with pytest.raises(TypeError):
            stream.sample_block((1.5,), ["x"])

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        common=st.lists(
            st.one_of(st.text(max_size=8), st.integers(-1000, 1000)),
            max_size=3,
        ),
        tails=st.lists(
            st.one_of(st.text(max_size=8), st.integers(-1000, 1000)),
            min_size=1,
            max_size=8,
        ),
    )
    def test_block_vs_scalar_property(self, seed, common, tails):
        stream = HashedStream(seed, "prop")
        block = stream.sample_block(tuple(common), tails)
        for index, tail in enumerate(tails):
            assert (
                block.draws(index).uniform()
                == stream.sample(*common, tail).uniform()
            )
