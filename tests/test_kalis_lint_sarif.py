"""SARIF 2.1.0 output: structure, determinism, and the CLI surface."""

import json
import textwrap
from pathlib import Path

from repro.analysis.cli import main
from repro.analysis.findings import Finding, Severity
from repro.analysis.sarif import SARIF_VERSION, render_sarif

ROOT = Path(__file__).resolve().parent.parent


def _finding(rule="KL001", line=3, key="stable-key", severity=Severity.ERROR):
    return Finding(
        rule=rule,
        severity=severity,
        path="src/repro/example.py",
        line=line,
        message="something crossed a line",
        key=key,
    )


class TestRenderSarif:
    def test_envelope_shape(self):
        log = json.loads(render_sarif([_finding()]))
        assert log["version"] == SARIF_VERSION
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "kalis-lint"
        (result,) = run["results"]
        assert result["ruleId"] == "KL001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/example.py"
        assert location["region"]["startLine"] == 3

    def test_rules_metadata_covers_registry_and_pseudo_rules(self):
        log = json.loads(render_sarif([]))
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        ids = [rule["id"] for rule in rules]
        assert ids == sorted(ids)
        for expected in ("KL000", "KL001", "KL099", "KL301", "KL306"):
            assert expected in ids
        assert log["runs"][0]["results"] == []

    def test_rule_index_points_at_the_descriptor(self):
        log = json.loads(render_sarif([_finding(rule="KL301")]))
        run = log["runs"][0]
        (result,) = run["results"]
        descriptor = run["tool"]["driver"]["rules"][result["ruleIndex"]]
        assert descriptor["id"] == "KL301"

    def test_fingerprint_matches_baseline_identity(self):
        log = json.loads(render_sarif([_finding(key="the-key")]))
        (result,) = log["runs"][0]["results"]
        assert result["partialFingerprints"]["kalisLintKey/v1"] == (
            "KL001:src/repro/example.py:the-key"
        )

    def test_warning_level_and_zero_line_clamp(self):
        log = json.loads(
            render_sarif([_finding(line=0, severity=Severity.WARNING)])
        )
        (result,) = log["runs"][0]["results"]
        assert result["level"] == "warning"
        assert (
            result["locations"][0]["physicalLocation"]["region"]["startLine"]
            == 1
        )

    def test_rendering_is_deterministic(self):
        findings = [_finding(), _finding(rule="KL306", key="other")]
        assert render_sarif(findings) == render_sarif(findings)


class TestCliSarif:
    def test_format_sarif_reports_planted_finding(self, tmp_path, capsys):
        source = tmp_path / "src" / "repro" / "bad.py"
        source.parent.mkdir(parents=True)
        (source.parent / "__init__.py").write_text("", encoding="utf-8")
        source.write_text(
            textwrap.dedent(
                """
                def record_dedup_key(record):
                    return (record["site"],)

                def record_sort_key(record):
                    return (record["t"], record["site"])
                """
            ),
            encoding="utf-8",
        )
        code = main(
            [
                "--root",
                str(tmp_path),
                "--no-baseline",
                "--no-cache",
                "--select",
                "KL306",
                "--format",
                "sarif",
                str(tmp_path / "src" / "repro"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        log = json.loads(out)
        (result,) = log["runs"][0]["results"]
        assert result["ruleId"] == "KL306"
        assert "record_sort_key.t" in (
            result["partialFingerprints"]["kalisLintKey/v1"]
        )

    def test_clean_tree_renders_empty_results(self, capsys):
        code = main(
            [
                "--root",
                str(ROOT),
                "--baseline",
                str(ROOT / "kalis-lint.baseline"),
                "--select",
                "KL306",
                "--no-cache",
                "--format",
                "sarif",
                str(ROOT / "src" / "repro" / "siem"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert json.loads(out)["runs"][0]["results"] == []
