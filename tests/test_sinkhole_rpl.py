"""Tests for the RPL flavour of the sinkhole attack and its detection."""

import pytest

from repro.attacks.sinkhole import RplSinkholeNode
from repro.core.kalis import KalisNode
from repro.net.packets.rpl import ROOT_RANK
from repro.proto.rpl import RplNode
from repro.sim.engine import Simulator
from repro.util.ids import NodeId


@pytest.fixture
def rpl_world():
    """An RPL DODAG with a sinkhole lying about its rank."""
    sim = Simulator(seed=121)
    root = sim.add_node(
        RplNode(NodeId("border-router"), (0.0, 0.0), is_root=True,
                dio_interval=5.0)
    )
    # A chain: node-0 is a direct child (rank 512); node-1 and node-2
    # sit deeper (ranks 768 / 1024) — the victims a forged root rank
    # can actually out-bid.
    honest = [
        sim.add_node(
            RplNode(NodeId(f"node-{index}"), (25.0 * (index + 1), 0.0),
                    dio_interval=5.0, data_interval=4.0)
        )
        for index in range(3)
    ]
    attacker = sim.add_node(
        RplSinkholeNode(NodeId("sinker"), (55.0, 10.0), dio_interval=3.0)
    )
    return sim, root, honest, attacker


class TestRplSinkholeAttack:
    def test_attacker_attracts_parents(self, rpl_world):
        sim, root, honest, attacker = rpl_world
        sim.run(60.0)
        # Honest nodes adopted the liar: its advertised root rank beats
        # any genuine route.
        adopted = [node for node in honest if node.parent == attacker.node_id]
        assert adopted, "someone must have re-parented onto the sinkhole"

    def test_attracted_traffic_is_swallowed(self, rpl_world):
        sim, root, honest, attacker = rpl_world
        sim.run(90.0)
        assert attacker.swallowed_count > 0
        assert len(attacker.log) == attacker.swallowed_count
        # Once a victim re-parents onto the sinkhole its samples stop
        # reaching the root; only pre-takeover deliveries exist.
        victims = {n.node_id for n in honest if n.parent == attacker.node_id}
        assert victims
        takeover_at = attacker.start_delay + 2 * attacker.dio_interval
        for origin, timestamp in root.collected:
            if origin in victims:
                assert timestamp <= takeover_at + 5.0

    def test_kalis_detects_the_forged_root_claim(self, rpl_world):
        sim, root, honest, attacker = rpl_world
        kalis = KalisNode(NodeId("kalis-1"))
        # Positioned to hear both the honest root and the attacker.
        kalis.deploy(sim, position=(28.0, 5.0))
        sim.run(90.0)
        sinkhole_alerts = kalis.alerts.by_attack("sinkhole")
        assert sinkhole_alerts
        assert sinkhole_alerts[0].suspects == (attacker.node_id,)
        assert sinkhole_alerts[0].details["protocol"] == "rpl"
        assert sinkhole_alerts[0].details["established_root"] == "border-router"

    def test_attacker_rank_is_the_roots(self):
        attacker = RplSinkholeNode(NodeId("sinker"), (0.0, 0.0))
        assert attacker.rank == ROOT_RANK
        assert attacker.advertised_rank() == ROOT_RANK
