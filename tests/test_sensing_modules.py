"""Tests for the three sensing modules (Topology, Traffic, Mobility)."""

import pytest

from repro.core.datastore import DataStore
from repro.core.knowledge import KnowledgeBase
from repro.core.modules.base import ModuleContext
from repro.core.modules.sensing.mobility import MobilityAwarenessModule
from repro.core.modules.sensing.topology import TopologyDiscoveryModule
from repro.core.modules.sensing.traffic import TrafficStatsModule
from repro.eventbus.bus import EventBus
from repro.net.packets.base import Medium
from repro.net.packets.ieee802154 import Ieee802154Frame
from repro.net.packets.rpl import ROOT_RANK, RplDio
from repro.net.packets.sixlowpan import SixLowpanPacket
from repro.net.packets.wifi import WifiFrame
from repro.net.packets.zigbee import ZigbeePacket
from repro.sim.capture import Capture
from repro.util.ids import NodeId
from tests.conftest import (
    ctp_beacon_capture,
    ctp_data_capture,
    wifi_icmp_capture,
    wifi_tcp_capture,
)

A, B, C = NodeId("a"), NodeId("b"), NodeId("c")


def bind(module):
    bus = EventBus()
    kb = KnowledgeBase(NodeId("kalis-1"), bus)
    module.bind(ModuleContext(kb=kb, datastore=DataStore(), bus=bus,
                              node_id=NodeId("kalis-1")))
    module.active = True
    return kb


class TestTopologyDiscovery:
    def test_ctp_thl_marks_multihop(self):
        module = TopologyDiscoveryModule()
        kb = bind(module)
        module.handle(ctp_data_capture(A, B, origin=C, seqno=1, timestamp=0.0, thl=1))
        assert kb.get("Multihop.802154", bool) is True
        assert kb.get("Multihop", bool) is True

    def test_ctp_etx_two_marks_multihop(self):
        module = TopologyDiscoveryModule()
        kb = bind(module)
        module.handle(ctp_beacon_capture(A, parent=B, etx=2, timestamp=0.0))
        assert kb.get("Multihop.802154", bool) is True

    def test_unjoined_beacon_not_multihop_evidence(self):
        module = TopologyDiscoveryModule()
        kb = bind(module)
        module.handle(ctp_beacon_capture(A, parent=A, etx=0xFFFF, timestamp=0.0))
        assert kb.get("Multihop.802154", bool) is None

    def test_zigbee_forwarded_frame_marks_multihop(self):
        module = TopologyDiscoveryModule()
        kb = bind(module)
        frame = Ieee802154Frame(
            pan_id=1, seq=1, src=B,  # transmitter differs from originator
            dst=C, payload=ZigbeePacket(src=A, dst=C, seq=1),
        )
        module.handle(Capture(packet=frame, timestamp=0.0,
                              medium=Medium.IEEE_802_15_4, rssi=-50))
        assert kb.get("Multihop.802154", bool) is True

    def test_hub_radius1_frames_are_not_evidence(self):
        module = TopologyDiscoveryModule(params={"minCaptures": 3})
        kb = bind(module)
        for i in range(3):
            frame = Ieee802154Frame(
                pan_id=1, seq=i, src=A, dst=B,
                payload=ZigbeePacket(src=A, dst=B, seq=i, radius=1),
            )
            module.handle(Capture(packet=frame, timestamp=float(i),
                                  medium=Medium.IEEE_802_15_4, rssi=-50))
        assert kb.get("Multihop.802154", bool) is False  # concluded single-hop

    def test_sixlowpan_decremented_hop_limit(self):
        module = TopologyDiscoveryModule()
        kb = bind(module)
        frame = Ieee802154Frame(
            pan_id=1, seq=1, src=A, dst=B,
            payload=SixLowpanPacket(src=C, dst=B, hop_limit=63),
        )
        module.handle(Capture(packet=frame, timestamp=0.0,
                              medium=Medium.IEEE_802_15_4, rssi=-50))
        assert kb.get("Multihop.802154", bool) is True

    def test_rpl_nonroot_rank(self):
        module = TopologyDiscoveryModule()
        kb = bind(module)
        frame = Ieee802154Frame(
            pan_id=1, seq=1, src=A, dst=B,
            payload=SixLowpanPacket(
                src=A, dst=B, payload=RplDio(dodag_id="d", rank=ROOT_RANK + 256)
            ),
        )
        module.handle(Capture(packet=frame, timestamp=0.0,
                              medium=Medium.IEEE_802_15_4, rssi=-50))
        assert kb.get("Multihop.802154", bool) is True

    def test_wifi_single_hop_concluded_after_min_captures(self):
        module = TopologyDiscoveryModule(params={"minCaptures": 5})
        kb = bind(module)
        for i in range(4):
            module.handle(wifi_icmp_capture(A, B, "10.23.0.1", float(i)))
        assert kb.get("Multihop.wifi", bool) is None  # undecided
        module.handle(wifi_icmp_capture(A, B, "10.23.0.1", 5.0))
        assert kb.get("Multihop.wifi", bool) is False

    def test_wifi_mesh_frame_marks_multihop(self):
        module = TopologyDiscoveryModule()
        kb = bind(module)
        frame = WifiFrame(src=A, dst=B, mesh_src=C, mesh_dst=B)
        module.handle(Capture(packet=frame, timestamp=0.0,
                              medium=Medium.WIFI, rssi=-50))
        assert kb.get("Multihop.wifi", bool) is True

    def test_evidence_overrides_earlier_single_hop_verdict(self):
        module = TopologyDiscoveryModule(params={"minCaptures": 2})
        kb = bind(module)
        for i in range(3):
            module.handle(wifi_icmp_capture(A, B, "10.23.0.1", float(i)))
        assert kb.get("Multihop.wifi", bool) is False
        frame = WifiFrame(src=A, dst=B, mesh_src=C, mesh_dst=B)
        module.handle(Capture(packet=frame, timestamp=5.0,
                              medium=Medium.WIFI, rssi=-50))
        assert kb.get("Multihop.wifi", bool) is True

    def test_monitored_nodes_counts_distinct_sources(self):
        module = TopologyDiscoveryModule()
        kb = bind(module)
        module.handle(wifi_icmp_capture(A, B, "x", 0.0))
        module.handle(wifi_icmp_capture(B, A, "x", 1.0))
        module.handle(wifi_icmp_capture(A, C, "x", 2.0))
        assert kb.get("MonitoredNodes", int) == 2


class TestTrafficStats:
    def test_global_rate_knowgget(self):
        module = TrafficStatsModule(params={"window": 5.0})
        kb = bind(module)
        for i in range(10):
            module.handle(wifi_tcp_capture(A, B, "10.23.0.1", i * 0.5))
        assert kb.get("TrafficFrequency.TCPSYN", float) == pytest.approx(2.0)

    def test_per_sender_and_receiver_rates(self):
        module = TrafficStatsModule(params={"window": 5.0})
        kb = bind(module)
        for i in range(5):
            module.handle(wifi_icmp_capture(A, B, "10.23.0.1", i * 1.0))
        assert kb.get("TrafficOut.ICMPReply", float, entity=A) == 1.0
        assert kb.get("TrafficIn.ICMPReply", float, entity=B) == 1.0
        assert kb.get("TrafficOut.ICMPReply", float, entity=B) is None

    def test_rate_decays_as_window_slides(self):
        module = TrafficStatsModule(params={"window": 5.0})
        kb = bind(module)
        for i in range(5):
            module.handle(wifi_tcp_capture(A, B, "x", float(i)))
        peak = module.global_rate("TCPSYN")
        module.handle(wifi_tcp_capture(A, B, "x", 30.0))
        assert module.global_rate("TCPSYN") < peak

    def test_kind_separation(self):
        """TCP SYN and ACK are separate knowggets, as in Figure 5."""
        from repro.net.packets.tcp import TcpFlags

        module = TrafficStatsModule()
        kb = bind(module)
        module.handle(wifi_tcp_capture(A, B, "x", 0.0, flags=TcpFlags.SYN))
        module.handle(wifi_tcp_capture(A, B, "x", 0.1, flags=TcpFlags.ACK))
        assert kb.get("TrafficFrequency.TCPSYN", float) > 0
        assert kb.get("TrafficFrequency.TCPACK", float) > 0


class TestMobilityAwareness:
    @staticmethod
    def _feed(module, source, rssis, start=0.0, spacing=1.0):
        for index, rssi in enumerate(rssis):
            module.handle(
                wifi_icmp_capture(source, B, "10.23.0.9",
                                  start + index * spacing, rssi=rssi)
            )

    def test_static_network_declared_static(self):
        module = MobilityAwarenessModule()
        kb = bind(module)
        self._feed(module, A, [-60.0] * 10)
        assert kb.get("Mobility", bool) is False

    def test_signal_strength_knowggets_published(self):
        module = MobilityAwarenessModule()
        kb = bind(module)
        self._feed(module, A, [-60.0] * 6)
        assert kb.get("SignalStrength", int, entity=A) == -60

    def test_single_jumpy_node_is_not_network_mobility(self):
        """One identity's RSSI flapping = suspicious device, not mobility."""
        module = MobilityAwarenessModule()
        kb = bind(module)
        self._feed(module, A, [-60, -60, -60, -60, -60, -60,
                               -80, -60, -80, -60, -80, -60])
        assert kb.get("Mobility", bool) is False

    def test_two_moving_nodes_declare_mobility(self):
        module = MobilityAwarenessModule()
        kb = bind(module)
        drift_a = [-60 - 2.5 * i for i in range(14)]
        drift_b = [-55 - 2.5 * i for i in range(14)]
        for index in range(14):
            module.handle(wifi_icmp_capture(A, B, "x", index * 1.0,
                                            rssi=drift_a[index]))
            module.handle(wifi_icmp_capture(C, B, "x", index * 1.0 + 0.5,
                                            rssi=drift_b[index]))
        assert kb.get("Mobility", bool) is True
        assert module.is_mobile

    def test_quiet_period_returns_to_static(self):
        module = MobilityAwarenessModule(params={"quietPeriod": 5.0})
        kb = bind(module)
        drift_a = [-60 - 3.0 * i for i in range(10)]
        drift_b = [-55 - 3.0 * i for i in range(10)]
        for index in range(10):
            module.handle(wifi_icmp_capture(A, B, "x", index * 1.0, rssi=drift_a[index]))
            module.handle(wifi_icmp_capture(C, B, "x", index * 1.0 + 0.5, rssi=drift_b[index]))
        assert kb.get("Mobility", bool) is True
        # Everything settles; samples keep arriving at stable levels.
        self._feed(module, A, [-90.0] * 12, start=20.0)
        assert kb.get("Mobility", bool) is False
