"""Codec round-trip tests, including a hypothesis-driven stack builder."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.packets.base import Packet, RawPayload
from repro.net.packets.codec import (
    decode_packet,
    encode_packet,
    register_packet_type,
    registered_packet_types,
)
from repro.net.packets.ctp import CtpDataFrame
from repro.net.packets.icmp import IcmpMessage, IcmpType
from repro.net.packets.ieee802154 import FrameType, Ieee802154Frame
from repro.net.packets.ip import IpPacket
from repro.net.packets.tcp import TcpFlags, TcpSegment
from repro.net.packets.wifi import WifiFrame
from repro.net.packets.zigbee import ZigbeeKind, ZigbeePacket
from repro.util.ids import NodeId

A, B = NodeId("a"), NodeId("b")


class TestRoundTrips:
    def test_simple_frame(self):
        frame = Ieee802154Frame(pan_id=0x22, seq=9, src=A, dst=B,
                                frame_type=FrameType.ACK)
        assert decode_packet(encode_packet(frame)) == frame

    def test_nested_stack(self):
        frame = WifiFrame(
            src=A, dst=B,
            payload=IpPacket(
                src_ip="10.23.0.1", dst_ip="10.23.0.2",
                payload=TcpSegment(
                    sport=1, dport=2, flags=TcpFlags.SYN | TcpFlags.ACK, seq=5
                ),
            ),
        )
        assert decode_packet(encode_packet(frame)) == frame

    def test_flag_combination_roundtrip(self):
        segment = TcpSegment(
            sport=1, dport=2, flags=TcpFlags.FIN | TcpFlags.PSH | TcpFlags.ACK
        )
        assert decode_packet(encode_packet(segment)).flags == segment.flags

    def test_enum_roundtrip(self):
        message = IcmpMessage(icmp_type=IcmpType.DEST_UNREACHABLE)
        assert decode_packet(encode_packet(message)).icmp_type == message.icmp_type

    def test_encoded_form_is_json_safe(self):
        import json

        frame = Ieee802154Frame(
            pan_id=1, seq=0, src=A, dst=B,
            payload=CtpDataFrame(origin=A, seqno=3, thl=1),
        )
        text = json.dumps(encode_packet(frame))
        assert decode_packet(json.loads(text)) == frame


class TestErrors:
    def test_unknown_type_decode(self):
        with pytest.raises(ValueError):
            decode_packet({"__packet__": "NoSuchPacket"})

    def test_missing_discriminator(self):
        with pytest.raises(ValueError):
            decode_packet({"pan_id": 1})

    def test_unregistered_type_encode(self):
        class SecretPacket(Packet):
            pass

        with pytest.raises(TypeError):
            encode_packet(SecretPacket())

    def test_register_rejects_non_packet(self):
        with pytest.raises(TypeError):
            register_packet_type(dict)

    def test_registry_contains_all_public_types(self):
        names = set(registered_packet_types())
        for expected in (
            "Ieee802154Frame", "ZigbeePacket", "CtpDataFrame", "CtpRoutingFrame",
            "SixLowpanPacket", "RplDio", "RplDao", "RplDis", "IpPacket",
            "TcpSegment", "UdpDatagram", "IcmpMessage", "WifiFrame",
            "BlePacket", "RawPayload",
        ):
            assert expected in names


# -- property-based round trip over randomly generated stacks ---------------

node_ids = st.from_regex(r"[a-z][a-z0-9\-]{0,8}", fullmatch=True).map(NodeId)

inner_packets = st.one_of(
    st.builds(RawPayload, length=st.integers(0, 500)),
    st.builds(
        TcpSegment,
        sport=st.integers(0, 65535),
        dport=st.integers(0, 65535),
        flags=st.sampled_from(
            [TcpFlags.SYN, TcpFlags.ACK, TcpFlags.SYN | TcpFlags.ACK, TcpFlags.NONE]
        ),
        seq=st.integers(0, 2**31),
        data_length=st.integers(0, 1000),
    ),
    st.builds(
        IcmpMessage,
        icmp_type=st.sampled_from(list(IcmpType)),
        identifier=st.integers(0, 65535),
        sequence=st.integers(0, 65535),
    ),
    st.builds(
        CtpDataFrame,
        origin=node_ids,
        seqno=st.integers(0, 10000),
        thl=st.integers(0, 20),
        etx=st.integers(0, 100),
    ),
)

outer_packets = st.one_of(
    st.builds(
        Ieee802154Frame,
        pan_id=st.integers(0, 0xFFFF),
        seq=st.integers(0, 100000),
        src=node_ids,
        dst=node_ids,
        frame_type=st.sampled_from(list(FrameType)),
        payload=st.one_of(st.none(), inner_packets),
    ),
    st.builds(
        WifiFrame,
        src=node_ids,
        dst=node_ids,
        payload=st.one_of(st.none(), inner_packets),
    ),
    st.builds(
        ZigbeePacket,
        src=node_ids,
        dst=node_ids,
        seq=st.integers(0, 100000),
        radius=st.integers(0, 30),
        zigbee_kind=st.sampled_from(list(ZigbeeKind)),
    ),
)


@given(outer_packets)
def test_codec_roundtrip_property(packet):
    assert decode_packet(encode_packet(packet)) == packet


@given(outer_packets)
def test_size_is_nonnegative_and_consistent(packet):
    assert packet.size_bytes >= 0
    assert decode_packet(encode_packet(packet)).size_bytes == packet.size_bytes
