"""Tests for the traditional-IDS baseline."""


from repro.baselines.traditional import TraditionalIds
from repro.core.kalis import DEFAULT_DETECTION_MODULES, DEFAULT_SENSING_MODULES
from repro.util.ids import NodeId
from repro.util.rng import SeededRng
from tests.conftest import wifi_icmp_capture

T = NodeId("trad-1")


class TestTraditionalIds:
    def test_everything_active_always(self):
        trad = TraditionalIds(T)
        active = set(trad.active_module_names())
        assert active == set(DEFAULT_SENSING_MODULES) | set(
            DEFAULT_DETECTION_MODULES
        )

    def test_knowledge_changes_do_not_deactivate(self):
        trad = TraditionalIds(T)
        trad.kb.put("Multihop.wifi", True)  # would kill IcmpFloodModule in Kalis
        assert "IcmpFloodModule" in trad.active_module_names()

    def test_every_capture_costs_full_library(self):
        trad = TraditionalIds(T)
        module_count = len(trad.manager.modules())
        trad.feed(wifi_icmp_capture(NodeId("a"), NodeId("b"), "10.23.0.1", 0.0))
        # Work is at least one unit per module (weights vary >= 0.9).
        assert trad.cpu_work_units() >= module_count * 0.9

    def test_static_module_choice_excludes_alternative(self):
        rng = SeededRng(5)
        trad = TraditionalIds.with_static_module_choice(
            T,
            alternatives=["ReplicationStaticModule", "ReplicationMobileModule"],
            rng=rng,
        )
        registered = {m.NAME for m in trad.manager.modules()}
        chosen = trad.static_choice
        other = (
            {"ReplicationStaticModule", "ReplicationMobileModule"} - {chosen}
        ).pop()
        assert chosen in registered
        assert other not in registered

    def test_static_choice_varies_with_seed(self):
        choices = {
            TraditionalIds.with_static_module_choice(
                NodeId(f"t-{seed}"),
                alternatives=["ReplicationStaticModule", "ReplicationMobileModule"],
                rng=SeededRng(seed),
            ).static_choice
            for seed in range(12)
        }
        assert len(choices) == 2  # both alternatives occur over seeds
