"""Tests for the minimal TCP state machine."""


from repro.net.packets.tcp import TcpFlags, TcpSegment
from repro.proto.tcpstack import TcpStack


def handshake(client: TcpStack, server: TcpStack, data_bytes=0, **open_kwargs):
    """Drive a full client->server exchange; returns all segments seen."""
    segments = []
    syn = client.open("10.0.0.2", 443, data_bytes=data_bytes, **open_kwargs)
    segments.append(("c", syn))
    reply = server.on_segment("10.0.0.1", syn)
    pending = [("s", reply)]
    direction = {"c": ("10.0.0.1", server), "s": ("10.0.0.2", client)}
    while pending:
        origin, segment = pending.pop(0)
        if segment is None:
            continue
        segments.append((origin, segment))
        peer_ip, receiver = direction[origin]
        response = receiver.on_segment(peer_ip, segment)
        if response is not None:
            pending.append(("c" if origin == "s" else "s", response))
    return segments


class TestHandshake:
    def test_full_lifecycle_with_data(self):
        client, server = TcpStack(), TcpStack()
        server.listen(443)
        segments = handshake(client, server, data_bytes=100)
        flags = [s.flags for _, s in segments]
        assert TcpFlags.SYN in flags
        assert (TcpFlags.SYN | TcpFlags.ACK) in flags
        assert any(f & TcpFlags.PSH for f in flags)
        assert any(f & TcpFlags.FIN for f in flags)
        # Both sides established once, and both ended closed.
        assert client.established_count == 1
        assert server.established_count == 1
        assert client.connection_count() == 0
        assert server.connection_count() == 0

    def test_connection_without_data_stays_open(self):
        client, server = TcpStack(), TcpStack()
        server.listen(443)
        handshake(client, server, data_bytes=0)
        assert client.established_count == 1
        assert client.connection_count() == 1  # long-lived keepalive conn

    def test_closed_port_gets_rst(self):
        client, server = TcpStack(), TcpStack()
        syn = client.open("10.0.0.2", 8080)
        reply = server.on_segment("10.0.0.1", syn)
        assert reply.flags == TcpFlags.RST

    def test_half_open_counting(self):
        client, server = TcpStack(), TcpStack()
        server.listen(443)
        for _ in range(5):
            syn = client.open("10.0.0.2", 443)
            server.on_segment("10.0.0.1", syn)  # SYN-ACK never answered
        assert server.half_open_count() == 5
        assert server.established_count == 0

    def test_unknown_segment_ignored(self):
        server = TcpStack()
        stray = TcpSegment(sport=1234, dport=443, flags=TcpFlags.ACK)
        assert server.on_segment("10.0.0.9", stray) is None

    def test_ephemeral_ports_advance_and_wrap(self):
        client = TcpStack()
        first = client.allocate_port()
        second = client.allocate_port()
        assert second == first + 1
        client._next_ephemeral = 65535
        assert client.allocate_port() == 65535
        assert client.allocate_port() == 49152

    def test_sequence_numbers_distinct_per_connection(self):
        client = TcpStack()
        syn1 = client.open("10.0.0.2", 443)
        syn2 = client.open("10.0.0.2", 443)
        assert syn1.seq != syn2.seq
        assert syn1.sport != syn2.sport

    def test_data_is_acknowledged(self):
        client, server = TcpStack(), TcpStack()
        server.listen(443)
        segments = handshake(client, server, data_bytes=64)
        acks = [
            s for origin, s in segments
            if origin == "s" and s.flags == TcpFlags.ACK
        ]
        assert acks, "the server must acknowledge client data"
