"""Meta-level guarantees: versioning, determinism, documentation."""

import importlib
import inspect
import pkgutil
from pathlib import Path


import repro


class TestVersion:
    def test_dunder_version_matches_pyproject(self):
        pyproject = (
            Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
        ).read_text()
        assert f'version = "{repro.__version__}"' in pyproject


class TestDeterminism:
    def test_experiment_results_reproduce_bit_for_bit(self):
        """The DESIGN.md determinism promise, end to end: the same seed
        yields identical alerts, knowledge and scores."""
        from repro.experiments import icmp_flood_scenario

        first = icmp_flood_scenario.run(seed=19, symptom_instances=6)
        second = icmp_flood_scenario.run(seed=19, symptom_instances=6)
        for engine in first.runs:
            alerts_a = [a.to_dict() for a in first.runs[engine].alerts]
            alerts_b = [a.to_dict() for a in second.runs[engine].alerts]
            assert alerts_a == alerts_b
            assert (
                first.runs[engine].resources.work_units
                == second.runs[engine].resources.work_units
            )

    def test_different_seeds_differ(self):
        from repro.experiments import icmp_flood_scenario

        first = icmp_flood_scenario.run(
            seed=19, symptom_instances=6, engines=("kalis",)
        )
        second = icmp_flood_scenario.run(
            seed=20, symptom_instances=6, engines=("kalis",)
        )
        assert first.capture_count != second.capture_count or [
            a.timestamp for a in first.runs["kalis"].alerts
        ] != [a.timestamp for a in second.runs["kalis"].alerts]


def _walk_public_modules():
    for module_info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        if "__main__" in module_info.name:
            continue
        yield importlib.import_module(module_info.name)


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        undocumented = [
            module.__name__
            for module in _walk_public_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in _walk_public_modules():
            for name, member in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(member) or inspect.isfunction(member)):
                    continue
                if getattr(member, "__module__", None) != module.__name__:
                    continue  # re-export; documented at its home
                if not (member.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []

    def test_detection_modules_declare_their_attacks(self):
        from repro.core.kalis import DEFAULT_DETECTION_MODULES
        from repro.core.modules.registry import module_class

        for name in DEFAULT_DETECTION_MODULES:
            cls = module_class(name)
            assert cls.DETECTS, f"{name} declares no attacks"
            assert cls.REQUIREMENTS is not None
