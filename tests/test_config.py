"""Tests for the Figure 6 configuration-language parser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import (
    ConfigError,
    KalisConfig,
    ModuleSpec,
    StaticKnowgget,
    parse_config,
    render_config,
)
from repro.util.ids import NodeId

#: The paper's Figure 7 configuration file, verbatim.
FIGURE_7 = """
modules = {
  TopologyDetectionModule,
  TrafficStatsModule (
    activationThresh=1,
    detectionThresh=2
  )
}
knowggets = {
  mobility = false
}
"""


class TestPaperExample:
    def test_figure7_parses(self):
        config = parse_config(FIGURE_7)
        assert [m.name for m in config.modules] == [
            "TopologyDetectionModule",
            "TrafficStatsModule",
        ]
        stats = config.module_named("TrafficStatsModule")
        assert stats.params == {"activationThresh": 1, "detectionThresh": 2}
        assert config.knowggets == [StaticKnowgget(label="mobility", value=False)]

    def test_module_named_missing(self):
        assert parse_config(FIGURE_7).module_named("Nope") is None


class TestValues:
    def test_booleans(self):
        config = parse_config("knowggets = { a = true, b = FALSE }")
        assert config.knowggets[0].value is True
        assert config.knowggets[1].value is False

    def test_numbers(self):
        config = parse_config("knowggets = { a = 3, b = 2.5, c = -4 }")
        assert config.knowggets[0].value == 3
        assert config.knowggets[1].value == 2.5
        assert config.knowggets[2].value == -4

    def test_strings_and_identifiers(self):
        config = parse_config('knowggets = { a = "hello world", b = bareword }')
        assert config.knowggets[0].value == "hello world"
        assert config.knowggets[1].value == "bareword"

    def test_entity_suffix_on_knowgget_key(self):
        config = parse_config("knowggets = { SignalStrength@SensorA = -67 }")
        knowgget = config.knowggets[0]
        assert knowgget.label == "SignalStrength"
        assert knowgget.entity == NodeId("SensorA")
        assert knowgget.value == -67

    def test_comments_ignored(self):
        config = parse_config("# leading comment\nmodules = { A } # trailing\n")
        assert config.modules == [ModuleSpec(name="A")]

    def test_sections_in_either_order(self):
        config = parse_config("knowggets = { a = 1 }\nmodules = { B }")
        assert config.modules[0].name == "B"

    def test_empty_sections(self):
        config = parse_config("modules = { }\nknowggets = { }")
        assert config.modules == []
        assert config.knowggets == []


class TestErrors:
    def test_unknown_section(self):
        with pytest.raises(ConfigError, match="unknown section"):
            parse_config("stuff = { }")

    def test_duplicate_section(self):
        with pytest.raises(ConfigError, match="duplicate"):
            parse_config("modules = { A }\nmodules = { B }")

    def test_unterminated_string(self):
        with pytest.raises(ConfigError, match="unterminated"):
            parse_config('knowggets = { a = "oops }')

    def test_missing_equals(self):
        with pytest.raises(ConfigError):
            parse_config("modules { A }")

    def test_error_reports_line_number(self):
        try:
            parse_config("modules = {\n  A,\n  %bad\n}")
        except ConfigError as error:
            assert error.line == 3
        else:
            pytest.fail("expected ConfigError")

    def test_empty_entity_rejected(self):
        with pytest.raises(ConfigError, match="empty entity"):
            parse_config("knowggets = { label@ = 1 }")

    def test_dangling_param_list(self):
        with pytest.raises(ConfigError):
            parse_config("modules = { A(x=1 }")


class TestRender:
    def test_render_parses_back(self):
        config = parse_config(FIGURE_7)
        assert parse_config(render_config(config)) == config

    def test_render_quotes_strings_with_spaces(self):
        config = KalisConfig(
            knowggets=[StaticKnowgget(label="note", value="two words")]
        )
        assert '"two words"' in render_config(config)


module_names = st.from_regex(r"[A-Z][A-Za-z0-9]{0,12}", fullmatch=True)
param_values = st.one_of(
    st.booleans(),
    st.integers(-1000, 1000),
    # Bareword strings; 'true'/'false' would parse back as booleans.
    st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
        lambda v: v not in ("true", "false")
    ),
)
module_specs = st.builds(
    ModuleSpec,
    name=module_names,
    params=st.dictionaries(
        st.from_regex(r"[a-z][A-Za-z0-9]{0,10}", fullmatch=True),
        param_values,
        max_size=4,
    ),
)
knowgget_specs = st.builds(
    StaticKnowgget,
    label=st.from_regex(r"[A-Za-z][A-Za-z0-9_.]{0,12}", fullmatch=True).filter(
        lambda l: not l.lower() in ("true", "false") and not l.endswith(".")
    ),
    value=param_values,
    entity=st.one_of(
        st.none(), st.from_regex(r"[A-Za-z0-9][A-Za-z0-9\-]{0,6}", fullmatch=True).map(NodeId)
    ),
)


@given(
    modules=st.lists(module_specs, max_size=4),
    knowggets=st.lists(knowgget_specs, max_size=4),
)
def test_render_parse_roundtrip_property(modules, knowggets):
    config = KalisConfig(modules=modules, knowggets=knowggets)
    reparsed = parse_config(render_config(config))
    assert reparsed.modules == config.modules
    assert reparsed.knowggets == config.knowggets
