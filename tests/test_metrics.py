"""Tests for detection scoring and the resource model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.base import SymptomInstance, SymptomLog
from repro.core.alerts import Alert
from repro.metrics.detection import (
    attack_family,
    score_alerts,
    score_countermeasure,
)
from repro.metrics.resources import (
    cpu_percent,
    ram_kb,
    resource_report,
)
from repro.util.ids import NodeId

K = NodeId("kalis-1")
ATTACKER, VICTIM, BYSTANDER = NodeId("evil"), NodeId("victim"), NodeId("by")


def alert(attack, timestamp):
    return Alert(attack=attack, timestamp=timestamp, detected_by="m", kalis_node=K)


def instance(attack, start, end=None, index=0):
    return SymptomInstance(
        attack=attack, attacker=ATTACKER, instance=index,
        start=start, end=end if end is not None else start,
    )


class TestSymptomLog:
    def test_records_instances_in_order(self):
        log = SymptomLog("icmp_flood", ATTACKER)
        log.record(1.0, 2.0)
        log.record(5.0)
        assert len(log) == 2
        assert log.instances[0].instance == 0
        assert log.instances[1].start == log.instances[1].end == 5.0

    def test_overlaps(self):
        inst = instance("x", 5.0, 10.0)
        assert inst.overlaps(9.0, 12.0)
        assert inst.overlaps(0.0, 5.0)
        assert not inst.overlaps(11.0, 12.0)


class TestAttackFamily:
    def test_flood_smurf_share_family(self):
        assert attack_family("icmp_flood") == attack_family("smurf")

    def test_relay_family(self):
        assert (
            attack_family("selective_forwarding")
            == attack_family("blackhole")
            == attack_family("wormhole")
        )

    def test_unknown_attack_maps_to_itself(self):
        assert attack_family("quantum_jam") == "quantum_jam"


class TestScoreAlerts:
    def test_exact_match_detected_and_correct(self):
        score = score_alerts([alert("icmp_flood", 5.0)], [instance("icmp_flood", 4.0)])
        assert score.detection_rate == 1.0
        assert score.classification_accuracy == 1.0
        assert score.false_positive_alerts == 0

    def test_family_match_detects_but_misclassifies(self):
        """A smurf alert on an ICMP flood: detected, wrongly classified."""
        score = score_alerts([alert("smurf", 5.0)], [instance("icmp_flood", 4.0)])
        assert score.detection_rate == 1.0
        assert score.classification_accuracy == 0.0

    def test_unrelated_alert_is_false_positive(self):
        score = score_alerts([alert("sybil", 5.0)], [instance("icmp_flood", 4.0)])
        assert score.detection_rate == 0.0
        assert score.false_positive_alerts == 1

    def test_alert_outside_window_misses(self):
        score = score_alerts(
            [alert("icmp_flood", 100.0)],
            [instance("icmp_flood", 4.0)],
            detection_slack=20.0,
        )
        assert score.detection_rate == 0.0

    def test_one_alert_covers_overlapping_instances(self):
        instances = [instance("icmp_flood", float(i), index=i) for i in range(3)]
        score = score_alerts([alert("icmp_flood", 2.5)], instances)
        assert score.detected_instances == 3

    def test_per_attack_breakdown(self):
        instances = [
            instance("icmp_flood", 1.0, index=0),
            instance("syn_flood", 50.0, index=1),
        ]
        score = score_alerts([alert("icmp_flood", 2.0)], instances)
        assert score.per_attack_detected == {
            "icmp_flood": (1, 1),
            "syn_flood": (0, 1),
        }

    def test_merge(self):
        first = score_alerts([alert("icmp_flood", 2.0)], [instance("icmp_flood", 1.0)])
        second = score_alerts([], [instance("syn_flood", 1.0)])
        merged = first.merged_with(second)
        assert merged.total_instances == 2
        assert merged.detected_instances == 1
        assert merged.detection_rate == 0.5

    def test_empty_inputs(self):
        score = score_alerts([], [])
        assert score.detection_rate == 0.0
        assert score.classification_accuracy == 0.0

    def test_summary_renders(self):
        score = score_alerts([alert("icmp_flood", 2.0)], [instance("icmp_flood", 1.0)])
        assert "100%" in score.summary()


class TestCountermeasure:
    def test_revoking_only_the_attacker_is_perfect(self):
        assert score_countermeasure([ATTACKER], [ATTACKER], [VICTIM]) == 1.0

    def test_revoking_the_victim_is_catastrophic(self):
        """The §VI-B1 traditional-IDS failure: victim revoked."""
        assert score_countermeasure([ATTACKER, VICTIM], [ATTACKER], [VICTIM]) == 0.0

    def test_innocent_bystander_penalised(self):
        value = score_countermeasure(
            [ATTACKER, BYSTANDER], [ATTACKER], [VICTIM]
        )
        assert value == 0.0

    def test_no_action_on_no_attack_is_fine(self):
        assert score_countermeasure([], [], []) == 1.0
        assert score_countermeasure([BYSTANDER], [], []) == 0.0

    def test_partial_credit_multiple_attackers(self):
        attackers = [NodeId("e1"), NodeId("e2")]
        assert score_countermeasure([NodeId("e1")], attackers) == 0.5


class TestResourceModel:
    def test_cpu_percent_linear_in_work(self):
        assert cpu_percent(2000.0, 10.0) == pytest.approx(
            2 * cpu_percent(1000.0, 10.0)
        )

    def test_cpu_percent_zero_duration(self):
        assert cpu_percent(100.0, 0.0) == 0.0

    def test_ram_orderings(self):
        """The Table II ordering must hold structurally: a Snort-scale
        ruleset dwarfs any module census, and more active modules cost
        more."""
        kalis = ram_kb("kalis", active_modules=6)
        trad = ram_kb("traditional", active_modules=15)
        snort = ram_kb("snort", rule_count=3500)
        assert kalis < trad < snort

    def test_report_summary(self):
        report = resource_report("kalis", work_units=100.0, duration_s=10.0,
                                 active_modules=3)
        assert "kalis" in report.summary()
        assert report.cpu_percent > 0


@settings(max_examples=40)
@given(
    alert_times=st.lists(st.floats(0, 100, allow_nan=False), max_size=10),
    instance_times=st.lists(st.floats(0, 100, allow_nan=False), max_size=10),
)
def test_score_bounds_property(alert_times, instance_times):
    alerts = [alert("icmp_flood", t) for t in alert_times]
    instances = [
        instance("icmp_flood", t, index=i) for i, t in enumerate(instance_times)
    ]
    score = score_alerts(alerts, instances)
    assert 0.0 <= score.detection_rate <= 1.0
    assert 0.0 <= score.classification_accuracy <= 1.0
    assert score.detected_instances <= score.total_instances
    assert score.matched_alerts + score.false_positive_alerts == len(alerts)
