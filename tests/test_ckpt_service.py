"""Checkpointing service, daemon resume, and restore-time listeners."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.ckpt import (
    COMPLETED,
    KILLED,
    STOPPED,
    CheckpointService,
    SnapshotStore,
    canonical_outputs,
    restore,
    serve,
)
from repro.core.manager import TOPIC_MODULE_QUARANTINE, ModuleHealth
from repro.experiments.soak_scenario import build_e1_deployment
from repro.faults import FaultPlan, ProcessKill
from repro.obs import Telemetry

ROOT = Path(__file__).resolve().parents[1]


def _builder(seed=7, instances=6, telemetry=None):
    return lambda: build_e1_deployment(
        seed=seed, symptom_instances=instances, telemetry=telemetry
    )


class TestCheckpointService:
    def test_uninterrupted_run_completes_and_checkpoints(self, tmp_path):
        store = SnapshotStore(tmp_path)
        service = CheckpointService(
            store, _builder()(), checkpoint_interval=10.0
        )
        assert service.run() == COMPLETED
        assert service.checkpoints_written >= 2
        assert store.latest() is not None

    def test_chunked_run_equals_single_run(self, tmp_path):
        """Checkpoint boundaries are invisible to the simulation."""
        single = _builder()()
        single.run_to(single.end_time)

        chunked = _builder()()
        service = CheckpointService(
            SnapshotStore(tmp_path), chunked, checkpoint_interval=7.0
        )
        assert service.run() == COMPLETED
        assert canonical_outputs(chunked) == canonical_outputs(single)

    def test_kill_then_restore_continues_equivalently(self, tmp_path):
        baseline = _builder()()
        baseline.run_to(baseline.end_time)

        deployment = _builder()()
        kill_at = deployment.end_time / 2
        FaultPlan(seed=0, events=(ProcessKill(at=kill_at),)).apply(
            deployment.sim
        )
        store = SnapshotStore(tmp_path)
        service = CheckpointService(store, deployment, checkpoint_interval=5.0)
        assert service.run() == KILLED
        assert service.last_kill_at == pytest.approx(kill_at)

        restored = restore(store.latest()[1])
        resumed = CheckpointService(store, restored, checkpoint_interval=5.0)
        assert resumed.run() == COMPLETED
        assert canonical_outputs(restored) == canonical_outputs(baseline)

    def test_cooperative_stop_checkpoints_and_exits(self, tmp_path):
        store = SnapshotStore(tmp_path)
        service = CheckpointService(
            store, _builder()(), checkpoint_interval=5.0
        )
        service.request_stop()
        assert service.run() == STOPPED
        assert service.checkpoints_written == 1
        restored = restore(store.latest()[1])
        assert not restored.done

    def test_resume_or_build_builds_when_store_empty(self, tmp_path):
        service = CheckpointService.resume_or_build(
            SnapshotStore(tmp_path), _builder()
        )
        assert service.deployment.now == 0.0

    def test_resume_or_build_restores_latest(self, tmp_path):
        store = SnapshotStore(tmp_path)
        first = CheckpointService(store, _builder()(), checkpoint_interval=5.0)
        first.deployment.run_to(12.0)
        first.checkpoint()

        def exploding_builder():
            raise AssertionError("must restore, not rebuild")

        resumed = CheckpointService.resume_or_build(store, exploding_builder)
        assert resumed.deployment.now == pytest.approx(12.0)

    def test_resume_or_build_skips_corrupt_latest(self, tmp_path):
        store = SnapshotStore(tmp_path)
        service = CheckpointService(store, _builder()(), checkpoint_interval=5.0)
        service.deployment.run_to(8.0)
        good = service.checkpoint()
        service.deployment.run_to(16.0)
        bad = service.checkpoint()
        data = bytearray(bad.read_bytes())
        data[-3] ^= 0xFF
        bad.write_bytes(bytes(data))

        resumed = CheckpointService.resume_or_build(
            store, lambda: pytest.fail("previous snapshot was usable")
        )
        assert resumed.deployment.now == pytest.approx(8.0)
        assert good.exists()

    def test_interval_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointService(
                SnapshotStore(tmp_path), _builder()(), checkpoint_interval=0
            )


class TestRestoredListeners:
    """Event-bus and telemetry wiring must survive a restore."""

    def _restored(self, telemetry=True):
        deployment = build_e1_deployment(
            seed=7, symptom_instances=6,
            telemetry=Telemetry() if telemetry else None,
        )
        deployment.run_to(deployment.end_time / 2)
        from repro.ckpt import capture

        return restore(capture(deployment))

    def test_quarantine_after_restore_fires_flight_dump(self):
        restored = self._restored()
        node = restored.kalis_nodes[0]
        dumps_before = len(restored.telemetry.recorder.dumps)
        node.bus.publish(
            TOPIC_MODULE_QUARANTINE,
            ModuleHealth(module="TrafficStatsModule", quarantine_count=1),
        )
        dumps = restored.telemetry.recorder.dumps
        assert len(dumps) == dumps_before + 1
        assert dumps[-1]["reason"] == "module.quarantine"
        assert dumps[-1]["attrs"]["module"] == "TrafficStatsModule"

    def test_deadletter_listener_survives_restore(self):
        restored = self._restored()
        node = restored.kalis_nodes[0]
        before = len(node.deadletters)

        def explode(event):
            raise RuntimeError("restored handler failure")

        node.bus.subscribe("ckpt.test.topic", explode)
        node.bus.publish("ckpt.test.topic", None)
        assert len(node.deadletters) == before + 1
        assert node.deadletters[-1].handler.endswith("explode")

    def test_attach_telemetry_after_uninstrumented_restore(self):
        """A node snapshotted without telemetry can gain it on restore."""
        restored = self._restored(telemetry=False)
        node = restored.kalis_nodes[0]
        assert node.telemetry is None
        telemetry = Telemetry()
        node.attach_telemetry(telemetry)
        node.bus.publish(
            TOPIC_MODULE_QUARANTINE,
            ModuleHealth(module="TrafficStatsModule", quarantine_count=2),
        )
        assert telemetry.recorder.dumps
        assert telemetry.recorder.dumps[-1]["reason"] == "module.quarantine"

    def test_attach_telemetry_is_idempotent(self):
        restored = self._restored()
        node = restored.kalis_nodes[0]
        subscribers = node.bus.subscriber_count(TOPIC_MODULE_QUARANTINE)
        node.attach_telemetry(restored.telemetry)
        assert node.bus.subscriber_count(TOPIC_MODULE_QUARANTINE) == subscribers


class TestServe:
    def test_serve_completes_and_writes_canonical_log(self, tmp_path):
        report = serve(tmp_path, _builder(), checkpoint_interval=10.0)
        assert report.outcome == COMPLETED
        assert not report.resumed
        assert report.canonical_path is not None
        assert Path(report.canonical_path).read_text().startswith("t=")

    def test_serve_kill_then_resume_matches_uninterrupted(self, tmp_path):
        plain = serve(tmp_path / "plain", _builder(), checkpoint_interval=8.0)

        kill = serve(
            tmp_path / "drill", _builder(),
            checkpoint_interval=8.0, kill_at=30.0,
        )
        assert kill.outcome == KILLED
        resumed = serve(
            tmp_path / "drill", _builder(),
            checkpoint_interval=8.0, kill_at=30.0,  # past resume point: ignored
        )
        assert resumed.outcome == COMPLETED
        assert resumed.resumed
        assert (
            Path(resumed.canonical_path).read_bytes()
            == Path(plain.canonical_path).read_bytes()
        )


class TestDaemonProcess:
    """End-to-end: the real CLI process killed and re-exec'd."""

    def _serve(self, store, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--store", str(store),
             "--workload", "e1", "--seed", "7", "--instances", "6",
             "--checkpoint-interval", "8", *extra],
            capture_output=True, text=True, env=env, timeout=120,
        )

    def test_kill_resume_across_processes(self, tmp_path):
        plain = self._serve(tmp_path / "plain")
        assert plain.returncode == 0, plain.stderr

        drill = self._serve(tmp_path / "drill", "--kill-at", "25.0")
        assert drill.returncode == 3, drill.stderr  # crashed by the drill
        resumed = self._serve(tmp_path / "drill")
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed" in resumed.stdout

        baseline = (tmp_path / "plain" / "canonical.log").read_bytes()
        recovered = (tmp_path / "drill" / "canonical.log").read_bytes()
        assert recovered == baseline

    def test_sigterm_checkpoints_and_resumes(self, tmp_path):
        """SIGTERM mid-run stops cleanly; a restart finishes the job."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src")
        store = tmp_path / "sig"
        # A large workload so the process is still running when signalled.
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--store", str(store),
             "--workload", "e1", "--seed", "7", "--instances", "4000",
             "--checkpoint-interval", "5"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
        )
        try:
            deadline = time.time() + 60
            while time.time() < deadline and not list(store.glob("*.ksnap")):
                time.sleep(0.1)
            assert list(store.glob("*.ksnap")), "no checkpoint before signal"
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
        assert process.returncode == 0, stderr
        assert "stopped" in stdout

        # The final checkpoint is restorable and mid-run (cross-process
        # resume-to-completion is covered above with a small workload).
        store_obj = SnapshotStore(store)
        header, payload = store_obj.latest()
        restored = restore(payload)
        assert 0.0 < restored.now < restored.end_time
        assert restored.now == pytest.approx(header["sim_time"])

    def test_sigkill_resumes_from_last_interval_checkpoint(self, tmp_path):
        """An abrupt SIGKILL loses at most one checkpoint interval; a
        restart resumes from the last snapshot and finishes."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src")
        store = tmp_path / "kill9"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--store", str(store),
             "--workload", "e1", "--seed", "7", "--instances", "400",
             "--checkpoint-interval", "5"],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env,
        )
        try:
            deadline = time.time() + 60
            while time.time() < deadline and not list(store.glob("*.ksnap")):
                time.sleep(0.1)
            assert list(store.glob("*.ksnap")), "no checkpoint before kill"
            process.kill()  # SIGKILL: no chance to checkpoint
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
        assert process.returncode != 0

        resumed = self._serve(store)
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed" in resumed.stdout
        assert (store / "canonical.log").exists()
