"""Property-based tests for Snort threshold semantics and the parser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.snort.engine import SnortEngine
from repro.baselines.snort.parser import parse_rule
from repro.baselines.snort.rule import SnortRule, Threshold
from repro.util.ids import NodeId
from tests.conftest import wifi_icmp_capture

A, V = NodeId("attacker"), NodeId("victim")


def flood_rule(kind: str, count: int, seconds: float) -> SnortRule:
    return parse_rule(
        f'alert icmp any any -> $HOME_NET any (msg:"t"; itype:0; '
        f"threshold:type {kind}, track by_dst, count {count}, "
        f"seconds {seconds:g}; metadata:attack t; sid:77; rev:1;)"
    )


def fire_replies(engine: SnortEngine, count: int, spacing: float) -> int:
    for index in range(count):
        engine.on_capture(
            wifi_icmp_capture(A, V, "10.23.5.5", index * spacing)
        )
    return len(engine.alerts)


class TestThresholdSemantics:
    @settings(max_examples=30)
    @given(
        count=st.integers(2, 10),
        packets=st.integers(0, 40),
    )
    def test_type_both_fires_at_most_once_per_window(self, count, packets):
        engine = SnortEngine([flood_rule("both", count, seconds=100.0)])
        alerts = fire_replies(engine, packets, spacing=0.1)
        # Everything lands in one window: either no alert (below count)
        # or exactly one.
        assert alerts == (1 if packets >= count else 0)

    @settings(max_examples=30)
    @given(count=st.integers(2, 8), packets=st.integers(0, 30))
    def test_type_threshold_fires_every_count(self, count, packets):
        engine = SnortEngine([flood_rule("threshold", count, seconds=1000.0)])
        alerts = fire_replies(engine, packets, spacing=0.1)
        # Classic 'threshold': every event at or past the count fires.
        assert alerts == max(0, packets - count + 1)

    @settings(max_examples=30)
    @given(count=st.integers(1, 6), packets=st.integers(0, 30))
    def test_type_limit_fires_first_count_only(self, count, packets):
        engine = SnortEngine([flood_rule("limit", count, seconds=1000.0)])
        alerts = fire_replies(engine, packets, spacing=0.1)
        assert alerts == min(packets, count)

    def test_window_expiry_rearms_both(self):
        engine = SnortEngine([flood_rule("both", 5, seconds=10.0)])
        fire_replies(engine, 6, spacing=0.1)  # one alert in window one
        assert len(engine.alerts) == 1
        for index in range(6):  # a second burst, a window later
            engine.on_capture(
                wifi_icmp_capture(A, V, "10.23.5.5", 50.0 + index * 0.1)
            )
        assert len(engine.alerts) == 2


class TestThresholdValidation:
    def test_bad_kind(self):
        with pytest.raises(ValueError):
            Threshold(kind="sometimes", track="by_dst", count=1, seconds=1.0)

    def test_bad_track(self):
        with pytest.raises(ValueError):
            Threshold(kind="both", track="by_vibe", count=1, seconds=1.0)

    def test_bad_count_and_seconds(self):
        with pytest.raises(ValueError):
            Threshold(kind="both", track="by_dst", count=0, seconds=1.0)
        with pytest.raises(ValueError):
            Threshold(kind="both", track="by_dst", count=1, seconds=0.0)


@settings(max_examples=50)
@given(
    proto=st.sampled_from(["tcp", "udp", "icmp", "ip"]),
    port=st.one_of(st.just("any"), st.integers(0, 65535).map(str)),
    sid=st.integers(1, 10_000_000),
    msg=st.from_regex(r"[A-Za-z0-9 _\-]{1,30}", fullmatch=True),
)
def test_parser_render_roundtrip_property(proto, port, sid, msg):
    rule = parse_rule(
        f'alert {proto} any any -> $HOME_NET {port} '
        f'(msg:"{msg}"; sid:{sid}; rev:1;)'
    )
    assert parse_rule(rule.render()) == rule
