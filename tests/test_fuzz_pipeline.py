"""Fuzzing the full IDS pipeline.

An IDS parses adversarial input by definition: whatever arbitrary
frames an attacker puts on the air must never crash the engine, corrupt
the Knowledge Base, or wedge module activation.  These tests feed
hypothesis-generated capture streams (random layer stacks, timestamps,
RSSI values) through a complete KalisNode and a Snort engine and assert
the machinery stays sane.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.snort import SnortEngine, custom_iot_rules
from repro.core.kalis import KalisNode
from repro.net.packets.base import Medium, RawPayload
from repro.net.packets.ctp import CtpDataFrame, CtpRoutingFrame
from repro.net.packets.icmp import IcmpMessage, IcmpType
from repro.net.packets.ieee802154 import FrameType, Ieee802154Frame
from repro.net.packets.ip import IpPacket
from repro.net.packets.sixlowpan import SixLowpanPacket
from repro.net.packets.tcp import TcpFlags, TcpSegment
from repro.net.packets.udp import UdpDatagram
from repro.net.packets.wifi import WifiFrame, WifiFrameKind
from repro.net.packets.zigbee import ZigbeeKind, ZigbeePacket
from repro.sim.capture import Capture
from repro.util.ids import NodeId

node_ids = st.sampled_from([NodeId(name) for name in ("a", "b", "c", "d", "evil")])
small_ips = st.sampled_from(["10.23.0.1", "10.23.0.2", "8.8.8.8", "172.16.0.9"])

transport = st.one_of(
    st.none(),
    st.builds(RawPayload, length=st.integers(0, 200)),
    st.builds(
        TcpSegment,
        sport=st.integers(0, 65535),
        dport=st.integers(0, 65535),
        flags=st.sampled_from(
            [TcpFlags.NONE, TcpFlags.SYN, TcpFlags.ACK,
             TcpFlags.SYN | TcpFlags.ACK, TcpFlags.FIN | TcpFlags.ACK,
             TcpFlags.RST]
        ),
        seq=st.integers(0, 2**31),
        data_length=st.integers(0, 500),
    ),
    st.builds(UdpDatagram, sport=st.integers(0, 65535), dport=st.integers(0, 65535)),
    st.builds(
        IcmpMessage,
        icmp_type=st.sampled_from(list(IcmpType)),
        identifier=st.integers(0, 65535),
        sequence=st.integers(0, 65535),
    ),
)

wpan_inner = st.one_of(
    st.none(),
    st.builds(
        CtpDataFrame,
        origin=node_ids,
        seqno=st.integers(0, 100000),
        thl=st.integers(0, 30),
        etx=st.integers(0, 0xFFFF),
    ),
    st.builds(CtpRoutingFrame, parent=node_ids, etx=st.integers(0, 0xFFFF)),
    st.builds(
        ZigbeePacket,
        src=node_ids,
        dst=node_ids,
        seq=st.integers(0, 100000),
        radius=st.integers(0, 30),
        zigbee_kind=st.sampled_from(list(ZigbeeKind)),
    ),
    st.builds(SixLowpanPacket, src=node_ids, dst=node_ids,
              hop_limit=st.integers(0, 255)),
)

packets = st.one_of(
    st.builds(
        Ieee802154Frame,
        pan_id=st.integers(0, 0xFFFF),
        seq=st.integers(0, 100000),
        src=node_ids,
        dst=node_ids,
        frame_type=st.sampled_from(list(FrameType)),
        payload=wpan_inner,
    ),
    st.builds(
        WifiFrame,
        src=node_ids,
        dst=node_ids,
        wifi_kind=st.sampled_from(list(WifiFrameKind)),
        mesh_src=st.one_of(st.none(), node_ids),
        payload=st.one_of(
            st.none(),
            st.builds(
                IpPacket,
                src_ip=small_ips,
                dst_ip=small_ips,
                ttl=st.integers(0, 255),
                payload=transport,
            ),
        ),
    ),
)

captures = st.builds(
    Capture,
    packet=packets,
    timestamp=st.floats(0.0, 1000.0, allow_nan=False),
    medium=st.sampled_from(list(Medium)),
    rssi=st.floats(-100.0, 0.0, allow_nan=False),
)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(captures, max_size=60))
def test_kalis_pipeline_survives_arbitrary_streams(stream):
    kalis = KalisNode(NodeId("kalis-1"))
    # Modules assume time flows forward, as any live sniffer guarantees.
    for capture in sorted(stream, key=lambda c: c.timestamp):
        kalis.feed(capture)
    # The machinery stayed coherent.
    assert kalis.comm.total_captures == len(stream)
    status = kalis.status()
    assert status["captures"] == len(stream)
    assert all(isinstance(active, bool) for active in status["modules"].values())
    for knowgget in kalis.kb.local_knowggets():
        assert knowgget.key  # every stored knowgget re-encodes cleanly


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(captures, max_size=60))
def test_snort_engine_survives_arbitrary_streams(stream):
    engine = SnortEngine(custom_iot_rules())
    for capture in sorted(stream, key=lambda c: c.timestamp):
        engine.on_capture(capture)
    assert engine.packets_processed + engine.packets_invisible == len(stream)
