"""Tests for the shared experiment plumbing and extension scenarios."""

import pytest

from repro.core.alerts import Alert
from repro.experiments import jamming_scenario, scalability_scenario
from repro.experiments.common import (
    apply_countermeasure_score,
    run_kalis_on_trace,
    suspects_of,
)
from repro.util.ids import NodeId

K = NodeId("kalis-1")


def alert_with(suspects):
    return Alert(
        attack="blackhole", timestamp=1.0, detected_by="m",
        kalis_node=K, suspects=tuple(suspects),
    )


class TestSuspectsOf:
    def test_deduplicates_preserving_order(self):
        a, b = NodeId("a"), NodeId("b")
        alerts = [alert_with([b, a]), alert_with([a]), alert_with([b])]
        assert suspects_of(alerts) == [b, a]

    def test_empty(self):
        assert suspects_of([]) == []


class TestApplyCountermeasure:
    def test_fills_effectiveness(self):
        from repro.experiments.common import EngineRun
        from repro.metrics.detection import DetectionScore
        from repro.metrics.resources import resource_report

        run = EngineRun(
            name="x",
            alerts=[],
            score=DetectionScore(),
            resources=resource_report("kalis", 0, 1),
            revoked=[NodeId("evil")],
        )
        apply_countermeasure_score(run, attackers=[NodeId("evil")])
        assert run.countermeasure_effectiveness == 1.0


class TestRunnersShareTheTrace:
    def test_kalis_runner_consumes_all_captures(self):
        from repro.experiments import icmp_flood_scenario

        built = icmp_flood_scenario.build(seed=7, symptom_instances=4)
        run, kalis = run_kalis_on_trace(built.trace, built.instances)
        assert kalis.comm.total_captures == len(built.trace)
        assert run.resources.duration_s == pytest.approx(built.trace.duration)


class TestJammingScenario:
    def test_result_shape(self):
        result = jamming_scenario.run(seed=29, bursts=2)
        assert result.bursts == 2
        assert 0.0 <= result.detection_rate <= 1.0
        assert result.captures_during_bursts <= result.captures_total
        assert "jamming bursts" in result.summary()

    def test_detects_both_bursts(self):
        result = jamming_scenario.run(seed=29, bursts=2)
        assert result.detection_rate == 1.0
        assert result.false_positives == 0


class TestScalabilityScenario:
    def test_module_sets_are_local(self):
        point = scalability_scenario.run_site(seed=41, block_pairs=1)
        home = point.per_node_active["kalis-home-0"]
        field = point.per_node_active["kalis-field-0"]
        assert "IcmpFloodModule" in home
        assert "IcmpFloodModule" not in field
        assert "ForwardingMisbehaviorModule" in field
        assert "ForwardingMisbehaviorModule" not in home

    def test_render(self):
        points = scalability_scenario.run(seed=41, sizes=(1,))
        text = scalability_scenario.render(points)
        assert "IDS nodes" in text
