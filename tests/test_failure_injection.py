"""Failure-injection tests: the system must stay honest when the world
degrades — lossy radios, lossy peer links, partially deaf sniffers.
"""


from repro.attacks import SelectiveForwardingMote
from repro.core.collective import CollectiveKnowledgeNetwork
from repro.core.kalis import KalisNode
from repro.core.knowledge import KnowledgeBase
from repro.devices.wsn import TelosbMote
from repro.net.packets.base import Medium
from repro.sim.engine import Simulator
from repro.sim.medium import RadioMedium
from repro.util.ids import NodeId
from repro.util.rng import SeededRng


def wsn_with_attacker(seed, loss_probability=0.0, drop_probability=0.0):
    """The standard chain, optionally with radio loss and an attacker."""
    sim = Simulator(seed=seed)
    if loss_probability:
        sim.set_medium(
            RadioMedium(
                Medium.IEEE_802_15_4,
                rng=SeededRng(seed, "lossy-medium"),
                base_loss_probability=loss_probability,
            )
        )
    sim.add_node(TelosbMote(NodeId("mote-base"), (0.0, 0.0), is_root=True))
    sim.add_node(TelosbMote(NodeId("mote-1"), (25.0, 0.0)))
    if drop_probability:
        forwarder = SelectiveForwardingMote(
            NodeId("forwarder"), (50.0, 0.0),
            drop_probability=drop_probability, rng=SeededRng(seed, "attacker"),
        )
    else:
        forwarder = TelosbMote(NodeId("forwarder"), (50.0, 0.0))
    sim.add_node(forwarder)
    sim.add_node(TelosbMote(NodeId("mote-3"), (75.0, 0.0)))
    kalis = KalisNode(NodeId("kalis-1"))
    kalis.deploy(sim, position=(50.0, 8.0))
    sim.run(150.0)
    return kalis, forwarder


class TestLossyRadio:
    def test_no_false_accusations_under_10pct_loss(self):
        """Radio loss makes the watchdog miss retransmissions it should
        have heard; the drop-ratio gate must absorb that."""
        # Seed re-baselined with the type-tagged (sender, sequence,
        # receiver) pair keys: like the old streams, some seeds make the
        # watchdog miss exactly the wrong retransmissions at 10% loss.
        kalis, _ = wsn_with_attacker(seed=87, loss_probability=0.10)
        accused = {
            suspect for alert in kalis.alerts.alerts for suspect in alert.suspects
        }
        assert NodeId("forwarder") not in accused
        assert NodeId("mote-1") not in accused

    def test_attacker_still_caught_under_loss(self):
        kalis, forwarder = wsn_with_attacker(
            seed=82, loss_probability=0.10, drop_probability=0.8
        )
        assert forwarder.dropped_count > 0
        accused = {
            suspect for alert in kalis.alerts.alerts for suspect in alert.suspects
        }
        assert NodeId("forwarder") in accused

    def test_topology_discovery_survives_loss(self):
        kalis, _ = wsn_with_attacker(seed=83, loss_probability=0.15)
        assert kalis.kb.get("Multihop.802154", bool) is True


class TestLossyCollective:
    def test_fire_and_forget_sync_is_best_effort_not_corrupting(self):
        """With the retry budget disabled (the pre-reliability channel),
        sync is best-effort: losses are final but never corrupting."""
        network = CollectiveKnowledgeNetwork(
            sim=None, loss_probability=0.5, rng=SeededRng(84), max_retries=0
        )
        kb1 = KnowledgeBase(NodeId("kalis-1"))
        kb2 = KnowledgeBase(NodeId("kalis-2"))
        network.join(kb1)
        network.join(kb2)
        delivered = 0
        for index in range(40):
            kb1.put(f"Fact{index}", index, collective=True)
        for index in range(40):
            if kb2.get(f"Fact{index}", int, creator=NodeId("kalis-1")) is not None:
                delivered += 1
        # Some got through, some were lost; what arrived is exact.
        assert 0 < delivered < 40
        for index in range(40):
            value = kb2.get(f"Fact{index}", int, creator=NodeId("kalis-1"))
            assert value is None or value == index


class TestDeafSniffer:
    def test_sniffer_outside_wsn_learns_nothing_and_stays_quiet(self):
        """A sniffer out of radio range sees no traffic: no knowledge,
        no modules, no alerts — never garbage."""
        sim = Simulator(seed=85)
        sim.add_node(TelosbMote(NodeId("mote-base"), (0.0, 0.0), is_root=True))
        sim.add_node(TelosbMote(NodeId("mote-1"), (25.0, 0.0)))
        kalis = KalisNode(NodeId("kalis-1"))
        kalis.deploy(sim, position=(5000.0, 5000.0))
        sim.run(60.0)
        assert kalis.comm.total_captures == 0
        assert kalis.kb.get("Multihop.802154", bool) is None
        assert len(kalis.alerts) == 0

    def test_interference_recovery(self):
        """After a jamming burst ends, collection resumes."""
        sim = Simulator(seed=86)
        base = sim.add_node(
            TelosbMote(NodeId("mote-base"), (0.0, 0.0), is_root=True)
        )
        sim.add_node(TelosbMote(NodeId("mote-1"), (20.0, 0.0)))
        sim.run(30.0)
        before = len(base.collected)
        sim.medium(Medium.IEEE_802_15_4).set_interference(0.99)
        sim.run(30.0)
        during = len(base.collected) - before
        sim.medium(Medium.IEEE_802_15_4).set_interference(0.0)
        sim.run(30.0)
        after = len(base.collected) - before - during
        assert during < after * 0.5
        assert after >= before * 0.7
