"""State-graph rules (KL201–KL205), exports, and the runtime census."""

import textwrap
from pathlib import Path

from repro.analysis.census import run_census
from repro.analysis.cli import main
from repro.analysis.engine import run_rules
from repro.analysis.project import Project
from repro.analysis.stategraph import (
    CHECKPOINT_ROOTS,
    derive_stategraph,
    export_dot,
    export_json,
)

ROOT = Path(__file__).resolve().parent.parent


def make_project(tmp_path, files):
    """Write a ``src/`` tree from {relpath: source} and parse it."""
    for relpath, content in files.items():
        path = tmp_path / "src" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    for directory in sorted((tmp_path / "src").rglob("*")):
        if directory.is_dir():
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
    return Project.load([tmp_path / "src" / "repro"], root=tmp_path)


def run(tmp_path, files, rule):
    return run_rules(make_project(tmp_path, files), select=[rule])


class TestKL201HiddenState:
    VIOLATION = {
        "repro/core/tracker.py": """
        _SEEN = {}

        def note(key):
            _SEEN[key] = True
        """,
    }
    CLEAN = {
        "repro/core/tracker.py": """
        _LIMITS = {"max": 10}
        _NAMES = ("a", "b")

        def limit():
            return _LIMITS["max"]
        """,
    }

    def test_mutated_module_global_flagged(self, tmp_path):
        findings = run(tmp_path, self.VIOLATION, "KL201")
        assert [f.key for f in findings] == ["_SEEN"]
        assert "outside every checkpoint root" in findings[0].message

    def test_unmutated_globals_pass(self, tmp_path):
        assert run(tmp_path, self.CLEAN, "KL201") == []

    def test_imported_global_mutated_elsewhere_flagged(self, tmp_path):
        """Mutation through an import resolves back to the definer."""
        files = {
            "repro/core/registry.py": """
            TABLE = {}
            """,
            "repro/core/user.py": """
            from repro.core.registry import TABLE

            def add(key):
                TABLE[key] = 1
            """,
        }
        findings = run(tmp_path, files, "KL201")
        assert [f.key for f in findings] == ["TABLE"]
        assert findings[0].path.endswith("registry.py")

    def test_class_level_mutable_flagged(self, tmp_path):
        files = {
            "repro/core/pool.py": """
            class Pool:
                shared = []

                def add(self, item):
                    self.shared.append(item)
            """,
        }
        findings = run(tmp_path, files, "KL201")
        assert [f.key for f in findings] == ["Pool.shared"]


class TestKL202NonPicklable:
    VIOLATION = {
        "repro/core/node.py": """
        import threading

        class KalisNode:
            def __init__(self):
                self._lock = threading.Lock()
                self._pick = lambda x: x
        """,
    }
    CLEAN = {
        "repro/core/node.py": """
        import threading

        class KalisNode:
            def __init__(self):
                self._lock = threading.Lock()

            def __getstate__(self):
                return {}
        """,
    }

    def test_lock_and_lambda_on_root_flagged(self, tmp_path):
        findings = run(tmp_path, self.VIOLATION, "KL202")
        assert [f.key for f in findings] == [
            "KalisNode._lock",
            "KalisNode._pick",
        ]
        assert "non-picklable" in findings[0].message

    def test_getstate_hook_silences(self, tmp_path):
        assert run(tmp_path, self.CLEAN, "KL202") == []

    def test_unreachable_class_not_flagged(self, tmp_path):
        files = {
            "repro/tools/scratch.py": """
            import threading

            class Scratch:
                def __init__(self):
                    self._lock = threading.Lock()
            """,
        }
        assert run(tmp_path, files, "KL202") == []


class TestKL203RngProvenance:
    VIOLATION = {
        "repro/sim/world.py": """
        import random

        from repro.util.rng import HashedStream

        class Simulator:
            def __init__(self):
                self.rng = random.Random(7)
                self.stream = HashedStream(42, "links")
        """,
    }
    CLEAN = {
        "repro/sim/world.py": """
        from repro.util.rng import SeededRng

        class Simulator:
            def __init__(self, seed, rng=None):
                self.rng = rng if rng is not None else SeededRng(0, "sim")
                self.derived = SeededRng(seed, "links")
        """,
    }

    def test_raw_random_and_literal_seed_flagged(self, tmp_path):
        findings = run(tmp_path, self.VIOLATION, "KL203")
        keys = sorted(f.key for f in findings)
        assert keys == ["HashedStream", "random.Random"]

    def test_injectable_default_idiom_exempt(self, tmp_path):
        assert run(tmp_path, self.CLEAN, "KL203") == []

    def test_util_rng_itself_exempt(self, tmp_path):
        files = {
            "repro/util/rng.py": """
            import numpy as np

            class SeededRng:
                def __init__(self, seed):
                    self._np = np.random.default_rng(seed)
            """,
        }
        assert run(tmp_path, files, "KL203") == []

    def test_np_random_flagged(self, tmp_path):
        files = {
            "repro/sim/noise.py": """
            import numpy as np

            def sample():
                return np.random.random()
            """,
        }
        findings = run(tmp_path, files, "KL203")
        assert [f.key for f in findings] == ["np.random.random"]


class TestKL204StaleCache:
    VIOLATION = {
        "repro/sim/world.py": """
        class Simulator:
            def __init__(self):
                self._grids = {}

            def grid(self, medium):
                if medium not in self._grids:
                    self._grids[medium] = object()
                return self._grids[medium]
        """,
    }
    CLEAN = {
        "repro/sim/world.py": """
        class Simulator:
            def __init__(self):
                self._grids = {}

            def grid(self, medium):
                if medium not in self._grids:
                    self._grids[medium] = object()
                return self._grids[medium]

            def rebuild_derived_state(self):
                self._grids.clear()
        """,
    }

    def test_mutated_cache_without_hook_flagged(self, tmp_path):
        findings = run(tmp_path, self.VIOLATION, "KL204")
        assert [f.key for f in findings] == ["Simulator._grids"]
        assert "rebuild" in findings[0].message

    def test_rebuild_hook_silences(self, tmp_path):
        assert run(tmp_path, self.CLEAN, "KL204") == []


class TestKL205CrossShardAliasing:
    VIOLATION = {
        "repro/experiments/double.py": """
        from repro.sim.world import Simulator

        def run():
            shared = {}
            a = Simulator(shared)
            b = Simulator(shared)
            return a, b
        """,
        "repro/sim/world.py": """
        class Simulator:
            def __init__(self, table=None):
                self.table = table
        """,
    }
    CLEAN = {
        "repro/experiments/double.py": """
        from repro.sim.world import Simulator

        def run():
            a = Simulator({})
            b = Simulator({})
            seed = 7
            c = Simulator(seed)
            d = Simulator(seed)
            return a, b, c, d
        """,
        "repro/sim/world.py": """
        class Simulator:
            def __init__(self, table=None):
                self.table = table
        """,
    }

    def test_shared_mutable_arg_flagged(self, tmp_path):
        findings = run(tmp_path, self.VIOLATION, "KL205")
        assert [f.key for f in findings] == ["shared"]
        assert "2 shard-root constructors" in findings[0].message

    def test_fresh_objects_and_scalars_pass(self, tmp_path):
        assert run(tmp_path, self.CLEAN, "KL205") == []

    def test_mutable_default_param_flagged(self, tmp_path):
        files = {
            "repro/sim/world.py": """
            class Simulator:
                def __init__(self, table={}):
                    self.table = table
            """,
        }
        findings = run(tmp_path, files, "KL205")
        assert [f.key for f in findings] == ["Simulator.__init__"]


class TestStateGraphExports:
    def test_real_tree_exports_are_byte_identical(self):
        """Two independent derivations render identical JSON and DOT."""
        first = Project.load([ROOT / "src" / "repro"], root=ROOT)
        second = Project.load([ROOT / "src" / "repro"], root=ROOT)
        state_a = derive_stategraph(first)
        state_b = derive_stategraph(second)
        assert export_json(state_a) == export_json(state_b)
        assert export_dot(state_a) == export_dot(state_b)

    def test_json_covers_roots_and_triaged_classes(self):
        project = Project.load([ROOT / "src" / "repro"], root=ROOT)
        rendered = export_json(derive_stategraph(project))
        assert '"repro.sim.engine.Simulator"' in rendered
        assert '"rebuild_derived_state"' in rendered
        assert '"kind": "rng"' in rendered
        for root in ("Simulator", "KalisNode", "DataStore", "KnowledgeBase"):
            assert root in CHECKPOINT_ROOTS
            assert f".{root}\"" in rendered

    def test_dot_marks_roots(self):
        project = Project.load([ROOT / "src" / "repro"], root=ROOT)
        rendered = export_dot(derive_stategraph(project))
        assert '"Simulator" [shape=doubleoctagon];' in rendered
        assert rendered.endswith("}\n")

    def test_cli_state_view(self, tmp_path, capsys):
        code = main(
            [
                "graph",
                "--view",
                "state",
                "--root",
                str(ROOT),
                str(ROOT / "src" / "repro"),
                "--output",
                str(tmp_path / "state.json"),
            ]
        )
        assert code == 0
        rendered = (tmp_path / "state.json").read_text(encoding="utf-8")
        assert '"classes"' in rendered and '"module_state"' in rendered


class TestRuntimeStateCensus:
    """The static inventory must be a superset of live object graphs."""

    def _index(self):
        project = Project.load([ROOT / "src" / "repro"], root=ROOT)
        state = derive_stategraph(project)
        return state.inventory_index(), state.injected_attribute_names()

    def test_census_covers_e1_flood_world(self):
        from repro.experiments import icmp_flood_scenario
        from repro.experiments.common import run_kalis_on_trace

        index, injected = self._index()
        built = icmp_flood_scenario.build(seed=7, symptom_instances=4)
        _, kalis = run_kalis_on_trace(built.trace, built.instances)
        report = run_census([built.sim, kalis], index, injected)
        assert report.objects > 100
        assert report.missing_classes == []
        assert report.missing == []

    def test_census_covers_e14_chaos_world(self):
        from repro.experiments import chaos_scenario

        index, injected = self._index()
        result = chaos_scenario.run(seed=23, symptom_instances=6)
        world = result.extra["world"]
        report = run_census(list(world.values()), index, injected)
        assert report.objects > 100
        assert report.missing_classes == []
        assert report.missing == []

    def test_census_reports_planted_unknown_attribute(self):
        """A live attribute the graph does not know is reported."""
        from repro.util.rng import SeededRng

        index, injected = self._index()
        rng = SeededRng(1, "census")
        rng.surprise = {"hidden": True}
        report = run_census([rng], index, injected)
        assert "repro.util.rng.SeededRng.surprise" in report.missing


class TestRealTreeStateRules:
    def test_tree_lints_clean_with_kl2xx(self, capsys):
        code = main(
            [
                "--root",
                str(ROOT),
                "--baseline",
                str(ROOT / "kalis-lint.baseline"),
                "--select",
                "KL201,KL202,KL203,KL204,KL205",
                "--no-cache",
                str(ROOT / "src" / "repro"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
