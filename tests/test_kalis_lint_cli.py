"""CLI behavior tests for kalis-lint: flags, exit codes, baseline workflow."""

import json
import textwrap

import pytest

from repro.analysis.cli import TODO_REASON, main

_DIRTY_TREE = {
    "repro/sim/engine.py": """
    import time


    def stamp():
        \"\"\"Planted wall-clock read.\"\"\"
        return time.time()
    """,
}


def write_tree(tmp_path, files):
    """Materialize {relpath: source} under tmp_path/src with packages."""
    for relpath, content in files.items():
        path = tmp_path / "src" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    for directory in sorted((tmp_path / "src").rglob("*")):
        if directory.is_dir():
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
    return tmp_path / "src" / "repro"


class TestFlags:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("KL001", "KL002", "KL003", "KL004", "KL005", "KL006"):
            assert rule_id in out
        # Whole-program rules ride the same registry.
        for rule_id in ("KL101", "KL102", "KL103", "KL104", "KL105"):
            assert rule_id in out

    def test_select_unknown_rule_is_usage_error(self, tmp_path, capsys):
        tree = write_tree(tmp_path, _DIRTY_TREE)
        with pytest.raises(SystemExit) as excinfo:
            main(["--root", str(tmp_path), "--select", "KL999", str(tree)])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_select_restricts_rules(self, tmp_path, capsys):
        tree = write_tree(tmp_path, _DIRTY_TREE)
        code = main(
            [
                "--root",
                str(tmp_path),
                "--no-baseline",
                "--select",
                "KL002",
                str(tree),
            ]
        )
        assert code == 0  # the planted bug is KL001 territory
        capsys.readouterr()

    def test_json_format(self, tmp_path, capsys):
        tree = write_tree(tmp_path, _DIRTY_TREE)
        code = main(
            [
                "--root",
                str(tmp_path),
                "--no-baseline",
                "--format",
                "json",
                str(tree),
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["suppressed"] == 0
        (finding,) = payload["findings"]
        assert finding["rule"] == "KL001"
        assert finding["path"] == "src/repro/sim/engine.py"
        assert finding["severity"] == "error"
        assert finding["line"] > 0

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--root", str(tmp_path), str(tmp_path / "nope")])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_syntax_error_reported_as_kl000(self, tmp_path, capsys):
        tree = write_tree(
            tmp_path, {"repro/core/broken.py": "def oops(:\n"}
        )
        code = main(["--root", str(tmp_path), "--no-baseline", str(tree)])
        out = capsys.readouterr().out
        assert code == 1
        assert "KL000" in out


class TestDottedConstantResolution:
    """KL005 resolves dotted constant references (``consts.TOPIC``)."""

    def _tree(self, tmp_path, topic):
        return write_tree(
            tmp_path,
            {
                "repro/core/consts.py": f'TOPIC = "{topic}"\n',
                "repro/core/user.py": """
                from repro.core import consts


                def wire(bus, handler):
                    bus.subscribe(consts.TOPIC, handler)


                def emit(bus):
                    bus.publish("alert.raised", {})
                """,
            },
        )

    def test_dotted_constant_subscription_without_publisher(
        self, tmp_path, capsys
    ):
        tree = self._tree(tmp_path, "alert.missing")
        code = main(
            [
                "--root", str(tmp_path), "--no-baseline",
                "--select", "KL005", str(tree),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "alert.missing" in out

    def test_dotted_constant_subscription_with_publisher_is_clean(
        self, tmp_path, capsys
    ):
        tree = self._tree(tmp_path, "alert.raised")
        code = main(
            [
                "--root", str(tmp_path), "--no-baseline",
                "--select", "KL005", str(tree),
            ]
        )
        assert code == 0
        capsys.readouterr()


class TestBaselineWorkflow:
    def test_baseline_suppresses_findings(self, tmp_path, capsys):
        tree = write_tree(tmp_path, _DIRTY_TREE)
        baseline = tmp_path / "kalis-lint.baseline"
        baseline.write_text(
            "KL001 src/repro/sim/engine.py time.time -- legacy wall-clock,"
            " scheduled for removal\n",
            encoding="utf-8",
        )
        code = main(
            ["--root", str(tmp_path), "--baseline", str(baseline), str(tree)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 baselined" in out

    def test_stale_entry_reported_as_kl099(self, tmp_path, capsys):
        tree = write_tree(
            tmp_path,
            {"repro/sim/engine.py": '"""Clean module."""\n'},
        )
        baseline = tmp_path / "kalis-lint.baseline"
        baseline.write_text(
            "KL001 src/repro/sim/engine.py time.time -- fixed long ago\n",
            encoding="utf-8",
        )
        code = main(
            ["--root", str(tmp_path), "--baseline", str(baseline), str(tree)]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "KL099" in out
        assert "stale baseline entry" in out

    def test_stale_entry_ignored_when_file_not_scanned(self, tmp_path, capsys):
        tree = write_tree(
            tmp_path,
            {
                "repro/sim/engine.py": '"""Clean module."""\n',
                "repro/core/other.py": '"""Also clean."""\n',
            },
        )
        baseline = tmp_path / "kalis-lint.baseline"
        baseline.write_text(
            "KL001 src/repro/sim/engine.py time.time -- fixed long ago\n",
            encoding="utf-8",
        )
        # Lint only core/ — the engine.py entry must not be called stale.
        code = main(
            [
                "--root",
                str(tmp_path),
                "--baseline",
                str(baseline),
                str(tree / "core"),
            ]
        )
        assert code == 0
        capsys.readouterr()

    def test_malformed_baseline_is_exit_2(self, tmp_path, capsys):
        tree = write_tree(tmp_path, _DIRTY_TREE)
        baseline = tmp_path / "kalis-lint.baseline"
        baseline.write_text(
            "KL001 src/repro/sim/engine.py time.time\n", encoding="utf-8"
        )
        code = main(
            ["--root", str(tmp_path), "--baseline", str(baseline), str(tree)]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "justification" in err

    def test_write_baseline_creates_and_preserves_reasons(
        self, tmp_path, capsys
    ):
        tree = write_tree(tmp_path, _DIRTY_TREE)
        baseline = tmp_path / "kalis-lint.baseline"

        code = main(
            [
                "--root",
                str(tmp_path),
                "--baseline",
                str(baseline),
                "--write-baseline",
                str(tree),
            ]
        )
        assert code == 0
        content = baseline.read_text(encoding="utf-8")
        assert "KL001 src/repro/sim/engine.py time.time" in content
        assert TODO_REASON in content

        # Hand-edit the justification, re-write: the reason must survive.
        baseline.write_text(
            content.replace(TODO_REASON, "justified for reasons"),
            encoding="utf-8",
        )
        code = main(
            [
                "--root",
                str(tmp_path),
                "--baseline",
                str(baseline),
                "--write-baseline",
                str(tree),
            ]
        )
        assert code == 0
        content = baseline.read_text(encoding="utf-8")
        assert "justified for reasons" in content
        assert TODO_REASON not in content

        # And the freshly-written baseline makes the tree pass.
        code = main(
            ["--root", str(tmp_path), "--baseline", str(baseline), str(tree)]
        )
        assert code == 0
        capsys.readouterr()


class TestBaselineAudit:
    def test_audit_reports_live_baseline(self, tmp_path, capsys):
        tree = write_tree(tmp_path, _DIRTY_TREE)
        baseline = tmp_path / "kalis-lint.baseline"
        baseline.write_text(
            "KL001 src/repro/sim/engine.py time.time -- legacy wall-clock,"
            " scheduled for removal\n",
            encoding="utf-8",
        )
        code = main(
            [
                "baseline",
                "--audit",
                "--no-cache",
                "--root",
                str(tmp_path),
                "--baseline",
                str(baseline),
                str(tree),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "baseline is live" in out

    def test_audit_flags_stale_entry(self, tmp_path, capsys):
        tree = write_tree(
            tmp_path, {"repro/sim/engine.py": '"""Clean module."""\n'}
        )
        baseline = tmp_path / "kalis-lint.baseline"
        baseline.write_text(
            "KL001 src/repro/sim/engine.py time.time -- fixed long ago\n",
            encoding="utf-8",
        )
        code = main(
            [
                "baseline",
                "--audit",
                "--no-cache",
                "--root",
                str(tmp_path),
                "--baseline",
                str(baseline),
                str(tree),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "stale KL001 entry" in out
        # Audit alone never rewrites the file.
        assert "fixed long ago" in baseline.read_text(encoding="utf-8")

    def test_prune_drops_only_stale_entries(self, tmp_path, capsys):
        tree = write_tree(tmp_path, _DIRTY_TREE)
        baseline = tmp_path / "kalis-lint.baseline"
        baseline.write_text(
            "KL001 src/repro/sim/engine.py time.time -- legacy wall-clock\n"
            "KL001 src/repro/sim/engine.py time.monotonic -- fixed long ago\n",
            encoding="utf-8",
        )
        code = main(
            [
                "baseline",
                "--audit",
                "--prune",
                "--no-cache",
                "--root",
                str(tmp_path),
                "--baseline",
                str(baseline),
                str(tree),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "pruned 1 stale entry" in out
        text = baseline.read_text(encoding="utf-8")
        assert "time.time" in text
        assert "time.monotonic" not in text

    def test_entries_outside_scanned_paths_survive_prune(self, tmp_path, capsys):
        tree = write_tree(
            tmp_path,
            {
                "repro/sim/engine.py": '"""Clean module."""\n',
                "repro/core/other.py": '"""Also clean."""\n',
            },
        )
        baseline = tmp_path / "kalis-lint.baseline"
        baseline.write_text(
            "KL001 src/repro/sim/engine.py time.time -- not judged here\n",
            encoding="utf-8",
        )
        code = main(
            [
                "baseline",
                "--audit",
                "--prune",
                "--no-cache",
                "--root",
                str(tmp_path),
                "--baseline",
                str(baseline),
                str(tree / "core"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "outside the scanned paths" in out
        assert "time.time" in baseline.read_text(encoding="utf-8")

    def test_real_tree_baseline_is_live(self, capsys):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        code = main(
            [
                "baseline",
                "--audit",
                "--no-cache",
                "--root",
                str(root),
                "--baseline",
                str(root / "kalis-lint.baseline"),
                str(root / "src" / "repro"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "baseline is live" in out
