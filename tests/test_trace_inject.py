"""Tests for offline symptom injection (the paper's §VI-A methodology)."""

import pytest

from repro.core.kalis import KalisNode
from repro.devices.commodity import CloudService, NestThermostat
from repro.metrics.detection import score_alerts
from repro.proto.iphost import IpRouter, LanDirectory
from repro.sim.engine import Simulator
from repro.sim.node import SnifferNode
from repro.trace.inject import SymptomInjector
from repro.trace.recorder import TraceRecorder
from repro.util.ids import NodeId
from repro.util.rng import SeededRng


@pytest.fixture(scope="module")
def benign_recording():
    """A benign home-LAN recording plus the victim's addressing."""
    sim = Simulator(seed=101)
    lan, wan = LanDirectory(), LanDirectory()
    router = sim.add_node(IpRouter(NodeId("router"), (0.0, 0.0), lan, wan))
    cloud = sim.add_node(
        CloudService(NodeId("cloud"), (400.0, 0.0), wan, gateway=router.node_id)
    )
    nest = sim.add_node(
        NestThermostat(NodeId("nest"), (5.0, 2.0), lan, cloud.ip,
                       router.node_id, rng=SeededRng(101, "nest"))
    )
    sniffer = sim.add_node(SnifferNode(NodeId("obs"), (4.0, 3.0)))
    recorder = TraceRecorder().attach(sniffer)
    sim.run(90.0)
    return recorder.trace, nest.ip, nest.node_id


class TestInjection:
    def test_enhanced_trace_contains_labelled_symptoms(self, benign_recording):
        trace, victim_ip, victim_link = benign_recording
        injector = SymptomInjector(rng=SeededRng(5))
        enhanced, instances = injector.inject_icmp_flood(
            trace, victim_ip, victim_link, bursts=5
        )
        assert len(instances) == 5
        assert len(enhanced) == len(trace) + 5 * 20
        assert len(enhanced.attack_records()) == 5 * 20
        assert enhanced.attack_instances() == {
            ("icmp_flood", index) for index in range(5)
        }

    def test_benign_records_untouched(self, benign_recording):
        trace, victim_ip, victim_link = benign_recording
        injector = SymptomInjector(rng=SeededRng(5))
        enhanced, _ = injector.inject_icmp_flood(trace, victim_ip, victim_link)
        assert enhanced.benign_records().captures() == trace.captures()

    def test_timestamps_interleave_in_order(self, benign_recording):
        trace, victim_ip, victim_link = benign_recording
        injector = SymptomInjector(rng=SeededRng(5))
        enhanced, _ = injector.inject_syn_flood(trace, victim_ip, victim_link)
        timestamps = [record.timestamp for record in enhanced]
        assert timestamps == sorted(timestamps)

    def test_injected_rssi_is_physically_consistent(self, benign_recording):
        trace, victim_ip, victim_link = benign_recording
        injector = SymptomInjector(attacker_rssi=-58.0, rssi_sigma=1.5,
                                   rng=SeededRng(5))
        enhanced, _ = injector.inject_icmp_flood(trace, victim_ip, victim_link)
        rssis = [record.capture.rssi for record in enhanced.attack_records()]
        mean = sum(rssis) / len(rssis)
        assert -61.0 < mean < -55.0  # one transmitter, one signature
        assert max(rssis) - min(rssis) < 12.0


class TestDetectionOnInjectedTrace:
    def test_kalis_detects_injected_flood(self, benign_recording):
        trace, victim_ip, victim_link = benign_recording
        injector = SymptomInjector(rng=SeededRng(6))
        enhanced, instances = injector.inject_icmp_flood(
            trace, victim_ip, victim_link, bursts=8, start=20.0
        )
        kalis = KalisNode(NodeId("kalis-1"))
        kalis.replay_trace(enhanced)
        score = score_alerts(kalis.alerts.alerts, instances)
        assert score.detection_rate == 1.0
        assert score.classification_accuracy == 1.0
        suspects = {s for a in kalis.alerts.alerts for s in a.suspects}
        assert injector.attacker in suspects

    def test_kalis_detects_injected_syn_flood(self, benign_recording):
        trace, victim_ip, victim_link = benign_recording
        injector = SymptomInjector(rng=SeededRng(7))
        enhanced, instances = injector.inject_syn_flood(
            trace, victim_ip, victim_link, bursts=6, start=25.0
        )
        kalis = KalisNode(NodeId("kalis-1"))
        kalis.replay_trace(enhanced)
        score = score_alerts(kalis.alerts.alerts, instances)
        assert score.detection_rate >= 0.8
        assert all(a.attack == "syn_flood" for a in kalis.alerts.alerts)
