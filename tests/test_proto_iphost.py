"""Tests for IP hosts, routing, ping behaviour and the LAN directory."""

import pytest

from repro.net.addressing import ip_for_node
from repro.net.packets.base import Medium
from repro.net.packets.icmp import IcmpMessage, IcmpType
from repro.net.packets.ip import IpPacket
from repro.proto.iphost import BROADCAST_IP, IpHost, IpRouter, LanDirectory
from repro.sim.engine import Simulator
from repro.util.ids import NodeId


class TestLanDirectory:
    def test_register_and_resolve(self):
        directory = LanDirectory()
        ip = directory.register(NodeId("host-1"))
        assert ip == ip_for_node(NodeId("host-1"))
        assert directory.resolve(ip) == NodeId("host-1")
        assert directory.knows(ip)

    def test_unknown_ip(self):
        assert LanDirectory().resolve("1.2.3.4") is None


@pytest.fixture
def lan_world():
    sim = Simulator(seed=6)
    lan = LanDirectory()
    alice = sim.add_node(IpHost(NodeId("alice"), (0.0, 0.0), lan))
    bob = sim.add_node(IpHost(NodeId("bob"), (5.0, 0.0), lan))
    carol = sim.add_node(IpHost(NodeId("carol"), (0.0, 5.0), lan))
    sim.run_until(0.01)
    return sim, alice, bob, carol


class TestPing:
    def test_echo_request_gets_reply(self, lan_world):
        sim, alice, bob, _ = lan_world
        alice.ping(bob.ip)
        sim.run(1.0)
        assert bob.pings_received == 1
        assert bob.ping_replies_sent == 1

    def test_broadcast_ping_all_reply(self, lan_world):
        sim, alice, bob, carol = lan_world
        alice.ping(BROADCAST_IP)
        sim.run(1.0)
        assert bob.ping_replies_sent == 1
        assert carol.ping_replies_sent == 1

    def test_ping_disabled_host_stays_silent(self):
        sim = Simulator(seed=6)
        lan = LanDirectory()
        alice = sim.add_node(IpHost(NodeId("alice"), (0.0, 0.0), lan))
        mute = sim.add_node(
            IpHost(NodeId("mute"), (5.0, 0.0), lan, respond_to_ping=False)
        )
        sim.run_until(0.01)
        alice.ping(mute.ip)
        sim.run(1.0)
        assert mute.pings_received == 1
        assert mute.ping_replies_sent == 0

    def test_spoofed_own_address_not_answered(self, lan_world):
        """A host never answers an Echo Request claiming its own source
        (the reflection guard)."""
        sim, alice, bob, _ = lan_world
        forged = IpPacket(
            src_ip=bob.ip,  # bob's own address as source
            dst_ip=bob.ip,
            payload=IcmpMessage(icmp_type=IcmpType.ECHO_REQUEST),
        )
        alice.send_ip(forged, link_dst=bob.node_id)
        sim.run(1.0)
        assert bob.ping_replies_sent == 0

    def test_no_route_off_lan_without_gateway(self, lan_world):
        sim, alice, _, _ = lan_world
        assert alice.send_ip(
            IpPacket(src_ip=alice.ip, dst_ip="99.99.99.99",
                     payload=IcmpMessage(icmp_type=IcmpType.ECHO_REQUEST))
        ) == 0


class TestRouter:
    @pytest.fixture
    def routed_world(self):
        sim = Simulator(seed=7)
        lan, wan = LanDirectory(), LanDirectory()
        router = sim.add_node(IpRouter(NodeId("router"), (0.0, 0.0), lan, wan))
        inside = sim.add_node(
            IpHost(NodeId("inside"), (5.0, 0.0), lan, gateway=router.node_id)
        )
        outside = sim.add_node(
            IpHost(
                NodeId("outside"), (300.0, 0.0), wan,
                medium=Medium.WIRED, gateway=router.node_id,
            )
        )
        sim.run_until(0.01)
        return sim, router, inside, outside

    def test_lan_to_wan_forwarding(self, routed_world):
        sim, router, inside, outside = routed_world
        inside.ping(outside.ip)
        sim.run(1.0)
        assert outside.pings_received == 1
        assert router.forwarded_lan_to_wan == 1

    def test_wan_reply_returns_through_router(self, routed_world):
        sim, router, inside, outside = routed_world
        inside.ping(outside.ip)
        sim.run(1.0)
        assert router.forwarded_wan_to_lan == 1

    def test_ttl_decrements_across_router(self, routed_world):
        sim, router, inside, outside = routed_world
        seen = []
        original_handle = outside.handle_ip

        def spy(ip_packet, timestamp):
            seen.append(ip_packet.ttl)
            original_handle(ip_packet, timestamp)

        outside.handle_ip = spy
        inside.ping(outside.ip)
        sim.run(1.0)
        assert seen == [63]

    def test_inbound_policy_hook(self, routed_world):
        sim, router, inside, outside = routed_world
        router.admit_inbound = lambda packet: False
        outside.ping(inside.ip)
        sim.run(1.0)
        assert inside.pings_received == 0
        assert router.blocked_inbound == 1

    def test_unknown_wan_destination_dropped(self, routed_world):
        sim, router, inside, _ = routed_world
        inside.send_ip(
            IpPacket(src_ip=inside.ip, dst_ip="8.8.8.8",
                     payload=IcmpMessage(icmp_type=IcmpType.ECHO_REQUEST))
        )
        sim.run(1.0)
        assert router.forwarded_lan_to_wan == 0


class TestTcpOverLan:
    def test_open_tcp_full_cycle(self, lan_world):
        sim, alice, bob, _ = lan_world
        bob.tcp.listen(8080)
        alice.open_tcp(bob.ip, 8080, data_bytes=50)
        sim.run(2.0)
        assert bob.tcp.established_count == 1
        assert alice.tcp.connection_count() == 0  # closed after data
