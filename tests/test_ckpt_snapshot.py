"""Whole-deployment capture/restore and the canonical-output oracle."""

import pickle

import pytest

from repro.ckpt import (
    SnapshotCorrupt,
    canonical_outputs,
    capture,
    restore,
)
from repro.experiments.soak_scenario import build_e1_deployment
from repro.obs import Telemetry


def _run_plain(seed=7, instances=6):
    deployment = build_e1_deployment(seed=seed, symptom_instances=instances)
    deployment.run_to(deployment.end_time)
    return canonical_outputs(deployment)


class TestCaptureRestore:
    def test_mid_run_round_trip_preserves_outputs(self):
        baseline = _run_plain()

        deployment = build_e1_deployment(seed=7, symptom_instances=6)
        deployment.run_to(deployment.end_time / 2)
        payload = capture(deployment)
        # Drop the live graph; only the bytes continue.
        restored = restore(payload)
        restored.run_to(restored.end_time)
        assert canonical_outputs(restored) == baseline

    def test_restore_at_every_interval_checkpoint(self):
        """Restoring from any checkpoint instant reproduces the run."""
        baseline = _run_plain()
        deployment = build_e1_deployment(seed=7, symptom_instances=6)
        payloads = []
        step = deployment.end_time / 4
        while not deployment.done:
            deployment.run_to(deployment.now + step)
            payloads.append(capture(deployment))
        assert len(payloads) >= 4
        for payload in payloads:
            restored = restore(payload)
            restored.run_to(restored.end_time)
            assert canonical_outputs(restored) == baseline

    def test_telemetry_rides_inside_the_snapshot(self):
        deployment = build_e1_deployment(
            seed=7, symptom_instances=6, telemetry=Telemetry()
        )
        deployment.run_to(deployment.end_time / 2)
        restored = restore(capture(deployment))
        assert restored.telemetry is not None
        restored.run_to(restored.end_time)
        assert any(
            line.startswith("telemetry ")
            for line in canonical_outputs(restored)
        )

    def test_capture_refuses_inside_event_loop(self):
        deployment = build_e1_deployment(seed=7, symptom_instances=4)
        seen = {}

        def probe():
            try:
                capture(deployment)
            except RuntimeError as error:
                seen["error"] = error

        deployment.sim.schedule_at(1.0, probe)
        deployment.run_to(2.0)
        assert "event loop" in str(seen["error"])

    def test_capture_refuses_open_telemetry_span(self):
        telemetry = Telemetry()
        deployment = build_e1_deployment(
            seed=7, symptom_instances=4, telemetry=telemetry
        )
        active = telemetry.span("dangling")  # pushed on the span stack
        with pytest.raises(RuntimeError, match="open telemetry spans"):
            capture(deployment)
        with active:
            pass  # close it so teardown state is clean

    def test_restore_rejects_non_pickle_payload(self):
        with pytest.raises(SnapshotCorrupt, match="does not unpickle"):
            restore(b"certainly not a pickle")

    def test_restore_rejects_wrong_object_type(self):
        payload = pickle.dumps({"not": "a deployment"})
        with pytest.raises(SnapshotCorrupt, match="expected Deployment"):
            restore(payload)


class TestDeployment:
    def test_done_tracks_clock(self):
        deployment = build_e1_deployment(seed=7, symptom_instances=4)
        assert not deployment.done
        deployment.run_to(deployment.end_time)
        assert deployment.done
        assert deployment.now == pytest.approx(deployment.end_time)

    def test_run_to_is_capped_at_end_time(self):
        deployment = build_e1_deployment(seed=7, symptom_instances=4)
        deployment.run_to(deployment.end_time * 100)
        assert deployment.now == pytest.approx(deployment.end_time)

    def test_meta_is_json_safe(self):
        import json

        deployment = build_e1_deployment(seed=7, symptom_instances=4)
        meta = deployment.meta()
        assert json.loads(json.dumps(meta)) == meta
        assert meta["nodes"] == ["kalis-1"]


class TestRestoredGraphCensus:
    """The static state inventory covers the *restored* object graph.

    A restore that materialized attributes the state graph does not
    know about would mean the checkpoint carries (or rebuilds) state
    outside the audited surface.
    """

    def test_census_covers_restored_e1_graph(self):
        from pathlib import Path

        from repro.analysis.census import run_census
        from repro.analysis.project import Project
        from repro.analysis.stategraph import derive_stategraph

        root = Path(__file__).resolve().parents[1]
        project = Project.load([root / "src" / "repro"], root=root)
        state = derive_stategraph(project)
        index = state.inventory_index()
        injected = state.injected_attribute_names()

        deployment = build_e1_deployment(seed=7, symptom_instances=4)
        deployment.run_to(deployment.end_time / 2)
        restored = restore(capture(deployment))
        restored.run_to(restored.end_time)

        report = run_census(
            [restored.sim] + list(restored.kalis_nodes), index, injected
        )
        assert report.objects > 100
        assert report.missing_classes == []
        assert report.missing == []
