"""E15 — the kill/restore soak harness and its equivalence oracle."""

import pytest

from repro.ckpt import SnapshotStore, soak
from repro.experiments import soak_scenario
from repro.obs import Telemetry


class TestSoakHarness:
    def test_soak_reports_equivalence_and_activity(self, tmp_path):
        report = soak(
            lambda: soak_scenario.build_e1_deployment(
                seed=7, symptom_instances=6
            ),
            tmp_path,
            kill_times=[20.0, 40.0],
            checkpoint_interval=8.0,
            label="unit",
        )
        assert report.equivalent, report.summary()
        assert report.cycles == 2
        assert report.checkpoints > 0
        assert report.packets > 0
        assert report.captures > 0
        assert report.snapshot_bytes > 0
        assert "EQUIVALENT" in report.summary()

    def test_soak_detects_a_planted_divergence(self, tmp_path):
        """The oracle is live: a seed mismatch must be flagged."""
        seeds = iter((7, 8, 8))  # baseline seed differs from soak builds

        def builder():
            return soak_scenario.build_e1_deployment(
                seed=next(seeds), symptom_instances=6
            )

        report = soak(
            builder, tmp_path, kill_times=[30.0], label="planted",
        )
        assert not report.equivalent
        assert report.first_divergence is not None
        assert "DIVERGED" in report.summary()

    def test_sigkill_before_first_checkpoint_is_an_error(self, tmp_path):
        """An abrupt kill (no snapshot-on-kill) with an empty store."""
        deployment = soak_scenario.build_e1_deployment(
            seed=7, symptom_instances=6
        )
        with pytest.raises(RuntimeError, match="before any snapshot"):
            from repro.ckpt import run_with_kills

            run_with_kills(
                deployment,
                SnapshotStore(tmp_path),
                kill_times=[1.0],
                checkpoint_interval=50.0,
                snapshot_on_kill=False,
            )

    def test_scheduled_kill_replays_without_snapshot_on_kill(self, tmp_path):
        """A *scheduled* kill stays on the restored queue when no
        snapshot is taken at the kill instant, so it re-fires every
        cycle — the soak guards that runaway with max_cycles.  (A real
        SIGKILL is external to the sim and does not replay; that path
        is exercised process-level in test_ckpt_service.py.)"""
        from repro.ckpt import run_with_kills

        deployment = soak_scenario.build_e1_deployment(
            seed=7, symptom_instances=6
        )
        with pytest.raises(RuntimeError, match="exceeded 3 kill cycles"):
            run_with_kills(
                deployment,
                SnapshotStore(tmp_path),
                kill_times=[21.0],
                checkpoint_interval=8.0,
                max_cycles=3,
                snapshot_on_kill=False,
            )


class TestE15Scenario:
    def test_default_kill_times_are_interior_and_even(self):
        times = soak_scenario.default_kill_times(100.0, 3)
        assert times == [25.0, 50.0, 75.0]
        assert all(0.0 < t < 100.0 for t in times)

    @pytest.mark.parametrize("workload", sorted(soak_scenario.WORKLOAD_BUILDERS))
    @pytest.mark.parametrize("seed", (7, 23, 47))
    def test_equivalence_matrix(self, tmp_path, workload, seed):
        """Acceptance: both workloads, three seeds, >=3 interruptions."""
        result = soak_scenario.run(
            tmp_path,
            seeds=(seed,),
            workloads=(workload,),
            symptom_instances=6,
            kills=3,
            checkpoint_interval=8.0,
        )
        assert result.completed, result.summary()
        assert result.total_cycles == 3

    def test_matrix_with_telemetry_stays_equivalent(self, tmp_path):
        result = soak_scenario.run(
            tmp_path,
            seeds=(23,),
            workloads=("chaos",),
            symptom_instances=6,
            kills=2,
            telemetry_factory=Telemetry,
        )
        assert result.completed, result.summary()
        # Telemetry made it into the canonical surface.
        assert any(
            line.startswith("telemetry ")
            for line in result.reports[0].baseline_lines
        )

    def test_summary_totals(self, tmp_path):
        result = soak_scenario.run(
            tmp_path,
            seeds=(7,),
            workloads=("e1",),
            symptom_instances=4,
            kills=2,
            checkpoint_interval=8.0,
        )
        summary = result.summary()
        assert "0 equivalence violations" in summary
        assert result.total_packets == result.reports[0].packets
