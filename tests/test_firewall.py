"""Tests for the smart-firewall policy and router deployment."""


from repro.core.alerts import ALERT_TOPIC, Alert
from repro.eventbus.bus import EventBus
from repro.firewall.policy import FirewallDecision, FirewallPolicy
from repro.firewall.router import SmartFirewallRouter
from repro.net.packets.icmp import IcmpMessage, IcmpType
from repro.net.packets.ip import IpPacket
from repro.net.packets.tcp import TcpFlags, TcpSegment
from repro.util.ids import NodeId

LAN_IP, WAN_IP = "10.23.1.1", "203.0.113.7"


def syn_packet(src=WAN_IP, dst=LAN_IP):
    return IpPacket(
        src_ip=src, dst_ip=dst,
        payload=TcpSegment(sport=1234, dport=443, flags=TcpFlags.SYN),
    )


def icmp_packet(src=WAN_IP, dst=LAN_IP):
    return IpPacket(
        src_ip=src, dst_ip=dst,
        payload=IcmpMessage(icmp_type=IcmpType.ECHO_REQUEST),
    )


class TestPolicy:
    def test_admits_normal_traffic(self):
        policy = FirewallPolicy()
        policy.note_outbound(LAN_IP, WAN_IP)
        assert policy.evaluate(syn_packet(), now=0.0) is FirewallDecision.ADMIT

    def test_blocklist(self):
        policy = FirewallPolicy()
        policy.block(WAN_IP)
        assert policy.evaluate(syn_packet(), now=0.0) is FirewallDecision.BLOCKLISTED

    def test_syn_rate_clamp(self):
        policy = FirewallPolicy(syn_budget=5, window=10.0)
        policy.note_outbound(LAN_IP, WAN_IP)
        decisions = [policy.evaluate(syn_packet(), now=i * 0.1) for i in range(10)]
        assert decisions[:5] == [FirewallDecision.ADMIT] * 5
        assert FirewallDecision.RATE_LIMITED in decisions[5:]

    def test_rate_window_slides(self):
        policy = FirewallPolicy(syn_budget=2, window=5.0)
        policy.note_outbound(LAN_IP, WAN_IP)
        policy.evaluate(syn_packet(), now=0.0)
        policy.evaluate(syn_packet(), now=0.1)
        assert policy.evaluate(syn_packet(), now=0.2) is FirewallDecision.RATE_LIMITED
        # Far in the future, the budget has recovered.
        assert policy.evaluate(syn_packet(), now=60.0) is FirewallDecision.ADMIT

    def test_icmp_clamp(self):
        policy = FirewallPolicy(icmp_budget=3, window=10.0)
        policy.note_outbound(LAN_IP, WAN_IP)
        for i in range(3):
            policy.evaluate(icmp_packet(), now=i * 0.1)
        assert policy.evaluate(icmp_packet(), now=0.5) is FirewallDecision.RATE_LIMITED

    def test_unsolicited_budget(self):
        policy = FirewallPolicy(unsolicited_budget=4, syn_budget=1000)
        # No outbound contact was ever made to this WAN host.
        decisions = [
            policy.evaluate(syn_packet(), now=i * 0.1) for i in range(8)
        ]
        assert FirewallDecision.UNSOLICITED in decisions

    def test_alert_details_feed_blocklist(self):
        bus = EventBus()
        policy = FirewallPolicy(bus=bus)
        bus.publish(
            ALERT_TOPIC,
            Alert(
                attack="syn_flood", timestamp=1.0, detected_by="m",
                kalis_node=NodeId("k"),
                details={"attacker_ip": WAN_IP},
            ),
        )
        assert WAN_IP in policy.blocklist

    def test_summary_counts(self):
        policy = FirewallPolicy()
        policy.note_outbound(LAN_IP, WAN_IP)
        policy.evaluate(syn_packet(), now=0.0)
        assert "admit=1" in policy.summary()
        assert policy.blocked_count() == 0


class TestRouterIntegration:
    def test_flood_clamped_benign_flows(self):
        """End to end on the simulator: see examples/smart_firewall.py;
        this is the compact assertion version."""
        from repro.devices import CloudService, NestThermostat
        from repro.proto.iphost import IpHost, LanDirectory
        from repro.sim.engine import Simulator
        from repro.util.rng import SeededRng

        sim = Simulator(seed=61)
        lan, wan = LanDirectory(), LanDirectory()
        router = sim.add_node(
            SmartFirewallRouter(NodeId("router"), (0.0, 0.0), lan, wan)
        )
        cloud = sim.add_node(
            CloudService(NodeId("cloud"), (400.0, 0.0), wan,
                         gateway=router.node_id)
        )
        nest = sim.add_node(
            NestThermostat(NodeId("nest"), (5.0, 0.0), lan, cloud.ip,
                           router.node_id, rng=SeededRng(1))
        )

        from repro.net.packets.base import Medium

        class Flooder(IpHost):
            def start(self):
                self.sim.schedule_every(0.2, self.fire, first_delay=10.0,
                                        until=25.0)

            def fire(self):
                if self.attached:
                    self.send_ip(syn_packet(src=self.ip, dst=nest.ip))

        flooder = sim.add_node(
            Flooder(NodeId("bad"), (400.0, 50.0), wan, medium=Medium.WIRED,
                    gateway=router.node_id)
        )
        sim.run(60.0)
        assert router.denied > 0
        assert cloud.tcp.established_count >= 1  # benign traffic survived
