#!/usr/bin/env python3
"""The paper's Figure 1 home-automation scenario, end to end.

A smart-lighting system (Internet-connected hub + ZigBee bulbs), a
smart thermostat, a BLE smart lock and a smartphone — with every
communication pattern from the paper:

- *hub-to-subs*: the lighting hub commands its bulbs over ZigBee;
- *device-to-cloud*: thermostat and hub check in with their clouds
  through the home router;
- *cloud-mediated interop*: "when the smart thermostat becomes aware
  that the user is at home ... the thermostat push[es] a command to its
  own cloud service, then ... the smart lighting system's cloud service
  propagat[es] the command to the hub device" — and the hub turns the
  lights on;
- *BLE*: the phone operates the lock directly.

One Kalis node passively watches all three mediums at once and builds
its knowledge of the whole heterogeneous network.  A WSN also runs
nearby (the paper's TelosB deployment) to show multi-protocol breadth.

Run with::

    python examples/home_automation.py
"""

from repro.core import KalisNode
from repro.devices import (
    AugustSmartLock,
    CloudService,
    NestThermostat,
    Smartphone,
    SmartLightingHub,
    ZigbeeLightBulb,
    build_wsn,
)
from repro.proto.iphost import IpRouter, LanDirectory
from repro.sim import Simulator
from repro.sim.topology import line_positions
from repro.util.ids import NodeId
from repro.util.rng import SeededRng


def main() -> None:
    sim = Simulator(seed=2026)
    rng = SeededRng(2026)
    lan, wan = LanDirectory(), LanDirectory()

    router = sim.add_node(IpRouter(NodeId("router"), (0.0, 0.0), lan, wan))
    nest_cloud = sim.add_node(
        CloudService(NodeId("nest-cloud"), (500.0, 10.0), wan, gateway=router.node_id)
    )
    lighting_cloud = sim.add_node(
        CloudService(NodeId("lifx-cloud"), (500.0, -10.0), wan, gateway=router.node_id)
    )

    thermostat = sim.add_node(
        NestThermostat(NodeId("nest"), (5.0, 3.0), lan, nest_cloud.ip,
                       router.node_id, rng=rng.substream("nest"))
    )
    hub = sim.add_node(
        SmartLightingHub(NodeId("hub"), (7.0, 5.0), lan, lighting_cloud.ip,
                         router.node_id, rng=rng.substream("hub"))
    )
    for index in range(3):
        bulb = sim.add_node(
            ZigbeeLightBulb(NodeId(f"bulb-{index}"), (8.0 + index, 6.0), hub.node_id)
        )
        hub.register_bulb(bulb.node_id)
    lock = sim.add_node(
        AugustSmartLock(NodeId("lock"), (2.0, 8.0), lan, rng=rng.substream("lock"))
    )
    phone = sim.add_node(
        Smartphone(NodeId("phone"), (4.0, 4.0), lan, router.node_id,
                   rng=rng.substream("phone"))
    )

    # A small TelosB WSN in the garden, reporting over CTP every 3 s.
    build_wsn(sim, [(40.0 + 25.0 * i, 40.0) for i in range(4)])

    kalis = KalisNode(NodeId("kalis-1"))
    kalis.deploy(sim, position=(20.0, 20.0))

    # Let the steady-state traffic flow, then play out Figure 1's story.
    sim.run(40.0)

    print(">> user arrives home: thermostat reports presence to its cloud")
    thermostat.report_presence()
    sim.run(2.0)

    print(">> lighting cloud tells the hub; the hub switches the bulbs on")
    hub.command_all()
    sim.run(2.0)

    print(">> the user unlocks the door from the phone over BLE")
    phone.ble_request(lock)
    sim.run(20.0)

    print()
    print(kalis.describe())
    print()
    mediums = {m.value: c for m, c in kalis.comm.captures_by_medium.items()}
    print(f"Captures per medium: {mediums}")
    print(f"Monitored nodes discovered: {kalis.kb.get('MonitoredNodes', int)}")
    print(f"802.15.4 side multi-hop: {kalis.kb.get('Multihop.802154', bool)}")
    print(f"WiFi side multi-hop:     {kalis.kb.get('Multihop.wifi', bool)}")
    print(f"False alarms on all this benign traffic: {len(kalis.alerts)}")


if __name__ == "__main__":
    main()
