#!/usr/bin/env python3
"""Quickstart: deploy Kalis next to a small IoT network and catch a flood.

This is the smallest end-to-end tour of the public API:

1. build a simulated single-hop home network (router, cloud, a couple
   of commodity devices);
2. add an ICMP-flood attacker;
3. deploy a :class:`~repro.core.kalis.KalisNode` as a passive sniffer;
4. run, and watch Kalis discover the topology, pick its modules, and
   name the attacker.

Run with::

    python examples/quickstart.py
"""

from repro.attacks import IcmpFloodAttacker
from repro.core import KalisNode
from repro.devices import CloudService, LifxBulb, NestThermostat
from repro.proto.iphost import IpRouter, LanDirectory
from repro.sim import Simulator
from repro.util.ids import NodeId
from repro.util.rng import SeededRng


def main() -> None:
    sim = Simulator(seed=42)
    rng = SeededRng(42)

    # -- the home network ---------------------------------------------------
    lan, wan = LanDirectory(), LanDirectory()
    router = sim.add_node(IpRouter(NodeId("router"), (0.0, 0.0), lan, wan))
    cloud = sim.add_node(
        CloudService(NodeId("cloud"), (500.0, 0.0), wan, gateway=router.node_id)
    )
    thermostat = sim.add_node(
        NestThermostat(
            NodeId("nest"), (6.0, 2.0), lan, cloud.ip, router.node_id,
            rng=rng.substream("nest"),
        )
    )
    sim.add_node(
        LifxBulb(
            NodeId("lifx"), (4.0, 6.0), lan, cloud.ip, router.node_id,
            rng=rng.substream("lifx"),
        )
    )

    # -- the attacker ---------------------------------------------------------
    sim.add_node(
        IcmpFloodAttacker(
            NodeId("flooder"),
            (9.0, 8.0),
            lan,
            victim_ip=thermostat.ip,
            victim_link=thermostat.node_id,
            start_delay=15.0,
            max_bursts=5,
            rng=rng.substream("attacker"),
        )
    )

    # -- the IDS ---------------------------------------------------------------
    kalis = KalisNode(NodeId("kalis-1"))
    kalis.deploy(sim, position=(5.0, 4.0))

    # -- run --------------------------------------------------------------------
    sim.run(60.0)

    print(kalis.describe())
    print()
    print("Knowledge Base (paper Figure 5b key-value view):")
    for key, value in kalis.kb.snapshot().items():
        if "TrafficFrequency" in key or "$Multihop" in key or "MonitoredNodes" in key:
            print(f'  "{key}" = "{value}"')
    print()
    print(f"Alerts ({len(kalis.alerts)}):")
    for alert in kalis.alerts.alerts[:5]:
        suspects = ", ".join(s.value for s in alert.suspects)
        print(
            f"  t={alert.timestamp:7.2f}s  {alert.attack:<12} "
            f"by {alert.detected_by}  suspects: {suspects}"
        )
    assert kalis.alerts.by_attack("icmp_flood"), "expected the flood to be caught"
    print("\nThe flood was detected and attributed to the right node. Done.")


if __name__ == "__main__":
    main()
