#!/usr/bin/env python3
"""Collective knowledge in action: two Kalis nodes unmask a wormhole.

Reproduces the paper's §VI-D story interactively.  Two Kalis nodes
watch two distant portions of a ZigBee mesh; colluding nodes B1 and B2
tunnel traffic between the portions over a private out-of-band link.

Seen alone, B1 is "a blackhole" and B2 "a source of traffic".  The
script runs both configurations on identical traffic — isolated Kalis
nodes, then nodes joined through the collective-knowledge network — and
prints what each one concluded.

Run with::

    python examples/collaborative_wormhole.py
"""

from repro.experiments import wormhole_scenario


def main() -> None:
    built = wormhole_scenario.build(seed=17)
    print(
        f"Recorded {sum(len(t) for t in built.traces.values())} captures "
        f"across two observation points; wormhole entry={built.entry}, "
        f"exit={built.exit}.\n"
    )

    isolated = wormhole_scenario.replay(built, collective=False)
    print("Without knowledge sharing:")
    for node, alerts in sorted(isolated.alerts_by_node.items()):
        verdicts = sorted({alert.attack for alert in alerts}) or ["(nothing)"]
        print(f"  {node} concluded: {', '.join(verdicts)}")
    print(
        "  -> the entry looks like a plain blackhole; the exit looks benign.\n"
    )

    collective = wormhole_scenario.replay(built, collective=True)
    print("With collective knowledge (knowggets synchronized between peers):")
    for node, alerts in sorted(collective.alerts_by_node.items()):
        verdicts = sorted({alert.attack for alert in alerts}) or ["(nothing)"]
        print(f"  {node} concluded: {', '.join(verdicts)}")
    wormhole_alerts = [
        alert
        for alerts in collective.alerts_by_node.values()
        for alert in alerts
        if alert.attack == "wormhole"
    ]
    assert wormhole_alerts, "collective mode should identify the wormhole"
    suspects = sorted({s.value for a in wormhole_alerts for s in a.suspects})
    print(f"  -> correctly identified as a wormhole between {suspects}")


if __name__ == "__main__":
    main()
