#!/usr/bin/env python3
"""Kalis as a smart firewall on the home router (paper §V).

The OpenWRT deployment: Kalis runs *on* the router and filters
"suspicious incoming traffic from untrusted Internet sources to IoT
devices in the local network."  A WAN host launches an inbound SYN
flood at a LAN device; solicited return traffic (the thermostat's own
cloud check-ins) keeps flowing.

Run with::

    python examples/smart_firewall.py
"""

from repro.devices import CloudService, NestThermostat
from repro.firewall import SmartFirewallRouter
from repro.net.packets.ip import IpPacket
from repro.net.packets.tcp import TcpFlags, TcpSegment
from repro.net.packets.wifi import WifiFrame
from repro.proto.iphost import IpHost, LanDirectory
from repro.sim import Simulator
from repro.sim.node import SimNode
from repro.util.ids import NodeId
from repro.util.rng import SeededRng


class WanFlooder(IpHost):
    """An Internet host hurling SYNs at a LAN device through the router."""

    def __init__(self, node_id, position, wan_directory, router_id, target_ip):
        from repro.net.packets.base import Medium

        super().__init__(
            node_id, position, wan_directory,
            medium=Medium.WIRED, gateway=router_id, respond_to_ping=False,
        )
        self.target_ip = target_ip
        self.sent = 0

    def start(self) -> None:
        self.sim.schedule_every(0.2, self.fire, first_delay=20.0, until=50.0)

    def fire(self) -> None:
        if not self.attached:
            return
        self.sent += 1
        syn = TcpSegment(
            sport=40000 + self.sent % 20000, dport=443,
            flags=TcpFlags.SYN, seq=self.sent,
        )
        self.send_ip(IpPacket(src_ip=self.ip, dst_ip=self.target_ip, payload=syn))


def main() -> None:
    sim = Simulator(seed=99)
    rng = SeededRng(99)
    lan, wan = LanDirectory(), LanDirectory()

    router = SmartFirewallRouter(NodeId("router"), (0.0, 0.0), lan, wan)
    sim.add_node(router)
    cloud = sim.add_node(
        CloudService(NodeId("cloud"), (500.0, 0.0), wan, gateway=router.node_id)
    )
    thermostat = sim.add_node(
        NestThermostat(NodeId("nest"), (6.0, 2.0), lan, cloud.ip,
                       router.node_id, rng=rng.substream("nest"))
    )
    flooder = sim.add_node(
        WanFlooder(NodeId("badhost"), (600.0, 50.0), wan, router.node_id,
                   thermostat.ip)
    )

    sim.run(90.0)

    print(f"WAN attacker sent {flooder.sent} inbound SYNs at the thermostat.")
    print(f"Router admitted {router.admitted} inbound packets, denied {router.denied}.")
    print(router.policy.summary())
    print(
        f"Thermostat cloud check-ins completed during the attack: "
        f"{thermostat.checkins_sent} sent, {cloud.tcp.established_count} established."
    )
    assert router.denied > 0, "the firewall should have clamped the flood"
    assert cloud.tcp.established_count > 0, "benign traffic must keep flowing"
    print("\nThe flood was clamped at the router; benign traffic flowed. Done.")


if __name__ == "__main__":
    main()
