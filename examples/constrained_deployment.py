#!/usr/bin/env python3
"""The paper's §VIII vision: compile a Kalis configuration for a tiny node.

"We envision the possibility of selecting a specific module
configuration — based on the knowledge collected by Kalis in a network
— and to deploy that configuration at compile-time on very small
devices such as WSN nodes."

Three phases:

1. a full Kalis node ("scout") monitors the WSN and learns its
   features;
2. the knowledge is compiled into a static configuration file (the
   paper's Figure 6 language) — the artifact you would flash;
3. a constrained node boots with only that configuration — a fraction
   of the module library, a small window — and still catches the
   attacker.

Run with::

    python examples/constrained_deployment.py
"""

from repro.attacks import SelectiveForwardingMote
from repro.core import KalisNode
from repro.core.compile import compile_configuration_text, deploy_constrained
from repro.core.config import parse_config
from repro.devices.wsn import TelosbMote
from repro.sim import Simulator
from repro.util.ids import NodeId
from repro.util.rng import SeededRng


def build_wsn_chain(sim, attacker=None):
    sim.add_node(TelosbMote(NodeId("mote-base"), (0.0, 0.0), is_root=True))
    sim.add_node(TelosbMote(NodeId("mote-1"), (25.0, 0.0)))
    sim.add_node(
        attacker
        if attacker is not None
        else TelosbMote(NodeId("forwarder"), (50.0, 0.0))
    )
    sim.add_node(TelosbMote(NodeId("mote-3"), (75.0, 0.0)))


def main() -> None:
    print("phase 1: the scout node monitors the healthy network")
    sim = Simulator(seed=91)
    build_wsn_chain(sim)
    scout = KalisNode(NodeId("scout"))
    scout.deploy(sim, position=(50.0, 8.0))
    sim.run(60.0)
    full_library = len(scout.manager.modules())
    print(f"  learned: Multihop.802154 = {scout.kb.get('Multihop.802154', bool)}, "
          f"Mobility = {scout.kb.get('Mobility', bool)}, "
          f"{scout.kb.get('MonitoredNodes', int)} nodes monitored")

    print("\nphase 2: compile the knowledge into a static configuration")
    text = compile_configuration_text(scout.kb)
    print("  --- compiled config (Figure 6 language) ---")
    for line in text.splitlines():
        print(f"  {line}")

    print("phase 3: flash a constrained node; redeploy with an attacker present")
    sim2 = Simulator(seed=92)
    build_wsn_chain(
        sim2,
        attacker=SelectiveForwardingMote(
            NodeId("forwarder"), (50.0, 0.0), drop_probability=0.8,
            rng=SeededRng(92, "attacker"),
        ),
    )
    tiny = deploy_constrained(NodeId("tiny-1"), parse_config(text))
    tiny.deploy(sim2, position=(50.0, 8.0))
    sim2.run(120.0)

    compiled_library = len(tiny.manager.modules())
    print(f"  module library: {compiled_library} modules "
          f"(vs {full_library} on the full node)")
    accused = sorted({s.value for a in tiny.alerts.alerts for s in a.suspects})
    print(f"  alerts: {len(tiny.alerts)}; accused: {accused}")
    assert "forwarder" in accused, "the compiled node must still detect"
    print("\nThe constrained deployment caught the attacker with a fraction "
          "of the library. Done.")


if __name__ == "__main__":
    main()
