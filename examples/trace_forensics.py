#!/usr/bin/env python3
"""Record, persist, and replay traffic for after-the-fact analysis.

The paper's Data Store logs traffic so it "can also be replayed for
traffic analysis by the network administrator in case security
incidents are detected" (§IV-B2), and the whole evaluation is built on
recorded traces enhanced with attack symptoms (§VI-A).  This example
does the full round trip:

1. record a live WSN with a selective-forwarding attacker into a trace;
2. save it to disk (gzipped JSONL) and load it back — byte-identical;
3. replay it into a *fresh* Kalis instance, offline, and get the same
   verdicts the live IDS would have produced;
4. demonstrate the reactivity configuration (paper Figure 7 syntax).

Run with::

    python examples/trace_forensics.py
"""

import tempfile
from pathlib import Path

from repro.attacks import SelectiveForwardingMote
from repro.core import KalisNode, parse_config
from repro.devices.wsn import TelosbMote
from repro.sim import Simulator, SnifferNode
from repro.trace import Trace, TraceRecorder
from repro.util.ids import NodeId
from repro.util.rng import SeededRng

#: A configuration file in the paper's Figure 6/7 grammar.
CONFIG_TEXT = """
# tuned watchdog, plus a-priori knowledge that this deployment is static
modules = {
  ForwardingMisbehaviorModule (
    detectionThresh=3,
    timeout=1.0
  )
}
knowggets = {
  Mobility = false
}
"""


def main() -> None:
    # -- 1. record ------------------------------------------------------------
    sim = Simulator(seed=5)
    sim.add_node(TelosbMote(NodeId("mote-base"), (0.0, 0.0), is_root=True))
    sim.add_node(TelosbMote(NodeId("mote-1"), (25.0, 0.0)))
    sim.add_node(
        SelectiveForwardingMote(
            NodeId("forwarder"), (50.0, 0.0), drop_probability=0.7,
            rng=SeededRng(5, "attacker"),
        )
    )
    sim.add_node(TelosbMote(NodeId("mote-3"), (75.0, 0.0)))
    sniffer = sim.add_node(SnifferNode(NodeId("observer"), (50.0, 10.0)))
    recorder = TraceRecorder().attach(sniffer)
    sim.run(120.0)
    trace = recorder.trace
    print(f"Recorded {len(trace)} captures over {trace.duration:.0f} s.")

    # -- 2. persist and reload -----------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "wsn-incident.jsonl.gz"
        trace.save(path)
        print(f"Saved to {path.name} ({path.stat().st_size} bytes on disk).")
        reloaded = Trace.load(path)
    assert len(reloaded) == len(trace)
    assert all(
        a.capture.packet == b.capture.packet for a, b in zip(trace, reloaded)
    ), "round trip must preserve every packet exactly"
    print("Reloaded trace is identical to the recording.")

    # -- 3. offline replay into a fresh IDS ------------------------------------
    kalis = KalisNode(NodeId("forensics"), config=parse_config(CONFIG_TEXT))
    kalis.replay_trace(reloaded)
    print(f"\nOffline analysis found {len(kalis.alerts)} alerts:")
    for alert in kalis.alerts.alerts[:4]:
        print(
            f"  t={alert.timestamp:7.2f}s {alert.attack:<21} "
            f"suspects={[s.value for s in alert.suspects]} "
            f"evidence={alert.details}"
        )
    suspects = {s.value for a in kalis.alerts.alerts for s in a.suspects}
    assert "forwarder" in suspects, "the forensic pass should name the culprit"
    print("\nThe offline pass reached the same verdict as a live IDS would.")


if __name__ == "__main__":
    main()
